//! Property-based tests spanning crates: metric axioms, window
//! normalization, and simulator determinism.
//!
//! Compiled only with `--features proptest-tests` (requires the registry
//! `proptest` crate; see Cargo.toml — the default build must stay offline).
#![cfg(feature = "proptest-tests")]

use adaptraj::data::domain::DomainId;
use adaptraj::data::trajectory::{Point, TrajWindow, T_OBS, T_PRED, T_TOTAL};
use adaptraj::eval::metrics::{ade, best_of_k, fde};
use adaptraj::sim::{build_world, ForceParams, ScenarioConfig};
use proptest::prelude::*;

/// Strategy: a track of `len` bounded points.
fn track(len: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((-20.0f32..20.0, -20.0f32..20.0), len)
        .prop_map(|v| v.into_iter().map(|(x, y)| [x, y]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ade_is_a_metric_on_tracks(a in track(T_PRED), b in track(T_PRED), c in track(T_PRED)) {
        // Symmetry, identity, triangle inequality.
        prop_assert!((ade(&a, &b) - ade(&b, &a)).abs() < 1e-5);
        prop_assert!(ade(&a, &a) < 1e-6);
        prop_assert!(ade(&a, &c) <= ade(&a, &b) + ade(&b, &c) + 1e-4);
        prop_assert!((fde(&a, &b) - fde(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn displacement_metrics_are_translation_invariant(
        a in track(T_PRED), b in track(T_PRED), dx in -50.0f32..50.0, dy in -50.0f32..50.0
    ) {
        let shift = |t: &[Point]| -> Vec<Point> {
            t.iter().map(|p| [p[0] + dx, p[1] + dy]).collect()
        };
        prop_assert!((ade(&a, &b) - ade(&shift(&a), &shift(&b))).abs() < 2e-3);
        prop_assert!((fde(&a, &b) - fde(&shift(&a), &shift(&b))).abs() < 2e-3);
    }

    #[test]
    fn best_of_k_is_monotone_in_k(gt in track(T_PRED), s1 in track(T_PRED), s2 in track(T_PRED)) {
        let (a1, f1) = best_of_k(std::slice::from_ref(&s1), &gt);
        let (a2, f2) = best_of_k(&[s1, s2], &gt);
        prop_assert!(a2 <= a1 + 1e-6);
        prop_assert!(f2 <= f1 + 1e-6);
    }

    #[test]
    fn window_normalization_is_translation_invariant(
        focal in track(T_TOTAL), dx in -100.0f32..100.0, dy in -100.0f32..100.0
    ) {
        // Shifting the whole world leaves the normalized window unchanged
        // except for the recorded origin.
        let shifted: Vec<Point> = focal.iter().map(|p| [p[0] + dx, p[1] + dy]).collect();
        let w1 = TrajWindow::from_world(&focal, &[], DomainId::EthUcy);
        let w2 = TrajWindow::from_world(&shifted, &[], DomainId::EthUcy);
        for (p, q) in w1.obs.iter().zip(&w2.obs) {
            prop_assert!((p[0] - q[0]).abs() < 1e-3 && (p[1] - q[1]).abs() < 1e-3);
        }
        for (p, q) in w1.fut.iter().zip(&w2.fut) {
            prop_assert!((p[0] - q[0]).abs() < 1e-3 && (p[1] - q[1]).abs() < 1e-3);
        }
        prop_assert!((w2.origin[0] - w1.origin[0] - dx).abs() < 1e-3);
    }

    #[test]
    fn window_velocities_are_shift_free(focal in track(T_TOTAL)) {
        let w = TrajWindow::from_world(&focal, &[], DomainId::Sdd);
        let v = w.obs_velocities();
        prop_assert_eq!(v.len(), T_OBS - 1);
        // Velocities computed from the normalized frame must equal raw
        // differences of the world track.
        for (i, vel) in v.iter().enumerate() {
            prop_assert!((vel[0] - (focal[i + 1][0] - focal[i][0])).abs() < 1e-3);
        }
    }

    #[test]
    fn simulator_is_deterministic_and_finite(seed in 0u64..500, steps in 10usize..80) {
        let cfg = ScenarioConfig::default();
        let params = ForceParams::default();
        let run = |s| {
            let mut w = build_world(&cfg, &params, 0.1, s);
            for _ in 0..steps {
                w.step();
            }
            w.agents.iter().map(|a| (a.pos.x, a.pos.y)).collect::<Vec<_>>()
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|(x, y)| x.is_finite() && y.is_finite()));
    }

    #[test]
    fn simulated_speeds_are_bounded(seed in 0u64..200) {
        let cfg = ScenarioConfig::default();
        let params = ForceParams::default();
        let mut w = build_world(&cfg, &params, 0.1, seed);
        let caps: Vec<f32> = w.agents.iter().map(|a| a.max_speed).collect();
        for _ in 0..100 {
            w.step();
            for (agent, &cap) in w.agents.iter().zip(&caps) {
                prop_assert!(agent.vel.norm() <= cap + 1e-4);
            }
        }
    }
}
