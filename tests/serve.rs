//! Integration suite for the serving contract (`adaptraj-serve`): a
//! served prediction for a given scene + checkpoint + seed is
//! bit-identical to the offline eval path no matter how many other
//! requests were coalesced into the same micro-batch; coalescing
//! respects `MAX_WINDOWS_PER_JOB`; admission control answers a
//! structured 503; and a checkpoint hot-reload never serves a torn
//! model.
//!
//! Every test starts its own server on an ephemeral port, so tests are
//! independent (the metrics registry is process-global but only ever
//! incremented, which no assertion here depends on).

use adaptraj::data::batch::MAX_WINDOWS_PER_JOB;
use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::data::trajectory::{Point, TrajWindow};
use adaptraj::eval::{build_predictor, BackboneKind, CellSpec, MethodKind, RunnerConfig};
use adaptraj::models::Predictor;
use adaptraj::obs::json::Value;
use adaptraj::serve::codec;
use adaptraj::serve::{PredictServer, ServeConfig};
use adaptraj::tensor::serialize::{load_params_from_file, save_params_to_file};
use adaptraj::tensor::Rng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};

fn spec() -> CellSpec {
    CellSpec {
        backbone: BackboneKind::PecNet,
        method: MethodKind::Vanilla,
        sources: vec![DomainId::EthUcy, DomainId::LCas],
        target: DomainId::Sdd,
    }
}

/// Deterministic predictor for a given init seed. No training: the
/// seeded init is deterministic, which is all bit-identity needs, and
/// it keeps the suite fast.
fn predictor_with_seed(seed: u64) -> Box<dyn Predictor> {
    let mut cfg = RunnerConfig::smoke();
    cfg.trainer.seed = seed;
    build_predictor(&spec(), &cfg)
}

/// Mixed-domain probe scenes pulled from two synthesized test splits.
fn mixed_scenes() -> Vec<TrajWindow> {
    let synth = SynthesisConfig {
        scenes: 3,
        ..SynthesisConfig::smoke()
    };
    let mut scenes: Vec<TrajWindow> = Vec::new();
    for d in [DomainId::EthUcy, DomainId::Sdd] {
        scenes.extend(synthesize_domain(d, &synth).test.into_iter().take(6));
    }
    assert!(scenes.len() >= 8, "need at least 8 probe scenes");
    scenes
}

fn http_post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect serve endpoint");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    let status: u16 = out
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {out:.120}"));
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

/// Exact f32 bit patterns of a mode set — the comparison currency for
/// the whole suite. Two prediction sets are "identical" only here.
fn bits(modes: &[Vec<Point>]) -> Vec<u32> {
    modes
        .iter()
        .flat_map(|m| m.iter().flat_map(|p| [p[0].to_bits(), p[1].to_bits()]))
        .collect()
}

/// The serving contract: responses under concurrent mixed-domain load
/// are bit-identical to the offline `predict_k` path, per request,
/// regardless of micro-batch composition.
#[test]
fn served_predictions_are_bit_identical_under_concurrent_load() {
    let scenes = Arc::new(mixed_scenes());
    let server = PredictServer::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            batch_window_us: 2000,
            queue_cap: 128,
            ..ServeConfig::default()
        },
        predictor_with_seed(41),
        None,
        None,
    )
    .expect("server start");
    let addr = server.local_addr();

    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let scenes = Arc::clone(&scenes);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut got = Vec::new();
                for i in 0..PER_CLIENT {
                    let scene_idx = (t * PER_CLIENT + i) % scenes.len();
                    let seed = 1000 + (t * 100 + i) as u64;
                    let k = 1 + i % 3;
                    let body = codec::encode_request(&scenes[scene_idx], seed, k);
                    let (status, resp) = http_post(addr, "/v1/predict", &body);
                    assert_eq!(status, 200, "client {t} req {i}: {resp:.200}");
                    let modes = codec::decode_response_modes(&resp).expect("response modes");
                    assert_eq!(modes.len(), k, "client {t} req {i} mode count");
                    got.push((scene_idx, seed, k, bits(&modes)));
                }
                got
            })
        })
        .collect();
    let responses: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    server.stop();

    // Offline reference: an identically-constructed predictor, one
    // fresh rng stream per request — the single-window eval path.
    let reference = predictor_with_seed(41);
    for (scene_idx, seed, k, served) in responses {
        let mut rng = Rng::seed_from(seed);
        let expected = reference.predict_k(&scenes[scene_idx], k, &mut rng);
        assert_eq!(
            served,
            bits(&expected),
            "scene {scene_idx} seed {seed} k {k}: served bits != offline bits"
        );
    }
}

fn batch_windows_of(resp: &str) -> u64 {
    Value::parse(resp)
        .expect("response json")
        .get("batch_windows")
        .and_then(|v| v.as_u64())
        .expect("batch_windows field")
}

/// Coalescing behavior: an isolated request executes alone (B = 1); a
/// synchronized burst coalesces, and no job ever exceeds
/// `MAX_WINDOWS_PER_JOB`.
#[test]
fn lone_requests_run_alone_and_bursts_coalesce_within_the_job_cap() {
    let scenes = Arc::new(mixed_scenes());
    let server = PredictServer::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            // Generous window so a whole burst lands inside it even on a
            // loaded CI box.
            batch_window_us: 50_000,
            queue_cap: 64,
            ..ServeConfig::default()
        },
        predictor_with_seed(42),
        None,
        None,
    )
    .expect("server start");
    let addr = server.local_addr();

    let body = codec::encode_request(&scenes[0], 7, 1);
    let (status, resp) = http_post(addr, "/v1/predict", &body);
    assert_eq!(status, 200, "{resp:.200}");
    assert_eq!(batch_windows_of(&resp), 1, "lone request was batched");

    const BURST: usize = 8;
    let barrier = Arc::new(Barrier::new(BURST));
    let handles: Vec<_> = (0..BURST)
        .map(|t| {
            let scenes = Arc::clone(&scenes);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let body = codec::encode_request(&scenes[t % scenes.len()], 100 + t as u64, 1);
                barrier.wait();
                let (status, resp) = http_post(addr, "/v1/predict", &body);
                assert_eq!(status, 200, "{resp:.200}");
                batch_windows_of(&resp)
            })
        })
        .collect();
    let sizes: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    server.stop();

    assert!(
        sizes
            .iter()
            .all(|&b| b >= 1 && b <= MAX_WINDOWS_PER_JOB as u64),
        "job size out of bounds: {sizes:?}"
    );
    assert!(
        sizes.iter().any(|&b| b > 1),
        "a synchronized burst of {BURST} never coalesced: {sizes:?}"
    );
}

/// Admission control: once the bounded queue is full, further requests
/// get an immediate structured 503 while the admitted ones complete.
#[test]
fn queue_saturation_returns_a_structured_503() {
    let scenes = Arc::new(mixed_scenes());
    let server = PredictServer::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            // Long coalescing window: admitted requests sit in the queue
            // for 200 ms, guaranteeing later arrivals see it full.
            batch_window_us: 200_000,
            queue_cap: 2,
            deadline_ms: 5000,
            ..ServeConfig::default()
        },
        predictor_with_seed(43),
        None,
        None,
    )
    .expect("server start");
    let addr = server.local_addr();

    const CLIENTS: usize = 10;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let scenes = Arc::clone(&scenes);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let body = codec::encode_request(&scenes[t % scenes.len()], t as u64, 1);
                barrier.wait();
                http_post(addr, "/v1/predict", &body)
            })
        })
        .collect();
    let responses: Vec<(u16, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    server.stop();

    let ok = responses.iter().filter(|(s, _)| *s == 200).count();
    let rejected: Vec<&String> = responses
        .iter()
        .filter(|(s, _)| *s == 503)
        .map(|(_, b)| b)
        .collect();
    assert!(ok >= 1, "no request was admitted");
    assert!(
        !rejected.is_empty(),
        "queue_cap=2 with {CLIENTS} concurrent clients produced no 503"
    );
    assert_eq!(ok + rejected.len(), CLIENTS, "unexpected status mix");
    for body in rejected {
        let v = Value::parse(body).expect("503 body is JSON");
        let code = v
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(|c| c.as_str())
            .map(str::to_string);
        assert_eq!(code.as_deref(), Some("overloaded"), "{body}");
    }
}

/// Hot reload: while clients hammer the same scene + seed and the main
/// thread flips between two checkpoints, every single response matches
/// one checkpoint's predictions exactly — never a blend of both.
#[test]
fn hot_reload_never_serves_a_torn_model() {
    let dir = std::env::temp_dir();
    let ckpt_a = dir.join(format!("adaptraj_serve_a_{}.atps", std::process::id()));
    let ckpt_b = dir.join(format!("adaptraj_serve_b_{}.atps", std::process::id()));
    save_params_to_file(predictor_with_seed(7).store(), &ckpt_a).expect("write ckpt A");
    save_params_to_file(predictor_with_seed(8).store(), &ckpt_b).expect("write ckpt B");

    let scene = Arc::new(mixed_scenes().remove(0));
    const SEED: u64 = 555;
    const K: usize = 2;

    // Offline expectations for both checkpoints, via the eval path.
    let expected = |path: &std::path::Path| -> Vec<u32> {
        let mut p = predictor_with_seed(999); // seed irrelevant: overwritten by load
        load_params_from_file(p.store_mut(), path).expect("load ckpt");
        bits(&p.predict_k(&scene, K, &mut Rng::seed_from(SEED)))
    };
    let bits_a = expected(&ckpt_a);
    let bits_b = expected(&ckpt_b);
    assert_ne!(bits_a, bits_b, "checkpoints are indistinguishable");

    let mut initial = predictor_with_seed(999);
    load_params_from_file(initial.store_mut(), &ckpt_a).expect("load initial");
    let loader: adaptraj::serve::Loader = Box::new(move |path: &str| {
        let mut p = predictor_with_seed(999);
        load_params_from_file(p.store_mut(), path).map_err(|e| format!("{e:?}"))?;
        Ok(p)
    });
    let server = PredictServer::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            batch_window_us: 1000,
            queue_cap: 64,
            ..ServeConfig::default()
        },
        initial,
        Some(ckpt_a.to_string_lossy().into_owned()),
        Some(loader),
    )
    .expect("server start");
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 20;
    let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let scene = Arc::clone(&scene);
            std::thread::spawn(move || {
                let body = codec::encode_request(&scene, SEED, K);
                let mut got = Vec::new();
                for _ in 0..PER_CLIENT {
                    let (status, resp) = http_post(addr, "/v1/predict", &body);
                    assert_eq!(status, 200, "{resp:.200}");
                    got.push(bits(
                        &codec::decode_response_modes(&resp).expect("response modes"),
                    ));
                }
                got
            })
        })
        .collect();

    // Flip checkpoints while the clients run.
    let reloader = {
        let stop_flag = Arc::clone(&stop_flag);
        let (a, b) = (
            ckpt_a.to_string_lossy().into_owned(),
            ckpt_b.to_string_lossy().into_owned(),
        );
        std::thread::spawn(move || {
            let mut flips = 0u64;
            while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                let target = if flips.is_multiple_of(2) { &b } else { &a };
                let (status, resp) =
                    http_post(addr, "/reload", &format!("{{\"checkpoint\":\"{target}\"}}"));
                assert_eq!(status, 200, "reload failed: {resp:.200}");
                flips += 1;
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            flips
        })
    };

    let responses: Vec<Vec<u32>> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    stop_flag.store(true, std::sync::atomic::Ordering::Relaxed);
    let flips = reloader.join().expect("reloader thread");
    let final_version = server.model_version();
    server.stop();
    std::fs::remove_file(&ckpt_a).ok();
    std::fs::remove_file(&ckpt_b).ok();

    assert!(flips >= 2, "reloader never exercised a flip");
    assert_eq!(final_version, 1 + flips, "each reload bumps the version");
    for (i, got) in responses.iter().enumerate() {
        assert!(
            *got == bits_a || *got == bits_b,
            "response {i} matches neither checkpoint — torn model \
             ({} responses total, {} flips)",
            responses.len(),
            flips
        );
    }
}
