//! Cross-crate observability tests: training produces a manifest with one
//! record per epoch, finite decomposed losses, and phase timings, and the
//! whole thing serializes as the documented JSON schema.

use adaptraj::core::{AdapTraj, AdapTrajConfig};
use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::models::{BackboneConfig, PecNet, Predictor, TrainerConfig};
use adaptraj::obs::{EvalSummary, RunTelemetry, MANIFEST_SCHEMA};

fn tiny_synth() -> SynthesisConfig {
    SynthesisConfig {
        scenes: 5,
        steps_per_scene: 320,
        ..SynthesisConfig::smoke()
    }
}

fn train_report() -> adaptraj::models::predictor::TrainReport {
    let sources = [DomainId::EthUcy, DomainId::LCas];
    let synth = tiny_synth();
    let mut train = Vec::new();
    for &s in &sources {
        train.extend(synthesize_domain(s, &synth).train);
    }
    let cfg = AdapTrajConfig {
        trainer: TrainerConfig {
            epochs: 3,
            batch_size: 8,
            max_train_windows: 16,
            ..TrainerConfig::default()
        },
        e_start: 1,
        e_end: 2,
        ..AdapTrajConfig::default()
    };
    let mut model = AdapTraj::new(cfg, &sources, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    });
    model.fit(&train)
}

#[test]
fn manifest_has_one_finite_record_per_epoch() {
    let report = train_report();
    let mut telemetry = RunTelemetry::new();
    telemetry.config("backbone", "PecNet");
    telemetry.config("seed", 1u64);
    for rec in report.epochs {
        telemetry.push_epoch(rec);
    }
    for p in &report.phases {
        telemetry.push_phase(&p.phase, p.duration_s);
    }
    telemetry.eval = Some(EvalSummary {
        ade: 0.5,
        fde: 0.9,
        infer_time_s: 0.001,
        num_windows: 10,
    });

    // One record per epoch, numbered 0..n, all with finite core quantities.
    assert_eq!(telemetry.epochs.len(), 3);
    for (i, rec) in telemetry.epochs.iter().enumerate() {
        assert_eq!(rec.epoch, i);
        assert!(rec.loss.is_finite(), "epoch {i} loss {}", rec.loss);
        assert!(rec.grad_norm.is_finite(), "epoch {i} grad_norm");
        assert!(rec.duration_s >= 0.0);
        assert_eq!(rec.non_finite_batches, 0);
        // The AdapTraj loss decomposition is populated every epoch.
        assert!(rec.components.backbone.is_finite(), "epoch {i} backbone");
        assert!(rec.components.recon.is_finite(), "epoch {i} recon");
        assert!(rec.components.similar.is_finite(), "epoch {i} similar");
        assert!(!rec.group_norms.is_empty(), "epoch {i} group norms");
        for g in &rec.group_norms {
            assert!(g.grad_norm.is_finite() && g.param_norm.is_finite());
        }
    }
    // The three-step schedule reports a wall-clock phase per step taken.
    assert!(!telemetry.phases.is_empty());
    assert!(telemetry.phases.iter().all(|p| p.duration_s > 0.0));

    let json = telemetry.to_json();
    assert!(json.contains(&format!(r#""schema":"{MANIFEST_SCHEMA}""#)));
    assert!(json.contains(r#""num_epochs":3"#));
    assert!(json.contains(r#""non_finite_batches_total":0"#));
    assert!(json.contains(r#""ade":0.5"#));
}

#[test]
fn manifest_round_trips_through_a_file() {
    let report = train_report();
    let mut telemetry = RunTelemetry::new();
    for rec in report.epochs {
        telemetry.push_epoch(rec);
    }
    let path = std::env::temp_dir().join(format!("adaptraj_manifest_{}.json", std::process::id()));
    telemetry.write_to_file(&path).expect("write manifest");
    let text = std::fs::read_to_string(&path).expect("read manifest back");
    std::fs::remove_file(&path).ok();
    assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
    assert_eq!(text, format!("{}\n", telemetry.to_json()));
}
