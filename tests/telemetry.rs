//! Cross-crate observability tests: training produces a manifest with one
//! record per epoch, finite decomposed losses, and phase timings, the
//! whole thing serializes as the documented JSON schema, the flight
//! recorder captures the same span set regardless of worker count, and
//! the telemetry endpoint serves scrapeable text.
//!
//! The profiler, timeline, and metrics registry are process-global, so
//! every test here serializes on [`test_lock`].

use adaptraj::core::{AdapTraj, AdapTrajConfig};
use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::models::{BackboneConfig, PecNet, Predictor, TrainerConfig};
use adaptraj::obs::serve::TelemetryServer;
use adaptraj::obs::{profile, timeline};
use adaptraj::obs::{EvalSummary, RunTelemetry, MANIFEST_SCHEMA};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_synth() -> SynthesisConfig {
    SynthesisConfig {
        scenes: 5,
        steps_per_scene: 320,
        ..SynthesisConfig::smoke()
    }
}

fn train_report_with_workers(workers: usize) -> adaptraj::models::predictor::TrainReport {
    let sources = [DomainId::EthUcy, DomainId::LCas];
    let synth = tiny_synth();
    let mut train = Vec::new();
    for &s in &sources {
        train.extend(synthesize_domain(s, &synth).train);
    }
    let cfg = AdapTrajConfig {
        trainer: TrainerConfig {
            epochs: 3,
            batch_size: 8,
            max_train_windows: 16,
            workers,
            ..TrainerConfig::default()
        },
        e_start: 1,
        e_end: 2,
        ..AdapTrajConfig::default()
    };
    let mut model = AdapTraj::new(cfg, &sources, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    });
    model.fit(&train)
}

fn train_report() -> adaptraj::models::predictor::TrainReport {
    train_report_with_workers(1)
}

#[test]
fn manifest_has_one_finite_record_per_epoch() {
    let _g = test_lock();
    let report = train_report();
    let mut telemetry = RunTelemetry::new();
    telemetry.config("backbone", "PecNet");
    telemetry.config("seed", 1u64);
    for rec in report.epochs {
        telemetry.push_epoch(rec);
    }
    for p in &report.phases {
        telemetry.push_phase(&p.phase, p.duration_s);
    }
    telemetry.eval = Some(EvalSummary {
        ade: 0.5,
        fde: 0.9,
        infer_time_s: 0.001,
        num_windows: 10,
    });

    // One record per epoch, numbered 0..n, all with finite core quantities.
    assert_eq!(telemetry.epochs.len(), 3);
    for (i, rec) in telemetry.epochs.iter().enumerate() {
        assert_eq!(rec.epoch, i);
        assert!(rec.loss.is_finite(), "epoch {i} loss {}", rec.loss);
        assert!(rec.grad_norm.is_finite(), "epoch {i} grad_norm");
        assert!(rec.duration_s >= 0.0);
        assert_eq!(rec.non_finite_batches, 0);
        // The AdapTraj loss decomposition is populated every epoch.
        assert!(rec.components.backbone.is_finite(), "epoch {i} backbone");
        assert!(rec.components.recon.is_finite(), "epoch {i} recon");
        assert!(rec.components.similar.is_finite(), "epoch {i} similar");
        assert!(!rec.group_norms.is_empty(), "epoch {i} group norms");
        for g in &rec.group_norms {
            assert!(g.grad_norm.is_finite() && g.param_norm.is_finite());
        }
    }
    // The three-step schedule reports a wall-clock phase per step taken.
    assert!(!telemetry.phases.is_empty());
    assert!(telemetry.phases.iter().all(|p| p.duration_s > 0.0));

    let json = telemetry.to_json();
    assert!(json.contains(&format!(r#""schema":"{MANIFEST_SCHEMA}""#)));
    assert!(json.contains(r#""num_epochs":3"#));
    assert!(json.contains(r#""non_finite_batches_total":0"#));
    assert!(json.contains(r#""ade":0.5"#));
}

#[test]
fn manifest_round_trips_through_a_file() {
    let _g = test_lock();
    let report = train_report();
    let mut telemetry = RunTelemetry::new();
    for rec in report.epochs {
        telemetry.push_epoch(rec);
    }
    let path = std::env::temp_dir().join(format!("adaptraj_manifest_{}.json", std::process::id()));
    telemetry.write_to_file(&path).expect("write manifest");
    let text = std::fs::read_to_string(&path).expect("read manifest back");
    std::fs::remove_file(&path).ok();
    assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
    assert_eq!(text, format!("{}\n", telemetry.to_json()));
}

/// Trains once under the profiler + flight recorder and returns the
/// per-phase call rollup and per-name span counts. Durations are
/// wall-clock and vary run to run; call counts must not.
fn capture_rollups(workers: usize) -> (BTreeMap<String, u64>, BTreeMap<String, usize>) {
    profile::reset();
    profile::set_enabled(true);
    timeline::reset();
    timeline::set_enabled(true);
    let report = train_report_with_workers(workers);
    timeline::set_enabled(false);
    profile::set_enabled(false);
    assert_eq!(report.epochs.len(), 3);
    let phases = profile::snapshot()
        .by_phase()
        .into_iter()
        .map(|row| (row.phase, row.calls))
        .collect();
    (phases, timeline::snapshot().span_counts())
}

/// The same training run must produce the same profiler phase rollup and
/// the same timeline span *set* whether jobs run inline (1 worker) or
/// across the thread pool (4 workers) — only timings and lane assignment
/// may differ.
#[test]
fn timeline_span_set_invariant_across_worker_counts() {
    let _g = test_lock();
    let (phases_1, spans_1) = capture_rollups(1);
    let (phases_4, spans_4) = capture_rollups(4);

    assert!(!spans_1.is_empty(), "flight recorder captured nothing");
    for required in ["queue_wait", "job_run", "grad_reduce", "epoch"] {
        assert!(spans_1.contains_key(required), "missing span '{required}'");
    }
    assert_eq!(spans_1, spans_4, "span set depends on worker count");
    assert_eq!(phases_1, phases_4, "phase rollup depends on worker count");
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect telemetry endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

/// Endpoint smoke (`serve_` prefix is what CI filters on): /metrics
/// exposes histogram quantiles including p999, /healthz answers, and
/// /profile returns the profiler JSON document.
#[test]
fn serve_endpoint_scrapes_metrics_healthz_and_profile() {
    let _g = test_lock();
    let registry = adaptraj::obs::global();
    let hist = registry.histogram("serve_test.latency_ms");
    for i in 0..100 {
        hist.record(1.0 + i as f64);
    }
    registry.counter("serve_test.requests").add(3);

    let server = TelemetryServer::start("127.0.0.1:0").expect("bind telemetry endpoint");
    let addr = server.local_addr();

    let metrics = http_get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
    assert!(
        metrics.contains("# TYPE serve_test_latency_ms summary"),
        "{metrics}"
    );
    for q in ["0.5", "0.9", "0.99", "0.999"] {
        assert!(
            metrics.contains(&format!("serve_test_latency_ms{{quantile=\"{q}\"}}")),
            "missing quantile {q} in:\n{metrics}"
        );
    }
    assert!(metrics.contains("serve_test_latency_ms_count"), "{metrics}");
    assert!(metrics.contains("serve_test_requests 3"), "{metrics}");

    let health = http_get(addr, "/healthz");
    assert!(
        health.starts_with("HTTP/1.1 200") && health.ends_with("ok\n"),
        "{health}"
    );

    let prof = http_get(addr, "/profile");
    assert!(prof.starts_with("HTTP/1.1 200"), "{prof}");
    let body = prof.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(
        body.trim_start().starts_with('{'),
        "profile body not JSON: {body}"
    );

    server.stop();
}
