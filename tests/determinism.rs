//! Determinism suite for the data-parallel executor: training and
//! evaluation must be *bit-identical* for every `--workers` count.
//!
//! The contract (see DESIGN.md, "Execution model"): all stochastic
//! decisions are either drawn on the main thread in batch order (shuffles,
//! masking flags) or from per-window RNGs seeded by
//! `adaptraj_exec::window_seed`, and gradients are reduced in batch
//! position order — so the worker count only changes wall-clock, never a
//! single bit of the result.

use adaptraj::core::{AdapTraj, AdapTrajConfig};
use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::data::trajectory::TrajWindow;
use adaptraj::eval::{evaluate, EvalResult};
use adaptraj::exec::{ExecError, WorkerPool};
use adaptraj::models::{BackboneConfig, PecNet, Predictor};
use adaptraj::obs::RegistryDelta;

const SOURCES: [DomainId; 2] = [DomainId::EthUcy, DomainId::LCas];

/// Trains the PECNet-AdapTraj smoke workload with the given worker count
/// and returns the per-epoch losses, the tensor-op counter deltas of the
/// fit, and the ADE/FDE of a small evaluation pass.
fn run_smoke_workload(workers: usize) -> (Vec<f32>, RegistryDelta, EvalResult) {
    let synth = SynthesisConfig::smoke();
    let mut train = Vec::new();
    for &s in &SOURCES {
        train.extend(synthesize_domain(s, &synth).train);
    }
    let target = synthesize_domain(DomainId::Sdd, &synth);

    let mut cfg = AdapTrajConfig::smoke();
    cfg.trainer.epochs = 3;
    cfg.trainer.max_train_windows = 24;
    cfg.trainer.workers = workers;
    let mut model = AdapTraj::new(cfg, &SOURCES, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    });

    let before = adaptraj::obs::global().snapshot();
    let report = model.fit(&train);
    let delta = adaptraj::obs::global().snapshot().since(&before);

    let test: Vec<&TrajWindow> = target.test.iter().take(10).collect();
    let (eval, _latency) = evaluate(&model, &test, 2, 99, workers);
    (report.epoch_losses, delta, eval)
}

#[test]
fn workers_1_and_4_are_bit_identical() {
    let (losses_1, delta_1, eval_1) = run_smoke_workload(1);
    let (losses_4, delta_4, eval_4) = run_smoke_workload(4);

    // Per-epoch training losses, down to the last bit.
    assert_eq!(losses_1.len(), losses_4.len());
    for (e, (a, b)) in losses_1.iter().zip(&losses_4).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "epoch {e} loss differs: workers=1 -> {a}, workers=4 -> {b}"
        );
    }

    // The same tape work happened: identical backward passes (one per
    // batched job), identical node counts, and identical windows
    // dispatched (the counter bench throughput derives from). Histogram
    // *counts* must match too; sums are wall-clock and may not.
    for counter in [
        "tensor.backward_calls",
        "tensor.tape_nodes_total",
        "exec.windows_trained",
    ] {
        assert_eq!(
            delta_1.counter(counter),
            delta_4.counter(counter),
            "counter {counter} differs across worker counts"
        );
    }
    assert_eq!(
        delta_1.hist_count("tensor.backward_ms"),
        delta_4.hist_count("tensor.backward_ms"),
        "backward histogram count differs across worker counts"
    );

    // Evaluation: parallel ADE/FDE reduce to the same bits.
    assert_eq!(eval_1.ade.to_bits(), eval_4.ade.to_bits(), "ADE differs");
    assert_eq!(eval_1.fde.to_bits(), eval_4.fde.to_bits(), "FDE differs");
}

/// The intra-op hook and its flop threshold are process-global; the two
/// tests that flip them serialize against each other. (The hook is
/// bitwise invisible by contract, so concurrent *readers* — the other
/// determinism tests — are unaffected either way.)
static INTRA_OP_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// PR 10: with intra-op GEMM splitting force-enabled (every product
/// splits across 3 lanes), the full smoke workload must still be
/// bit-identical to the unsplit single-worker run. Row partitioning never
/// reorders any output element's accumulation, so the worker count *and*
/// the intra-op lane count are both invisible in the bits.
#[test]
fn intra_op_splitting_is_bit_identical_across_worker_counts() {
    use adaptraj::tensor::kernels;

    let _guard = INTRA_OP_LOCK.lock().unwrap();
    let (losses_ref, _, eval_ref) = run_smoke_workload(1);

    let prev_min = kernels::split_min_flops();
    kernels::set_split_min_flops(0);
    adaptraj::exec::intra_op::install(3);
    let result = std::panic::catch_unwind(|| {
        let mut out = Vec::new();
        for workers in [1, 4] {
            out.push((workers, run_smoke_workload(workers)));
        }
        out
    });
    adaptraj::exec::intra_op::install(1);
    kernels::set_split_min_flops(prev_min);
    let runs = match result {
        Ok(r) => r,
        Err(p) => std::panic::resume_unwind(p),
    };

    for (workers, (losses, _, eval)) in runs {
        assert_eq!(losses.len(), losses_ref.len(), "workers={workers}");
        for (e, (a, b)) in losses_ref.iter().zip(&losses).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "epoch {e} loss differs under intra-op split (workers={workers}): {a} vs {b}"
            );
        }
        assert_eq!(
            eval_ref.ade.to_bits(),
            eval.ade.to_bits(),
            "ADE differs under intra-op split (workers={workers})"
        );
        assert_eq!(
            eval_ref.fde.to_bits(),
            eval.fde.to_bits(),
            "FDE differs under intra-op split (workers={workers})"
        );
    }
}

/// PR 10: a window job running on a pool worker that hits an intra-op
/// split must not deadlock. The splitter uses fresh scoped threads — never
/// the pool's shared queue — so even with every worker simultaneously
/// inside a split (more splits than pool slots) the nest always makes
/// progress. Saturate a small pool with GEMM jobs that all split to prove
/// it, and check the results are the unsplit bits.
#[test]
fn nested_pool_and_intra_op_split_does_not_deadlock() {
    use adaptraj::tensor::kernels;
    use adaptraj::tensor::{Rng, Tensor};

    let _guard = INTRA_OP_LOCK.lock().unwrap();
    let mut rng = Rng::seed_from(77);
    let inputs: Vec<(Tensor, Tensor)> = (0..12)
        .map(|_| {
            (
                Tensor::randn(24, 48, 0.0, 1.0, &mut rng),
                Tensor::randn(48, 64, 0.0, 1.0, &mut rng),
            )
        })
        .collect();
    let expected: Vec<Vec<u32>> = inputs
        .iter()
        .map(|(a, b)| a.matmul(b).data().iter().map(|v| v.to_bits()).collect())
        .collect();

    let prev_min = kernels::split_min_flops();
    kernels::set_split_min_flops(0);
    adaptraj::exec::intra_op::install(4);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let pool = WorkerPool::new(2);
        pool.map(&inputs, |_, (a, b)| {
            // Runs on a pool worker; the matmul splits across 4 scoped
            // lanes from inside the job.
            a.matmul(b)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<u32>>()
        })
        .expect("nested map must complete")
    }));
    adaptraj::exec::intra_op::install(1);
    kernels::set_split_min_flops(prev_min);
    let got = match result {
        Ok(r) => r,
        Err(p) => std::panic::resume_unwind(p),
    };
    assert_eq!(got, expected, "split-under-pool results drifted");
}

#[test]
fn poisoned_worker_reports_clean_error_and_pool_shuts_down() {
    let pool = WorkerPool::new(4);
    let items: Vec<usize> = (0..16).collect();

    // A panicking job must surface as a clean Err (not a deadlock, not a
    // poisoned mutex), identifying the first failing item by index.
    let err = pool
        .map(&items, |_, &i| {
            if i == 7 {
                panic!("poisoned window {i}");
            }
            i * 2
        })
        .unwrap_err();
    let ExecError::JobPanicked { index, message } = err;
    assert_eq!(index, 7);
    assert!(message.contains("poisoned window 7"), "message: {message}");

    // The pool survives the panic and keeps serving jobs.
    let ok = pool.map(&items, |_, &i| i + 1).expect("pool still usable");
    assert_eq!(ok, (1..=16).collect::<Vec<usize>>());

    // Dropping joins all workers; returning from this test proves the
    // shutdown path does not hang.
    drop(pool);
}
