//! Protocol-robustness suite shared by every HTTP listener in the
//! workspace: the telemetry endpoint (`adaptraj-obs`) and the inference
//! service (`adaptraj-serve`) sit on the same bounded reader
//! (`adaptraj_obs::http`), so both must answer hostile input the same
//! way — 413 for oversized payloads, 400 for malformed framing (with a
//! machine-parseable JSON error), 408 when a slow writer exceeds the
//! read deadline, and 404 for unknown paths. Each check runs against
//! both servers.

use adaptraj::data::domain::DomainId;
use adaptraj::eval::{build_predictor, BackboneKind, CellSpec, MethodKind, RunnerConfig};
use adaptraj::obs::json::Value;
use adaptraj::obs::serve::TelemetryServer;
use adaptraj::serve::{PredictServer, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Raw-socket exchange: send exactly `payload`, then read to EOF.
fn raw_exchange(addr: SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(payload).expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:.120}"))
}

/// The JSON `error.code` of a structured error response.
fn error_code(response: &str) -> String {
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    Value::parse(body)
        .unwrap_or_else(|e| panic!("error body is not JSON ({e}): {body:.200}"))
        .get("error")
        .and_then(|er| er.get("code"))
        .and_then(|c| c.as_str())
        .expect("error.code field")
        .to_string()
}

/// Runs the listener-level checks common to both servers. `deadline` is
/// the server's configured read deadline (they differ), and
/// `known_path` must answer something other than 404.
fn assert_protocol_robustness(addr: SocketAddr, deadline: Duration, known_path: &str) {
    // 413: a Content-Length beyond the body limit is rejected before the
    // body is read — no need to actually ship megabytes.
    let oversized = raw_exchange(
        addr,
        b"POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert_eq!(status_of(&oversized), 413, "{oversized:.200}");
    assert_eq!(error_code(&oversized), "payload_too_large");

    // 400: garbage framing still gets a structured, parseable error.
    let malformed = raw_exchange(addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status_of(&malformed), 400, "{malformed:.200}");
    assert_eq!(error_code(&malformed), "bad_request");

    // 408: a writer that stalls mid-header is cut off at the read
    // deadline instead of pinning the accept thread forever.
    let t0 = std::time::Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n")
        .expect("send partial");
    // ... never finish the header section.
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    assert_eq!(status_of(&out), 408, "{out:.200}");
    assert_eq!(error_code(&out), "deadline_exceeded");
    let waited = t0.elapsed();
    assert!(
        waited >= deadline && waited < deadline + Duration::from_secs(5),
        "slow-writer cutoff at {waited:?}, deadline {deadline:?}"
    );

    // 404 for unknown paths, while a known path still answers.
    let missing = raw_exchange(
        addr,
        b"GET /definitely/not/a/route HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert_eq!(status_of(&missing), 404, "{missing:.200}");
    let known = raw_exchange(
        addr,
        format!("GET {known_path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    );
    assert_ne!(status_of(&known), 404, "{known_path} should exist");
}

#[test]
fn telemetry_server_survives_hostile_input() {
    let server = TelemetryServer::start("127.0.0.1:0").expect("bind telemetry endpoint");
    assert_protocol_robustness(server.local_addr(), Duration::from_secs(2), "/healthz");
    server.stop();
}

#[test]
fn predict_server_survives_hostile_input() {
    let spec = CellSpec {
        backbone: BackboneKind::PecNet,
        method: MethodKind::Vanilla,
        sources: vec![DomainId::EthUcy],
        target: DomainId::Sdd,
    };
    let predictor = build_predictor(&spec, &RunnerConfig::smoke());
    let server = PredictServer::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            read_deadline_ms: 300,
            ..ServeConfig::default()
        },
        predictor,
        None,
        None,
    )
    .expect("server start");
    assert_protocol_robustness(server.local_addr(), Duration::from_millis(300), "/healthz");

    // Serve-specific: a well-framed request whose JSON body is garbage
    // still yields a structured 400, not a hang or a connection drop.
    let addr = server.local_addr();
    let bad_json = "{not json";
    let resp = raw_exchange(
        addr,
        format!(
            "POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{bad_json}",
            bad_json.len()
        )
        .as_bytes(),
    );
    assert_eq!(status_of(&resp), 400, "{resp:.200}");
    assert!(!error_code(&resp).is_empty());

    // And a wrong method on a known route is 405, not 404.
    let wrong_method = raw_exchange(addr, b"GET /v1/predict HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status_of(&wrong_method), 405, "{wrong_method:.200}");
    server.stop();
}
