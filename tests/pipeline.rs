//! Cross-crate integration tests: the full synthesize → preprocess →
//! train → predict → evaluate pipeline.

use adaptraj::core::{AdapTraj, AdapTrajConfig};
use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::data::trajectory::{T_OBS, T_PRED};
use adaptraj::eval::metrics::{ade, best_of_k, fde};
use adaptraj::models::{BackboneConfig, PecNet, Predictor, TrainerConfig, Vanilla};
use adaptraj::tensor::Rng;

fn tiny_trainer() -> TrainerConfig {
    TrainerConfig {
        epochs: 2,
        batch_size: 8,
        max_train_windows: 16,
        ..TrainerConfig::default()
    }
}

fn tiny_synth() -> SynthesisConfig {
    SynthesisConfig {
        scenes: 5,
        steps_per_scene: 320,
        ..SynthesisConfig::smoke()
    }
}

#[test]
fn vanilla_pipeline_end_to_end() {
    let ds = synthesize_domain(DomainId::EthUcy, &tiny_synth());
    assert!(!ds.train.is_empty() && !ds.test.is_empty());
    let mut model = Vanilla::new(tiny_trainer(), |s, r| {
        PecNet::new(s, r, BackboneConfig::default())
    });
    let report = model.fit(&ds.train);
    assert_eq!(report.epoch_losses.len(), 2);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));

    let mut rng = Rng::seed_from(0);
    let w = &ds.test[0];
    assert_eq!(w.obs.len(), T_OBS);
    let pred = model.predict(w, &mut rng);
    assert_eq!(pred.len(), T_PRED);
    let a = ade(&pred, &w.fut);
    let f = fde(&pred, &w.fut);
    assert!(a.is_finite() && f.is_finite() && a > 0.0);
}

#[test]
fn adaptraj_pipeline_on_unseen_domain() {
    let sources = [DomainId::EthUcy, DomainId::LCas];
    let synth = tiny_synth();
    let mut train = Vec::new();
    for &s in &sources {
        train.extend(synthesize_domain(s, &synth).train);
    }
    let target = synthesize_domain(DomainId::Sdd, &synth);

    let cfg = AdapTrajConfig {
        trainer: tiny_trainer(),
        e_start: 1,
        e_end: 2,
        ..AdapTrajConfig::default()
    };
    let mut model = AdapTraj::new(cfg, &sources, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    });
    model.fit(&train);

    let mut rng = Rng::seed_from(1);
    let samples = model.predict_k(&target.test[0], 3, &mut rng);
    assert_eq!(samples.len(), 3);
    let (a, f) = best_of_k(&samples, &target.test[0].fut);
    assert!(a.is_finite() && f.is_finite());
    // Best-of-k is no worse than each individual sample.
    for s in &samples {
        assert!(a <= ade(s, &target.test[0].fut) + 1e-6);
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let ds = synthesize_domain(DomainId::LCas, &tiny_synth());
        let mut model = Vanilla::new(tiny_trainer(), |s, r| {
            PecNet::new(s, r, BackboneConfig::default())
        });
        model.fit(&ds.train);
        let mut rng = Rng::seed_from(5);
        model.predict(&ds.test[0], &mut rng)
    };
    assert_eq!(run(), run(), "same seeds must give identical predictions");
}

#[test]
fn training_improves_over_untrained_model() {
    let ds = synthesize_domain(DomainId::EthUcy, &tiny_synth());
    let eval = |model: &Vanilla<PecNet>| {
        let mut rng = Rng::seed_from(3);
        let mut total = 0.0;
        let n = ds.test.len().min(20);
        for w in ds.test.iter().take(n) {
            total += ade(&model.predict(w, &mut rng), &w.fut);
        }
        total / n as f32
    };
    let cfg = TrainerConfig {
        epochs: 6,
        max_train_windows: 60,
        ..tiny_trainer()
    };
    let mut model = Vanilla::new(cfg, |s, r| PecNet::new(s, r, BackboneConfig::default()));
    let before = eval(&model);
    model.fit(&ds.train);
    let after = eval(&model);
    assert!(
        after < before,
        "training should reduce in-domain ADE: {before} -> {after}"
    );
}

#[test]
fn checkpoint_round_trip_preserves_predictions() {
    use adaptraj::tensor::serialize::{load_params, save_params};
    let ds = synthesize_domain(DomainId::EthUcy, &tiny_synth());
    let mut model = Vanilla::new(tiny_trainer(), |s, r| {
        PecNet::new(s, r, BackboneConfig::default())
    });
    model.fit(&ds.train);
    let mut rng = Rng::seed_from(9);
    let before = model.predict(&ds.test[0], &mut rng);

    // Serialize, load into a freshly initialized twin, compare.
    let mut bytes = Vec::new();
    save_params(model.store(), &mut bytes).unwrap();
    let mut twin = Vanilla::new(
        TrainerConfig {
            seed: 12345, // different init
            ..tiny_trainer()
        },
        |s, r| PecNet::new(s, r, BackboneConfig::default()),
    );
    load_params(twin.store_mut(), &mut bytes.as_slice()).unwrap();
    let mut rng2 = Rng::seed_from(9);
    assert_eq!(
        before,
        twin.predict(&ds.test[0], &mut rng2),
        "loaded checkpoint must reproduce the trained model's predictions"
    );
}

#[test]
fn augmentation_preserves_displacement_errors() {
    use adaptraj::data::augment::rotate_window;
    // Rotating prediction and ground truth together leaves ADE unchanged:
    // train on one window, compare errors in rotated frames.
    let ds = synthesize_domain(DomainId::Sdd, &tiny_synth());
    let w = &ds.test[0];
    let rot = rotate_window(w, 0.9);
    // Identical-magnitude displacement structure.
    let speed = |t: &adaptraj::data::TrajWindow| -> f32 {
        t.obs_velocities()
            .iter()
            .map(|v| (v[0] * v[0] + v[1] * v[1]).sqrt())
            .sum()
    };
    assert!((speed(w) - speed(&rot)).abs() < 1e-3);
    assert_eq!(w.fut.len(), rot.fut.len());
}
