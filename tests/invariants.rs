//! Cross-crate invariant tests: data hygiene, framework guarantees, and
//! metric protocol properties.

use adaptraj::core::{AdapTraj, AdapTrajConfig, SPECIFIC_GROUP};
use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::data::trajectory::{T_OBS, T_PRED, T_TOTAL};
use adaptraj::models::{BackboneConfig, PecNet, Predictor, TrainerConfig};
use adaptraj::tensor::Rng;

fn tiny_synth() -> SynthesisConfig {
    SynthesisConfig {
        scenes: 5,
        steps_per_scene: 320,
        ..SynthesisConfig::smoke()
    }
}

#[test]
fn splits_are_disjoint_in_origin_space() {
    // Windows from different splits must come from different scenes; with
    // per-scene normalization removed, identical (origin, obs) pairs
    // across splits would indicate leakage.
    let ds = synthesize_domain(DomainId::EthUcy, &tiny_synth());
    let key = |w: &adaptraj::data::TrajWindow| {
        (
            w.origin[0].to_bits(),
            w.origin[1].to_bits(),
            w.obs[0][0].to_bits(),
        )
    };
    let train: std::collections::HashSet<_> = ds.train.iter().map(key).collect();
    for w in ds.val.iter().chain(&ds.test) {
        assert!(
            !train.contains(&key(w)),
            "val/test window duplicated in train"
        );
    }
}

#[test]
fn every_window_respects_protocol_horizons() {
    for domain in DomainId::ALL {
        let ds = synthesize_domain(domain, &tiny_synth());
        for w in ds.all_windows() {
            assert_eq!(w.obs.len(), T_OBS);
            assert_eq!(w.fut.len(), T_PRED);
            assert_eq!(w.obs.len() + w.fut.len(), T_TOTAL);
            assert_eq!(w.obs[T_OBS - 1], [0.0, 0.0], "normalization origin");
            for nb in &w.neighbors {
                assert_eq!(nb.len(), T_OBS);
            }
            assert_eq!(w.domain, domain);
        }
    }
}

fn tiny_adaptraj(sources: &[DomainId]) -> AdapTraj<PecNet> {
    let cfg = AdapTrajConfig {
        trainer: TrainerConfig {
            epochs: 3,
            batch_size: 8,
            max_train_windows: 16,
            ..TrainerConfig::default()
        },
        e_start: 1,
        e_end: 2,
        ..AdapTrajConfig::default()
    };
    AdapTraj::new(cfg, sources, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    })
}

#[test]
fn inference_never_consults_the_domain_tag() {
    // The multi-source DG contract: at inference the target domain is
    // unknown, so mislabeling the window's domain tag must not change the
    // prediction.
    let sources = [DomainId::EthUcy, DomainId::LCas];
    let synth = tiny_synth();
    let mut train = Vec::new();
    for &s in &sources {
        train.extend(synthesize_domain(s, &synth).train);
    }
    let mut model = tiny_adaptraj(&sources);
    model.fit(&train);

    let target = synthesize_domain(DomainId::Sdd, &synth);
    let w = target.test[0].clone();
    let mut w_mislabeled = w.clone();
    w_mislabeled.domain = DomainId::EthUcy;

    let mut r1 = Rng::seed_from(11);
    let mut r2 = Rng::seed_from(11);
    assert_eq!(
        model.predict(&w, &mut r1),
        model.predict(&w_mislabeled, &mut r2),
        "inference depended on the domain tag"
    );
}

#[test]
fn specific_experts_stay_frozen_through_step_two() {
    let sources = [DomainId::EthUcy, DomainId::LCas];
    let synth = tiny_synth();
    let mut train = Vec::new();
    for &s in &sources {
        train.extend(synthesize_domain(s, &synth).train);
    }
    // Configure so the final epoch is step 2 — after fit, specific params
    // must equal their values at the end of step 1. We check the weaker
    // but still structural invariant: a step-2-only training run leaves
    // the group untouched.
    let cfg = AdapTrajConfig {
        trainer: TrainerConfig {
            epochs: 1,
            batch_size: 8,
            max_train_windows: 8,
            ..TrainerConfig::default()
        },
        e_start: 0, // epoch 0 is already step 2
        e_end: 1,
        ..AdapTrajConfig::default()
    };
    let mut model = AdapTraj::new(cfg, &sources, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    });
    let before: Vec<_> = model
        .store()
        .ids_in_group(SPECIFIC_GROUP)
        .iter()
        .map(|&id| model.store().value(id).clone())
        .collect();
    model.fit(&train);
    let ids = model.store().ids_in_group(SPECIFIC_GROUP);
    for (id, b) in ids.iter().zip(&before) {
        assert_eq!(
            model.store().value(*id),
            b,
            "specific expert moved in step 2"
        );
    }
}

#[test]
fn single_source_degenerate_case_works() {
    // K = 1 (single-source domain generalization, Tab. V) must be
    // supported: one expert, aggregator over a singleton sum.
    let sources = [DomainId::LCas];
    let ds = synthesize_domain(DomainId::LCas, &tiny_synth());
    let mut model = tiny_adaptraj(&sources);
    model.fit(&ds.train);
    let target = synthesize_domain(DomainId::Sdd, &tiny_synth());
    let mut rng = Rng::seed_from(2);
    let pred = model.predict(&target.test[0], &mut rng);
    assert_eq!(pred.len(), T_PRED);
    assert!(pred.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
}

#[test]
fn neighbors_influence_predictions() {
    // The interaction pathway must be live: removing all neighbors from a
    // window changes the prediction (same sampling seed).
    let ds = synthesize_domain(DomainId::Syi, &tiny_synth());
    let w = ds
        .test
        .iter()
        .find(|w| !w.neighbors.is_empty())
        .expect("a window with neighbors")
        .clone();
    let mut model = tiny_adaptraj(&[DomainId::Syi]);
    model.fit(&ds.train);

    let mut lonely = w.clone();
    lonely.neighbors.clear();
    let mut r1 = Rng::seed_from(4);
    let mut r2 = Rng::seed_from(4);
    assert_ne!(
        model.predict(&w, &mut r1),
        model.predict(&lonely, &mut r2),
        "neighbor pathway appears dead"
    );
}
