//! Training-health observatory suite: the observation-only contract
//! (bit-identical results for every worker count, with the health
//! capture ON), the pinned-seed per-domain gradient diagnostics, and the
//! injected-NaN tripwire → policy → bundle → doctor path.
//!
//! The observatory's state (enable flag, policy, record store) is
//! process-global, so every test here serializes on [`LOCK`] and
//! restores the disabled default before releasing it.

use adaptraj::core::{AdapTraj, AdapTrajConfig};
use adaptraj::data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj::data::domain::DomainId;
use adaptraj::doctor::{diagnose, parse_health_jsonl};
use adaptraj::models::{BackboneConfig, PecNet, Predictor};
use adaptraj::obs::health::{self, HealthRecord, Policy};
use adaptraj::obs::json::Value;
use adaptraj::obs::profile;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// Arms the observatory, runs the smoke AdapTraj workload, and returns
/// the per-epoch losses plus the captured health record stream. The
/// profiler is armed too so incidents carry phase paths, mirroring the
/// CLI's behavior.
fn run_health_workload(workers: usize, sources: &[DomainId]) -> (Vec<f32>, Vec<HealthRecord>) {
    health::reset();
    health::set_enabled(true);
    profile::reset();
    profile::set_enabled(true);

    let synth = SynthesisConfig::smoke();
    let mut train = Vec::new();
    for &s in sources {
        train.extend(synthesize_domain(s, &synth).train);
    }
    let mut cfg = AdapTrajConfig::smoke();
    cfg.trainer.epochs = 3;
    cfg.trainer.max_train_windows = 24;
    cfg.trainer.workers = workers;
    let mut model = AdapTraj::new(cfg, sources, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    });
    let report = model.fit(&train);

    profile::set_enabled(false);
    health::set_enabled(false);
    (report.epoch_losses, health::records())
}

/// Restores the disabled defaults (paired with every armed test).
fn disarm() {
    health::set_enabled(false);
    health::set_policy(Policy::Warn);
    health::set_inject_nan(None);
    health::set_inject_window(None);
    health::reset();
    profile::set_enabled(false);
}

const TWO_SOURCES: [DomainId; 2] = [DomainId::EthUcy, DomainId::LCas];
const THREE_SOURCES: [DomainId; 3] = [DomainId::EthUcy, DomainId::LCas, DomainId::Syi];

#[test]
fn workers_1_and_4_emit_identical_health_series() {
    let _g = LOCK.lock().unwrap();
    let (losses_1, records_1) = run_health_workload(1, &TWO_SOURCES);
    let (losses_4, records_4) = run_health_workload(4, &TWO_SOURCES);
    disarm();

    // Health capture must not perturb training: losses bit-identical.
    assert_eq!(losses_1.len(), losses_4.len());
    for (e, (a, b)) in losses_1.iter().zip(&losses_4).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "epoch {e} loss differs");
    }

    // The record streams themselves (per-domain grad norms, pairwise
    // cosines, update ratios — exact f64s) match for any worker count.
    assert!(!records_1.is_empty(), "no health records captured");
    assert_eq!(records_1, records_4, "health record streams differ");

    // And so does the serialized JSONL, modulo the header timestamp
    // (pinned here to the same value).
    assert_eq!(
        health::render_jsonl(&records_1, 0),
        health::render_jsonl(&records_4, 0)
    );
}

#[test]
fn pinned_seed_three_source_run_emits_pairwise_cosines_every_epoch() {
    let _g = LOCK.lock().unwrap();
    let (_, records_a) = run_health_workload(2, &THREE_SOURCES);
    let (_, records_b) = run_health_workload(2, &THREE_SOURCES);
    disarm();

    // Pinned seed (AdapTrajConfig::smoke's default) => reproducible
    // diagnostics, down to the bit.
    assert_eq!(records_a, records_b, "pinned-seed health series drifted");

    let epochs: Vec<_> = records_a
        .iter()
        .filter_map(|r| match r {
            HealthRecord::Epoch(e) => Some(e),
            _ => None,
        })
        .collect();
    assert_eq!(epochs.len(), 3, "one health record per epoch");
    for e in &epochs {
        // All three domains and all 3-choose-2 ordered pairs, per epoch.
        let domains: Vec<&str> = e.domains.iter().map(|d| d.domain.as_str()).collect();
        assert_eq!(domains, ["ETH&UCY", "L-CAS", "SYI"]);
        let pairs: Vec<(&str, &str)> = e
            .cosines
            .iter()
            .map(|c| (c.a.as_str(), c.b.as_str()))
            .collect();
        assert_eq!(
            pairs,
            [("ETH&UCY", "L-CAS"), ("ETH&UCY", "SYI"), ("L-CAS", "SYI")]
        );
        for c in &e.cosines {
            assert!(
                c.cosine.is_finite() && c.cosine.abs() <= 1.0 + 1e-9,
                "cosine {}__{} out of range: {}",
                c.a,
                c.b,
                c.cosine
            );
        }
        for d in &e.domains {
            assert!(d.grad_norm.is_finite() && d.grad_norm >= 0.0);
        }
        assert!(!e.update_ratios.is_empty(), "no update-to-weight ratios");
    }

    // The same numbers are mirrored into the metrics registry as gauges
    // (the /metrics surface).
    let snap = adaptraj::obs::global().snapshot();
    let last = epochs.last().unwrap();
    for c in &last.cosines {
        let name = format!("health.grad_cosine.{}__{}", c.a, c.b);
        assert_eq!(
            snap.gauge(&name),
            Some(c.cosine),
            "gauge {name} missing or stale"
        );
    }
    for d in &last.domains {
        let name = format!("health.grad_norm.{}", d.domain);
        assert_eq!(snap.gauge(&name), Some(d.grad_norm));
    }
}

#[test]
fn injected_nan_is_attributed_and_doctor_flags_it() {
    let _g = LOCK.lock().unwrap();
    health::set_inject_nan(Some(500));
    let (_, records) = run_health_workload(2, &TWO_SOURCES);
    disarm();

    let incident = records
        .iter()
        .find_map(|r| match r {
            HealthRecord::Incident(i) => Some(i.clone()),
            _ => None,
        })
        .expect("injected NaN did not trip a wire");
    assert!(!incident.op.is_empty(), "incident missing op kind");
    assert!(!incident.phase.is_empty(), "incident missing phase path");
    assert!(incident.stats.nan_count >= 1);

    // The doctor pins the same incident as the first unhealthy op and
    // goes fatal on it.
    let d = diagnose(None, &records);
    assert!(d.fatal());
    let first = d.first_unhealthy_op.as_ref().unwrap();
    assert_eq!(first.op, incident.op);
    assert_eq!(first.phase, incident.phase);

    // The JSONL stream round-trips the incident.
    let text = health::render_jsonl(&records, 0);
    let back = parse_health_jsonl(&text).unwrap();
    assert_eq!(back, records);
}

#[test]
fn halt_and_dump_stops_training_and_writes_a_loadable_bundle() {
    let _g = LOCK.lock().unwrap();
    health::set_policy(Policy::HaltAndDump);
    health::set_inject_nan(Some(500));
    let (losses, records) = run_health_workload(2, &TWO_SOURCES);
    assert!(health::halt_requested(), "halt latch never set");
    // Training stopped at the epoch that tripped.
    assert!(losses.len() < 3, "training ran to completion despite halt");
    assert!(records
        .iter()
        .any(|r| matches!(r, HealthRecord::Incident(_))));

    let dir = std::env::temp_dir().join(format!("adaptraj_health_bundle_{}", std::process::id()));
    health::write_bundle(&dir, Some("{\"schema\":\"adaptraj-run-manifest/v1\"}"), 50).unwrap();
    disarm();

    let bundle = std::fs::read_to_string(dir.join("bundle.json")).unwrap();
    let v = Value::parse(&bundle).unwrap();
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some(health::BUNDLE_SCHEMA)
    );
    assert!(v.get("first_incident").is_some(), "bundle lacks incident");
    assert!(v.get("incidents").and_then(Value::as_u64).unwrap_or(0) >= 1);

    // Every listed file exists and the health tail re-parses.
    for f in v.get("files").and_then(Value::as_array).unwrap() {
        let name = f.as_str().unwrap();
        assert!(dir.join(name).exists(), "bundle file {name} missing");
    }
    let tail = std::fs::read_to_string(dir.join("health.jsonl")).unwrap();
    let parsed = parse_health_jsonl(&tail).unwrap();
    assert!(parsed
        .iter()
        .any(|r| matches!(r, HealthRecord::Incident(_))));
}

#[test]
fn health_capture_is_observation_only() {
    let _g = LOCK.lock().unwrap();
    let (losses_on, records) = run_health_workload(2, &TWO_SOURCES);
    disarm();
    assert!(!records.is_empty());

    // The identical workload with the observatory fully disarmed: the
    // probes and accumulators must not have changed a single bit.
    let synth = SynthesisConfig::smoke();
    let mut train = Vec::new();
    for &s in &TWO_SOURCES {
        train.extend(synthesize_domain(s, &synth).train);
    }
    let mut cfg = AdapTrajConfig::smoke();
    cfg.trainer.epochs = 3;
    cfg.trainer.max_train_windows = 24;
    cfg.trainer.workers = 2;
    let mut model = AdapTraj::new(cfg, &TWO_SOURCES, |s, r, extra| {
        PecNet::new(s, r, BackboneConfig::default().with_extra(extra))
    });
    let losses_off = model.fit(&train).epoch_losses;

    assert_eq!(losses_on.len(), losses_off.len());
    for (e, (a, b)) in losses_on.iter().zip(&losses_off).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "epoch {e}: health capture perturbed training ({a} vs {b})"
        );
    }
}

#[test]
fn skip_window_policy_stays_deterministic_across_worker_counts() {
    let _g = LOCK.lock().unwrap();

    // Window-targeted injection: poison window 5 of epoch 0. Unlike the
    // op-index mode (a process-global counter, racy across workers),
    // this trigger is attached to the thread-local window context, so
    // the same window faults for every worker count.
    let run = |workers: usize| {
        health::set_policy(Policy::SkipWindow);
        health::set_inject_window(Some((0, 5)));
        run_health_workload(workers, &TWO_SOURCES)
    };
    let (losses_1, records_1) = run(1);
    let (losses_4, records_4) = run(4);
    disarm();

    // The skipped window drops out of the reduction identically for any
    // worker count: same losses, same record stream.
    assert_eq!(losses_1.len(), losses_4.len());
    for (a, b) in losses_1.iter().zip(&losses_4) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(records_1, records_4);
    // Training ran to completion (skip-window does not halt).
    assert_eq!(losses_1.len(), 3);
}
