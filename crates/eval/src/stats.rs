//! Statistical comparison of predictors: paired bootstrap confidence
//! intervals for error differences.
//!
//! The reproduction's budgets make single-run comparisons noisy (see
//! EXPERIMENTS.md); this module provides the tool to make claims
//! properly: evaluate two methods on the *same* windows, then bootstrap
//! the per-window error differences to get a confidence interval on the
//! mean difference. If the interval excludes zero, the ordering is
//! resolved at that confidence level.

use adaptraj_tensor::rng::Rng;

/// Result of a paired bootstrap comparison `A − B` (negative mean favors
/// method A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedBootstrap {
    /// Mean of the paired differences.
    pub mean_diff: f32,
    /// Lower bound of the central confidence interval.
    pub ci_low: f32,
    /// Upper bound of the central confidence interval.
    pub ci_high: f32,
    /// Confidence level the interval was computed at (e.g. 0.95).
    pub confidence: f32,
}

impl PairedBootstrap {
    /// True if the interval excludes zero — the ordering is resolved.
    pub fn significant(&self) -> bool {
        self.ci_low > 0.0 || self.ci_high < 0.0
    }
}

/// Paired bootstrap over per-window errors of two methods evaluated on
/// identical windows. `resamples` of 1000+ are typical. Panics if the
/// slices are empty or of different lengths.
pub fn paired_bootstrap(
    errors_a: &[f32],
    errors_b: &[f32],
    resamples: usize,
    confidence: f32,
    seed: u64,
) -> PairedBootstrap {
    assert_eq!(
        errors_a.len(),
        errors_b.len(),
        "paired test needs matched windows"
    );
    assert!(!errors_a.is_empty(), "paired test on empty data");
    assert!(
        (0.0..1.0).contains(&(1.0 - confidence)),
        "confidence must be in (0, 1)"
    );
    let n = errors_a.len();
    let diffs: Vec<f32> = errors_a
        .iter()
        .zip(errors_b)
        .map(|(&a, &b)| a - b)
        .collect();
    let mean_diff = diffs.iter().sum::<f32>() / n as f32;

    let mut rng = Rng::seed_from(seed);
    let mut means: Vec<f32> = (0..resamples.max(1))
        .map(|_| {
            let mut s = 0.0f32;
            for _ in 0..n {
                s += diffs[rng.below(n)];
            }
            s / n as f32
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((means.len() as f32) * alpha).floor() as usize;
    let hi_idx = (((means.len() as f32) * (1.0 - alpha)).ceil() as usize)
        .min(means.len())
        .saturating_sub(1);
    PairedBootstrap {
        mean_diff,
        ci_low: means[lo_idx],
        ci_high: means[hi_idx],
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_difference_is_significant() {
        // Method A consistently 0.5 better than B with small jitter.
        let mut rng = Rng::seed_from(0);
        let b: Vec<f32> = (0..200).map(|_| rng.uniform(1.0, 2.0)).collect();
        let a: Vec<f32> = b.iter().map(|&x| x - 0.5 + rng.normal(0.0, 0.05)).collect();
        let r = paired_bootstrap(&a, &b, 1000, 0.95, 7);
        assert!(r.mean_diff < -0.4);
        assert!(r.significant(), "{r:?}");
        assert!(r.ci_high < 0.0);
    }

    #[test]
    fn pure_noise_is_not_significant() {
        let mut rng = Rng::seed_from(1);
        let a: Vec<f32> = (0..200).map(|_| rng.normal(1.0, 0.3)).collect();
        let b: Vec<f32> = (0..200).map(|_| rng.normal(1.0, 0.3)).collect();
        let r = paired_bootstrap(&a, &b, 1000, 0.95, 7);
        assert!(!r.significant(), "{r:?}");
        assert!(r.ci_low < 0.0 && r.ci_high > 0.0);
    }

    #[test]
    fn interval_contains_mean() {
        let a = [1.0f32, 1.1, 0.9, 1.2, 1.05];
        let b = [1.2f32, 1.3, 1.0, 1.4, 1.1];
        let r = paired_bootstrap(&a, &b, 500, 0.9, 3);
        assert!(r.ci_low <= r.mean_diff && r.mean_diff <= r.ci_high);
        assert_eq!(r.confidence, 0.9);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [1.5f32, 2.5, 2.5, 4.5];
        let r1 = paired_bootstrap(&a, &b, 200, 0.95, 42);
        let r2 = paired_bootstrap(&a, &b, 200, 0.95, 42);
        assert_eq!(r1, r2);
    }

    #[test]
    fn wider_confidence_widens_interval() {
        let mut rng = Rng::seed_from(2);
        let a: Vec<f32> = (0..100).map(|_| rng.normal(1.0, 0.2)).collect();
        let b: Vec<f32> = (0..100).map(|_| rng.normal(1.05, 0.2)).collect();
        let narrow = paired_bootstrap(&a, &b, 2000, 0.8, 5);
        let wide = paired_bootstrap(&a, &b, 2000, 0.99, 5);
        assert!(wide.ci_high - wide.ci_low >= narrow.ci_high - narrow.ci_low);
    }

    #[test]
    #[should_panic(expected = "matched windows")]
    fn mismatched_lengths_panic() {
        paired_bootstrap(&[1.0], &[1.0, 2.0], 10, 0.95, 0);
    }
}
