//! # adaptraj-eval
//!
//! Metrics and experiment orchestration for the AdapTraj reproduction.
//!
//! * [`metrics`] — ADE/FDE (Sec. IV-A.3) and best-of-k variants for
//!   stochastic predictors.
//! * [`runner`] — builds, trains, and evaluates one experiment cell
//!   (backbone × learning method × source set × target domain), including
//!   the per-trajectory inference timing used by Table VIII.
//! * [`tables`] — aligned text tables matching the paper's layout,
//!   rendered by the `adaptraj-bench` table binaries.

pub mod metrics;
pub mod runner;
pub mod social;
pub mod stats;
pub mod tables;
pub mod viz;

pub use metrics::{ade, best_of_k, fde, EvalAccumulator, EvalResult};
pub use runner::{
    build_predictor, evaluate, leave_one_out, pooled_train, run_cell, run_cell_avg, target_test,
    BackboneKind, CellResult, CellSpec, MethodKind, RunnerConfig,
};
pub use social::{collides, misses, SocialAccumulator, SocialReport};
pub use stats::{paired_bootstrap, PairedBootstrap};
pub use tables::TextTable;
pub use viz::{render_window, VizOptions};
