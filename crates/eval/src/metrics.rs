//! Evaluation metrics: Average and Final Displacement Error (Sec. IV-A.3).

use adaptraj_data::trajectory::Point;

/// Euclidean distance between two points.
#[inline]
fn dist(a: Point, b: Point) -> f32 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
}

/// ADE: mean Euclidean distance between predicted and ground-truth
/// locations over the prediction horizon.
///
/// ```
/// use adaptraj_eval::metrics::ade;
/// let gt = [[0.0, 0.0], [1.0, 0.0]];
/// let pred = [[0.0, 1.0], [1.0, 1.0]];
/// assert!((ade(&pred, &gt) - 1.0).abs() < 1e-6);
/// ```
pub fn ade(pred: &[Point], gt: &[Point]) -> f32 {
    assert_eq!(pred.len(), gt.len(), "ADE needs equal-length tracks");
    assert!(!pred.is_empty(), "ADE of empty tracks");
    pred.iter().zip(gt).map(|(&p, &g)| dist(p, g)).sum::<f32>() / pred.len() as f32
}

/// FDE: Euclidean distance at the final prediction step.
pub fn fde(pred: &[Point], gt: &[Point]) -> f32 {
    assert_eq!(pred.len(), gt.len(), "FDE needs equal-length tracks");
    let (&p, &g) = (
        pred.last().expect("non-empty"),
        gt.last().expect("non-empty"),
    );
    dist(p, g)
}

/// Best-of-k errors: the minimum ADE and minimum FDE over `k` sampled
/// futures (each minimized independently, the standard protocol for
/// stochastic predictors).
///
/// ```
/// use adaptraj_eval::metrics::best_of_k;
/// let gt = vec![[1.0, 0.0]];
/// let samples = vec![vec![[3.0, 0.0]], vec![[1.5, 0.0]]];
/// let (ade, fde) = best_of_k(&samples, &gt);
/// assert!((ade - 0.5).abs() < 1e-6 && (fde - 0.5).abs() < 1e-6);
/// ```
pub fn best_of_k(samples: &[Vec<Point>], gt: &[Point]) -> (f32, f32) {
    assert!(!samples.is_empty(), "need at least one sample");
    let min_ade = samples
        .iter()
        .map(|s| ade(s, gt))
        .fold(f32::INFINITY, f32::min);
    let min_fde = samples
        .iter()
        .map(|s| fde(s, gt))
        .fold(f32::INFINITY, f32::min);
    (min_ade, min_fde)
}

/// Aggregate ADE/FDE over a test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    pub ade: f32,
    pub fde: f32,
}

impl std::fmt::Display for EvalResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}/{:.3}", self.ade, self.fde)
    }
}

/// Running average over windows.
#[derive(Debug, Default, Clone)]
pub struct EvalAccumulator {
    ade_sum: f64,
    fde_sum: f64,
    n: usize,
}

impl EvalAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, ade: f32, fde: f32) {
        self.ade_sum += ade as f64;
        self.fde_sum += fde as f64;
        self.n += 1;
    }

    pub fn count(&self) -> usize {
        self.n
    }

    pub fn result(&self) -> EvalResult {
        let n = self.n.max(1) as f64;
        EvalResult {
            ade: (self.ade_sum / n) as f32,
            fde: (self.fde_sum / n) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_zero_error() {
        let gt: Vec<Point> = (0..12).map(|t| [t as f32, 2.0 * t as f32]).collect();
        assert_eq!(ade(&gt, &gt), 0.0);
        assert_eq!(fde(&gt, &gt), 0.0);
    }

    #[test]
    fn constant_offset_error() {
        let gt: Vec<Point> = (0..12).map(|t| [t as f32, 0.0]).collect();
        let pred: Vec<Point> = gt.iter().map(|p| [p[0] + 3.0, p[1] + 4.0]).collect();
        assert!((ade(&pred, &gt) - 5.0).abs() < 1e-6);
        assert!((fde(&pred, &gt) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fde_only_cares_about_last_step() {
        let gt: Vec<Point> = vec![[0.0, 0.0], [1.0, 0.0]];
        let pred: Vec<Point> = vec![[100.0, 0.0], [1.0, 0.0]];
        assert_eq!(fde(&pred, &gt), 0.0);
        assert!(ade(&pred, &gt) > 0.0);
    }

    #[test]
    fn best_of_k_not_worse_than_any_sample() {
        let gt: Vec<Point> = (0..4).map(|t| [t as f32, 0.0]).collect();
        let good: Vec<Point> = gt.iter().map(|p| [p[0] + 0.1, p[1]]).collect();
        let bad: Vec<Point> = gt.iter().map(|p| [p[0] + 5.0, p[1]]).collect();
        let (a, f) = best_of_k(&[bad.clone(), good.clone()], &gt);
        assert!((a - 0.1).abs() < 1e-5);
        assert!((f - 0.1).abs() < 1e-5);
        // Monotonicity: adding samples can only improve the minimum.
        let (a1, _) = best_of_k(&[bad], &gt);
        assert!(a <= a1);
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = EvalAccumulator::new();
        acc.push(1.0, 2.0);
        acc.push(3.0, 4.0);
        assert_eq!(acc.count(), 2);
        let r = acc.result();
        assert!((r.ade - 2.0).abs() < 1e-6);
        assert!((r.fde - 3.0).abs() < 1e-6);
        assert_eq!(format!("{r}"), "2.000/3.000");
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn ade_rejects_mismatched_lengths() {
        ade(&[[0.0, 0.0]], &[[0.0, 0.0], [1.0, 1.0]]);
    }
}
