//! Social-compliance and coverage metrics beyond ADE/FDE.
//!
//! The paper motivates multi-agent prediction with socially governed
//! behaviors (collision avoidance, social distances). These metrics make
//! that aspect measurable for predicted futures: collision rate against
//! observed neighbor positions (extrapolated at constant velocity over
//! the prediction horizon, the standard approximation when neighbor
//! futures are not predicted jointly) and miss rate at a distance
//! threshold — both common in the trajectory-forecasting literature
//! (e.g. TrajNet++).

use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_PRED};

/// Body-to-body distance (m) under which two pedestrians are considered
/// colliding (2 × body radius of the simulator's agents).
pub const COLLISION_RADIUS: f32 = 0.6;

/// Final-displacement threshold (m) for the miss rate.
pub const MISS_THRESHOLD: f32 = 2.0;

#[inline]
fn dist(a: Point, b: Point) -> f32 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
}

/// Extrapolates a neighbor's observed track at constant velocity over the
/// prediction horizon.
fn extrapolate_neighbor(obs: &[Point]) -> Vec<Point> {
    debug_assert_eq!(obs.len(), T_OBS);
    let last = obs[T_OBS - 1];
    let vel = [last[0] - obs[T_OBS - 2][0], last[1] - obs[T_OBS - 2][1]];
    (1..=T_PRED)
        .map(|t| [last[0] + vel[0] * t as f32, last[1] + vel[1] * t as f32])
        .collect()
}

/// True if the predicted future comes within [`COLLISION_RADIUS`] of any
/// (constant-velocity extrapolated) neighbor at the same time step.
pub fn collides(pred: &[Point], w: &TrajWindow) -> bool {
    assert_eq!(pred.len(), T_PRED, "prediction horizon mismatch");
    w.neighbors.iter().any(|nb| {
        let nb_future = extrapolate_neighbor(nb);
        pred.iter()
            .zip(&nb_future)
            .any(|(&p, &q)| dist(p, q) < COLLISION_RADIUS)
    })
}

/// True if the prediction's final point misses the ground truth by more
/// than [`MISS_THRESHOLD`].
pub fn misses(pred: &[Point], gt: &[Point]) -> bool {
    dist(
        *pred.last().expect("non-empty"),
        *gt.last().expect("non-empty"),
    ) > MISS_THRESHOLD
}

/// Aggregate social metrics over a test set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SocialReport {
    /// Fraction of windows whose prediction collides with a neighbor.
    pub collision_rate: f32,
    /// Fraction of windows missing the goal by more than the threshold.
    pub miss_rate: f32,
    pub windows: usize,
}

/// Accumulates per-window social metrics.
#[derive(Debug, Default, Clone)]
pub struct SocialAccumulator {
    collisions: usize,
    misses: usize,
    n: usize,
}

impl SocialAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, pred: &[Point], w: &TrajWindow) {
        if collides(pred, w) {
            self.collisions += 1;
        }
        if misses(pred, &w.fut) {
            self.misses += 1;
        }
        self.n += 1;
    }

    pub fn report(&self) -> SocialReport {
        let n = self.n.max(1) as f32;
        SocialReport {
            collision_rate: self.collisions as f32 / n,
            miss_rate: self.misses as f32 / n,
            windows: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::T_TOTAL;

    fn window_with_parallel_neighbor(offset_y: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [0.4 * t as f32, 0.0]).collect();
        let nb: Vec<Point> = (0..T_OBS).map(|t| [0.4 * t as f32, offset_y]).collect();
        TrajWindow::from_world(&focal, &[nb], DomainId::EthUcy)
    }

    #[test]
    fn parallel_distant_neighbor_never_collides() {
        let w = window_with_parallel_neighbor(5.0);
        assert!(!collides(&w.fut, &w));
    }

    #[test]
    fn converging_prediction_collides() {
        let w = window_with_parallel_neighbor(1.0);
        // A prediction that swerves into the neighbor's lane.
        let pred: Vec<Point> = (1..=T_PRED).map(|t| [0.4 * t as f32, 1.0]).collect();
        assert!(collides(&pred, &w));
    }

    #[test]
    fn ground_truth_future_is_not_a_miss_of_itself() {
        let w = window_with_parallel_neighbor(3.0);
        assert!(!misses(&w.fut, &w.fut));
        let mut far = w.fut.clone();
        far.last_mut().unwrap()[0] += 10.0;
        assert!(misses(&far, &w.fut));
    }

    #[test]
    fn extrapolation_continues_velocity() {
        let obs: Vec<Point> = (0..T_OBS).map(|t| [0.5 * t as f32, 1.0]).collect();
        let fut = extrapolate_neighbor(&obs);
        assert_eq!(fut.len(), T_PRED);
        assert!((fut[0][0] - 0.5 * T_OBS as f32).abs() < 1e-5);
        assert!((fut[T_PRED - 1][1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn accumulator_rates() {
        let w = window_with_parallel_neighbor(1.0);
        let mut acc = SocialAccumulator::new();
        acc.push(&w.fut, &w); // clean
        let colliding: Vec<Point> = (1..=T_PRED).map(|t| [0.4 * t as f32, 1.0]).collect();
        acc.push(&colliding, &w); // collides and (far from gt? final y=1, gt y=0 -> miss only if >2m: no)
        let r = acc.report();
        assert_eq!(r.windows, 2);
        assert!((r.collision_rate - 0.5).abs() < 1e-6);
        assert!(r.miss_rate <= 0.5);
    }

    #[test]
    fn windowless_report_is_zero() {
        let r = SocialAccumulator::new().report();
        assert_eq!(r.collision_rate, 0.0);
        assert_eq!(r.windows, 0);
    }
}
