//! SVG rendering of prediction windows — observed history, ground-truth
//! future, sampled predictions, and neighbors — for qualitative
//! inspection of model behavior (the kind of figure trajectory-prediction
//! papers show alongside their tables).

use adaptraj_data::trajectory::{Point, TrajWindow};

/// Styling and layout options.
#[derive(Debug, Clone)]
pub struct VizOptions {
    /// Output width/height in pixels.
    pub size: f32,
    /// Padding around the data extent, as a fraction of the extent.
    pub margin: f32,
}

impl Default for VizOptions {
    fn default() -> Self {
        Self {
            size: 480.0,
            margin: 0.15,
        }
    }
}

fn extent(points: impl Iterator<Item = Point>) -> (Point, Point) {
    let mut lo = [f32::INFINITY, f32::INFINITY];
    let mut hi = [f32::NEG_INFINITY, f32::NEG_INFINITY];
    for p in points {
        for d in 0..2 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    (lo, hi)
}

fn polyline(points: &[Point], to_px: &impl Fn(Point) -> (f32, f32), style: &str) -> String {
    let coords: Vec<String> = points
        .iter()
        .map(|&p| {
            let (x, y) = to_px(p);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<polyline points=\"{}\" fill=\"none\" {style}/>\n",
        coords.join(" ")
    )
}

/// Renders a window with any number of sampled predictions to an SVG
/// document. Colors: observed focal track black, ground-truth future
/// green, predictions orange, neighbors light blue.
pub fn render_window(w: &TrajWindow, predictions: &[Vec<Point>], opts: &VizOptions) -> String {
    let all_points = w
        .obs
        .iter()
        .chain(&w.fut)
        .copied()
        .chain(w.neighbors.iter().flatten().copied())
        .chain(predictions.iter().flatten().copied());
    let (lo, hi) = extent(all_points);
    let span = (hi[0] - lo[0]).max(hi[1] - lo[1]).max(1e-3);
    let pad = span * opts.margin;
    let scale = opts.size / (span + 2.0 * pad);
    let to_px = |p: Point| -> (f32, f32) {
        (
            (p[0] - lo[0] + pad) * scale,
            // SVG y grows downward; world y grows upward.
            opts.size - (p[1] - lo[1] + pad) * scale,
        )
    };

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{0}\" height=\"{0}\" \
         viewBox=\"0 0 {0} {0}\">\n",
        opts.size
    ));
    svg.push_str(&format!(
        "<rect width=\"{0}\" height=\"{0}\" fill=\"white\"/>\n",
        opts.size
    ));
    for nb in &w.neighbors {
        svg.push_str(&polyline(
            nb,
            &to_px,
            "stroke=\"#8ecae6\" stroke-width=\"1.5\"",
        ));
    }
    for pred in predictions {
        svg.push_str(&polyline(
            pred,
            &to_px,
            "stroke=\"#fb8500\" stroke-width=\"1.5\" stroke-dasharray=\"4 2\"",
        ));
    }
    svg.push_str(&polyline(
        &w.obs,
        &to_px,
        "stroke=\"#222222\" stroke-width=\"2\"",
    ));
    svg.push_str(&polyline(
        &w.fut,
        &to_px,
        "stroke=\"#2a9d34\" stroke-width=\"2\"",
    ));
    // Origin marker (the focal agent's last observed position).
    let (ox, oy) = to_px([0.0, 0.0]);
    svg.push_str(&format!(
        "<circle cx=\"{ox:.1}\" cy=\"{oy:.1}\" r=\"3\" fill=\"#222222\"/>\n"
    ));
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{T_OBS, T_PRED, T_TOTAL};

    fn sample_window() -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL)
            .map(|t| [0.4 * t as f32, 0.1 * t as f32])
            .collect();
        let nb: Vec<Point> = (0..T_OBS).map(|t| [0.4 * t as f32, 2.0]).collect();
        TrajWindow::from_world(&focal, &[nb], DomainId::EthUcy)
    }

    #[test]
    fn renders_well_formed_svg() {
        let w = sample_window();
        let pred: Vec<Point> = (1..=T_PRED).map(|t| [0.4 * t as f32, 0.0]).collect();
        let svg = render_window(&w, &[pred], &VizOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One neighbor + one prediction + obs + fut = 4 polylines.
        assert_eq!(svg.matches("<polyline").count(), 4);
        assert!(svg.contains("stroke-dasharray"), "prediction style missing");
        // No NaN coordinates escaped into the document.
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn no_predictions_is_fine() {
        let w = sample_window();
        let svg = render_window(&w, &[], &VizOptions::default());
        assert_eq!(svg.matches("<polyline").count(), 3);
    }

    #[test]
    fn coordinates_stay_in_canvas() {
        let w = sample_window();
        let opts = VizOptions::default();
        let svg = render_window(&w, &[], &opts);
        for token in svg.split(['"', ' ', ',']) {
            if let Ok(v) = token.parse::<f32>() {
                assert!(
                    (-1.0..=opts.size + 1.0).contains(&v),
                    "coordinate {v} outside canvas"
                );
            }
        }
    }

    #[test]
    fn degenerate_single_point_window_does_not_panic() {
        // A stationary focal agent (all points identical) exercises the
        // zero-span guard.
        let focal = vec![[1.0, 1.0]; T_TOTAL];
        let w = TrajWindow::from_world(&focal, &[], DomainId::LCas);
        let svg = render_window(&w, &[], &VizOptions::default());
        assert!(svg.contains("<circle"));
    }
}
