//! Aligned plain-text tables matching the paper's layout.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert!(
            cells.len() <= self.headers.len(),
            "row wider than header ({} > {})",
            cells.len(),
            self.headers.len()
        );
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Renders with `|`-separated, space-padded columns and a rule under
    /// the header.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let render_row = |cells: &[String], w: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(w)
                .map(|(c, &width)| format!("{c:<width$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        out.push_str(&render_row(&self.headers, &w));
        out.push('\n');
        let rule: Vec<String> = w.iter().map(|&width| "-".repeat(width)).collect();
        out.push_str(&format!("|-{}-|", rule.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &w));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["Method", "ADE", "FDE"]);
        t.push_row(vec![
            "PECNet-vanilla".into(),
            "0.948".into(),
            "1.785".into(),
        ]);
        t.push_row(vec!["x".into(), "1".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("Method"));
        assert!(lines[2].contains("PECNet-vanilla"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(&["A", "B"]);
        t.push_row(vec!["only".into()]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("only"));
    }

    #[test]
    #[should_panic(expected = "row wider")]
    fn rejects_wide_rows() {
        let mut t = TextTable::new(&["A"]);
        t.push_row(vec!["x".into(), "y".into()]);
    }
}
