//! Experiment orchestration: build, train, and evaluate one table cell
//! (backbone × learning method × source set × target domain).

use crate::metrics::{best_of_k, EvalAccumulator, EvalResult};
use adaptraj_core::{AdapTraj, AdapTrajConfig};
use adaptraj_data::dataset::DomainDataset;
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::TrajWindow;
use adaptraj_exec::{window_seed, WorkerPool};
use adaptraj_models::predictor::TrainReport;
use adaptraj_models::{
    BackboneConfig, CausalMotion, Counter, Lbebm, PecNet, Predictor, TrainerConfig, Vanilla,
};
use adaptraj_obs::{Level, Span};
use adaptraj_tensor::Rng;
use std::time::Instant;

/// Which backbone a cell uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackboneKind {
    PecNet,
    Lbebm,
}

impl BackboneKind {
    pub const ALL: [BackboneKind; 2] = [BackboneKind::PecNet, BackboneKind::Lbebm];

    pub fn name(self) -> &'static str {
        match self {
            BackboneKind::PecNet => "PECNet",
            BackboneKind::Lbebm => "LBEBM",
        }
    }
}

/// Which learning method a cell uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    Vanilla,
    Counter,
    CausalMotion,
    AdapTraj,
    /// Ablation: AdapTraj without domain-specific features.
    AdapTrajNoSpecific,
    /// Ablation: AdapTraj without domain-invariant features.
    AdapTrajNoInvariant,
}

impl MethodKind {
    /// The four compared methods of Tables II–VI.
    pub const COMPARED: [MethodKind; 4] = [
        MethodKind::Vanilla,
        MethodKind::Counter,
        MethodKind::CausalMotion,
        MethodKind::AdapTraj,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Vanilla => "vanilla",
            MethodKind::Counter => "Counter",
            MethodKind::CausalMotion => "CausalMotion",
            MethodKind::AdapTraj => "AdapTraj",
            MethodKind::AdapTrajNoSpecific => "w/o specific",
            MethodKind::AdapTrajNoInvariant => "w/o invariant",
        }
    }
}

/// One experiment cell.
#[derive(Debug, Clone)]
pub struct CellSpec {
    pub backbone: BackboneKind,
    pub method: MethodKind,
    pub sources: Vec<DomainId>,
    pub target: DomainId,
}

impl CellSpec {
    pub fn label(&self) -> String {
        let srcs: Vec<&str> = self.sources.iter().map(|d| d.name()).collect();
        format!(
            "{}-{} [{} -> {}]",
            self.backbone.name(),
            self.method.name(),
            srcs.join("+"),
            self.target.name()
        )
    }
}

/// Result of one cell: errors plus timing diagnostics.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub spec: CellSpec,
    pub eval: EvalResult,
    /// Mean wall-clock inference time per trajectory (seconds), single
    /// sample, excluding metric computation — the Table VIII quantity.
    pub infer_time_s: f64,
    pub train_time_s: f64,
    pub final_train_loss: Option<f32>,
    /// Full per-epoch training telemetry (feeds the run manifest). For
    /// [`run_cell_avg`] this is the report of the last seed's run.
    pub report: TrainReport,
}

/// Scale knobs for a whole experiment run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    pub backbone: BackboneConfig,
    pub trainer: TrainerConfig,
    /// AdapTraj-specific settings; its inner `trainer` is overridden by
    /// `trainer` above so all methods share the optimization budget.
    pub adaptraj: AdapTrajConfig,
    /// Best-of-k samples per window at evaluation.
    pub samples_k: usize,
    /// Cap on evaluated test windows (0 = all).
    pub eval_cap: usize,
    /// Evaluation RNG seed.
    pub eval_seed: u64,
    /// Fraction of the epoch budget spent in Alg. 1 step 1 (sets
    /// `e_start = frac * epochs`).
    pub e_start_frac: f32,
    /// Fraction at which step 3 begins (`e_end = frac * epochs`).
    pub e_end_frac: f32,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            backbone: BackboneConfig::default(),
            trainer: TrainerConfig::default(),
            adaptraj: AdapTrajConfig::default(),
            samples_k: 3,
            eval_cap: 80,
            eval_seed: 99,
            e_start_frac: 0.6,
            e_end_frac: 0.8,
        }
    }
}

impl RunnerConfig {
    /// Minutes-scale settings for CI and quick runs.
    pub fn smoke() -> Self {
        Self {
            trainer: TrainerConfig {
                epochs: 6,
                max_train_windows: 150,
                ..TrainerConfig::default()
            },
            samples_k: 2,
            eval_cap: 40,
            ..Default::default()
        }
    }

    /// The AdapTraj config with the shared trainer budget and the schedule
    /// fractions applied to it.
    pub fn adaptraj_for_run(&self) -> AdapTrajConfig {
        let e_total = self.trainer.epochs;
        let e_start = ((e_total as f32) * self.e_start_frac).round() as usize;
        let e_end = (((e_total as f32) * self.e_end_frac).round() as usize).clamp(e_start, e_total);
        AdapTrajConfig {
            trainer: self.trainer.clone(),
            e_start: e_start.min(e_end),
            e_end,
            ..self.adaptraj.clone()
        }
    }
}

/// Builds the predictor for a cell.
pub fn build_predictor(spec: &CellSpec, cfg: &RunnerConfig) -> Box<dyn Predictor> {
    let bcfg = cfg.backbone.clone();
    let tcfg = cfg.trainer.clone();
    match (spec.backbone, spec.method) {
        (BackboneKind::PecNet, MethodKind::Vanilla) => {
            Box::new(Vanilla::new(tcfg, move |s, r| PecNet::new(s, r, bcfg)))
        }
        (BackboneKind::PecNet, MethodKind::Counter) => {
            Box::new(Counter::new(tcfg, move |s, r| PecNet::new(s, r, bcfg)))
        }
        (BackboneKind::PecNet, MethodKind::CausalMotion) => {
            Box::new(CausalMotion::new(tcfg, move |s, r| PecNet::new(s, r, bcfg)))
        }
        (BackboneKind::Lbebm, MethodKind::Vanilla) => {
            Box::new(Vanilla::new(tcfg, move |s, r| Lbebm::new(s, r, bcfg)))
        }
        (BackboneKind::Lbebm, MethodKind::Counter) => {
            Box::new(Counter::new(tcfg, move |s, r| Lbebm::new(s, r, bcfg)))
        }
        (BackboneKind::Lbebm, MethodKind::CausalMotion) => {
            Box::new(CausalMotion::new(tcfg, move |s, r| Lbebm::new(s, r, bcfg)))
        }
        (backbone, method) => {
            // The AdapTraj family.
            let mut acfg = cfg.adaptraj_for_run();
            match method {
                MethodKind::AdapTraj => {}
                MethodKind::AdapTrajNoSpecific => acfg.ablation.use_specific = false,
                MethodKind::AdapTrajNoInvariant => acfg.ablation.use_invariant = false,
                _ => unreachable!("non-AdapTraj methods handled above"),
            }
            match backbone {
                BackboneKind::PecNet => {
                    Box::new(AdapTraj::new(acfg, &spec.sources, move |s, r, extra| {
                        PecNet::new(s, r, bcfg.with_extra(extra))
                    }))
                }
                BackboneKind::Lbebm => {
                    Box::new(AdapTraj::new(acfg, &spec.sources, move |s, r, extra| {
                        Lbebm::new(s, r, bcfg.with_extra(extra))
                    }))
                }
            }
        }
    }
}

/// Pools the training splits of the cell's source domains.
pub fn pooled_train(spec: &CellSpec, datasets: &[DomainDataset]) -> Vec<TrajWindow> {
    let mut out = Vec::new();
    for &src in &spec.sources {
        let ds = datasets
            .iter()
            .find(|d| d.domain == src)
            .unwrap_or_else(|| panic!("no dataset synthesized for {src:?}"));
        out.extend(ds.train.iter().cloned());
    }
    out
}

/// Test windows of the target domain, capped by *stride subsampling*
/// across the whole split (a chronological prefix would bias evaluation
/// toward the earliest recording sessions).
pub fn target_test<'a>(
    spec: &CellSpec,
    datasets: &'a [DomainDataset],
    cap: usize,
) -> Vec<&'a TrajWindow> {
    let ds = datasets
        .iter()
        .find(|d| d.domain == spec.target)
        .unwrap_or_else(|| panic!("no dataset synthesized for {:?}", spec.target));
    if cap == 0 || ds.test.len() <= cap {
        return ds.test.iter().collect();
    }
    let stride = ds.test.len() as f32 / cap as f32;
    (0..cap)
        .map(|i| &ds.test[(i as f32 * stride) as usize])
        .collect()
}

/// Evaluates a trained predictor on test windows (best-of-k) and measures
/// single-sample inference latency.
///
/// Windows are dispatched to the `adaptraj-exec` worker pool; each window
/// draws its `k` samples from an RNG seeded by [`window_seed`], so ADE/FDE
/// are bit-identical for every worker count. The per-window latency is the
/// wall-clock of the *first* sample, as before.
pub fn evaluate(
    predictor: &dyn Predictor,
    test: &[&TrajWindow],
    k: usize,
    seed: u64,
    workers: usize,
) -> (EvalResult, f64) {
    assert!(!test.is_empty(), "empty test set");
    // Flight-recorder lane: each window additionally records its own
    // queue_wait/job_run spans via the pool's instrumentation.
    let _tl = adaptraj_obs::timeline::span("evaluate", "eval");
    let pool = WorkerPool::new(workers);
    let results = pool
        .map(test, |i, w| {
            let mut rng = Rng::seed_from(window_seed(seed, 0, i as u64));
            let t0 = Instant::now();
            let first = predictor.predict(w, &mut rng);
            let latency = t0.elapsed().as_secs_f64();
            let mut samples = vec![first];
            for _ in 1..k.max(1) {
                samples.push(predictor.predict(w, &mut rng));
            }
            let (a, f) = best_of_k(&samples, &w.fut);
            (a, f, latency)
        })
        .unwrap_or_else(|e| panic!("evaluation worker panicked: {e}"));
    // Reduce in window order: identical accumulation for any worker count.
    let mut acc = EvalAccumulator::new();
    let mut latency = 0.0f64;
    for (a, f, l) in results {
        acc.push(a, f);
        latency += l;
    }
    (acc.result(), latency / test.len() as f64)
}

/// Trains and evaluates one cell end to end.
pub fn run_cell(spec: &CellSpec, datasets: &[DomainDataset], cfg: &RunnerConfig) -> CellResult {
    let mut span = Span::enter_at("eval.cell", "cell", Level::Info).with("label", spec.label());
    let train = pooled_train(spec, datasets);
    let test = target_test(spec, datasets, cfg.eval_cap);
    span.record("train_windows", train.len());
    span.record("test_windows", test.len());
    let mut predictor = build_predictor(spec, cfg);
    let t0 = Instant::now();
    let report = predictor.fit(&train);
    let train_time_s = t0.elapsed().as_secs_f64();
    let (eval, infer_time_s) = evaluate(
        predictor.as_ref(),
        &test,
        cfg.samples_k,
        cfg.eval_seed,
        cfg.trainer.workers,
    );
    span.record("ade", eval.ade);
    span.record("fde", eval.fde);
    span.record("train_s", train_time_s);
    CellResult {
        spec: spec.clone(),
        eval,
        infer_time_s,
        train_time_s,
        final_train_loss: report.final_loss(),
        report,
    }
}

/// Runs a cell once per seed and averages errors and timings — the
/// recommended protocol when single-run noise matters (see
/// EXPERIMENTS.md's methodology notes). Seeds override
/// `cfg.trainer.seed`; the evaluation seed is offset per run so sampled
/// futures differ too.
pub fn run_cell_avg(
    spec: &CellSpec,
    datasets: &[DomainDataset],
    cfg: &RunnerConfig,
    seeds: &[u64],
) -> CellResult {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut ade = 0.0f32;
    let mut fde = 0.0f32;
    let mut infer = 0.0f64;
    let mut train = 0.0f64;
    let mut last_loss = None;
    let mut last_report = TrainReport::default();
    for (i, &seed) in seeds.iter().enumerate() {
        let mut run_cfg = cfg.clone();
        run_cfg.trainer.seed = seed;
        run_cfg.eval_seed = cfg.eval_seed.wrapping_add(i as u64);
        let r = run_cell(spec, datasets, &run_cfg);
        ade += r.eval.ade;
        fde += r.eval.fde;
        infer += r.infer_time_s;
        train += r.train_time_s;
        last_loss = r.final_train_loss.or(last_loss);
        last_report = r.report;
    }
    let n = seeds.len() as f32;
    CellResult {
        spec: spec.clone(),
        eval: EvalResult {
            ade: ade / n,
            fde: fde / n,
        },
        infer_time_s: infer / seeds.len() as f64,
        train_time_s: train / seeds.len() as f64,
        final_train_loss: last_loss,
        report: last_report,
    }
}

/// All domains except `target`, in the paper's canonical order — the
/// standard leave-one-out source set.
pub fn leave_one_out(target: DomainId) -> Vec<DomainId> {
    DomainId::ALL
        .iter()
        .copied()
        .filter(|&d| d != target)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::dataset::{synthesize_domain, SynthesisConfig};

    fn tiny_datasets() -> Vec<DomainDataset> {
        let cfg = SynthesisConfig::smoke();
        vec![
            synthesize_domain(DomainId::EthUcy, &cfg),
            synthesize_domain(DomainId::LCas, &cfg),
        ]
    }

    fn tiny_runner() -> RunnerConfig {
        RunnerConfig {
            trainer: TrainerConfig {
                epochs: 2,
                max_train_windows: 30,
                ..TrainerConfig::smoke()
            },
            samples_k: 2,
            eval_cap: 10,
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn leave_one_out_excludes_target() {
        let sources = leave_one_out(DomainId::Sdd);
        assert_eq!(sources.len(), 3);
        assert!(!sources.contains(&DomainId::Sdd));
    }

    #[test]
    fn cell_labels_are_readable() {
        let spec = CellSpec {
            backbone: BackboneKind::PecNet,
            method: MethodKind::AdapTraj,
            sources: vec![DomainId::EthUcy, DomainId::LCas],
            target: DomainId::Sdd,
        };
        assert_eq!(spec.label(), "PECNet-AdapTraj [ETH&UCY+L-CAS -> SDD]");
    }

    #[test]
    fn run_cell_vanilla_end_to_end() {
        let datasets = tiny_datasets();
        let spec = CellSpec {
            backbone: BackboneKind::PecNet,
            method: MethodKind::Vanilla,
            sources: vec![DomainId::EthUcy],
            target: DomainId::LCas,
        };
        let res = run_cell(&spec, &datasets, &tiny_runner());
        assert!(res.eval.ade.is_finite() && res.eval.ade > 0.0);
        assert!(res.eval.fde.is_finite());
        assert!(res.infer_time_s > 0.0);
        assert!(res.final_train_loss.is_some());
    }

    #[test]
    fn run_cell_adaptraj_end_to_end() {
        let datasets = tiny_datasets();
        let spec = CellSpec {
            backbone: BackboneKind::PecNet,
            method: MethodKind::AdapTraj,
            sources: vec![DomainId::EthUcy],
            target: DomainId::LCas,
        };
        let res = run_cell(&spec, &datasets, &tiny_runner());
        assert!(res.eval.ade.is_finite() && res.eval.ade > 0.0);
    }

    #[test]
    fn evaluate_is_invariant_to_worker_count() {
        let datasets = tiny_datasets();
        let spec = CellSpec {
            backbone: BackboneKind::PecNet,
            method: MethodKind::Vanilla,
            sources: vec![DomainId::EthUcy],
            target: DomainId::LCas,
        };
        let cfg = tiny_runner();
        let train = pooled_train(&spec, &datasets);
        let test = target_test(&spec, &datasets, 10);
        let mut predictor = build_predictor(&spec, &cfg);
        predictor.fit(&train);
        let (e1, _) = evaluate(predictor.as_ref(), &test, 2, 99, 1);
        let (e4, _) = evaluate(predictor.as_ref(), &test, 2, 99, 4);
        assert_eq!(e1.ade.to_bits(), e4.ade.to_bits(), "ADE depends on workers");
        assert_eq!(e1.fde.to_bits(), e4.fde.to_bits(), "FDE depends on workers");
    }

    #[test]
    fn run_cell_avg_averages_seeds() {
        let datasets = tiny_datasets();
        let spec = CellSpec {
            backbone: BackboneKind::PecNet,
            method: MethodKind::Vanilla,
            sources: vec![DomainId::EthUcy],
            target: DomainId::LCas,
        };
        let cfg = tiny_runner();
        let a = run_cell_avg(&spec, &datasets, &cfg, &[1]);
        // Match the eval-seed offset the averaged run gives seed #2.
        let mut cfg_b = cfg.clone();
        cfg_b.eval_seed = cfg.eval_seed.wrapping_add(1);
        cfg_b.trainer.seed = 2;
        let b = run_cell(&spec, &datasets, &cfg_b);
        let avg = run_cell_avg(&spec, &datasets, &cfg, &[1, 2]);
        let expected = (a.eval.ade + b.eval.ade) / 2.0;
        assert!(
            (avg.eval.ade - expected).abs() < 1e-5,
            "avg {} vs expected {}",
            avg.eval.ade,
            expected
        );
    }

    #[test]
    fn stride_sampling_covers_whole_split() {
        let datasets = tiny_datasets();
        let spec = CellSpec {
            backbone: BackboneKind::PecNet,
            method: MethodKind::Vanilla,
            sources: vec![DomainId::EthUcy],
            target: DomainId::LCas,
        };
        let full = target_test(&spec, &datasets, 0);
        let capped = target_test(&spec, &datasets, 8);
        assert_eq!(capped.len(), 8.min(full.len()));
        if full.len() > 8 {
            // The last sampled window comes from the tail of the split,
            // not the prefix.
            let last_sampled = capped.last().unwrap() as *const _;
            let prefix_end = &full[7] as *const _;
            assert_ne!(last_sampled, prefix_end, "cap degenerated to a prefix");
        }
    }

    #[test]
    fn all_method_predictors_construct() {
        let cfg = tiny_runner();
        for backbone in BackboneKind::ALL {
            for method in [
                MethodKind::Vanilla,
                MethodKind::Counter,
                MethodKind::CausalMotion,
                MethodKind::AdapTraj,
                MethodKind::AdapTrajNoSpecific,
                MethodKind::AdapTrajNoInvariant,
            ] {
                let spec = CellSpec {
                    backbone,
                    method,
                    sources: vec![DomainId::EthUcy],
                    target: DomainId::LCas,
                };
                let p = build_predictor(&spec, &cfg);
                assert!(p.name().contains(backbone.name()));
            }
        }
    }
}
