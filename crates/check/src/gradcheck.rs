//! Central-finite-difference gradient verification.
//!
//! The analytic side is one [`Tape::backward`] pass; the numeric side
//! perturbs each checked scalar by `±eps` and re-runs the forward pass,
//! with the difference quotient accumulated in `f64`. The acceptance
//! criterion is the repo-wide normalized error
//!
//! ```text
//! |analytic − numeric| ≤ tol · (1 + |numeric|)
//! ```
//!
//! which behaves like an absolute tolerance near zero and a relative one
//! for large derivatives — the right shape for `f32` forwards, where a
//! loss around magnitude `L` carries ~`L·1e-7` of rounding noise that the
//! division by `2·eps` amplifies to `~L·1e-5` regardless of the true
//! derivative's size.
//!
//! Two intentional forward/backward asymmetries in this codebase make a
//! naive whole-model check wrong, so [`grad_check_state`] accepts a
//! parameter filter:
//!
//! * **Gradient reversal** (`Tape::grad_reverse`, used by the domain
//!   similarity loss): the forward is the identity but the backward
//!   multiplies by `−λ`. Finite differences see the forward, so for
//!   parameters upstream of a reversal the analytic gradient equals
//!   `−λ ×` the numeric one — asserted directly by the dedicated GRL
//!   tests rather than hidden under a loose tolerance.
//! * **Detached samples** (LBEBM's Langevin negative, AdapTraj's
//!   distillation teacher): the detached value still *depends on* the
//!   parameters, so FD sees `∂L/∂detached · ∂detached/∂θ` while the tape
//!   (correctly, by design) does not. Checks either zero the detached
//!   term's weight or filter to parameters the detached path cannot
//!   reach.

use adaptraj_tensor::{ParamId, ParamStore, Tape, Tensor, Var};

/// Every `Op` kind the tape can record, by its stable profiler label.
/// `tests/op_grads.rs` machine-checks that the per-op fixtures exercise
/// all of these in both directions; if a new op is added to the tape this
/// list (and a fixture) must grow with it.
pub const OP_KINDS: [&str; 34] = [
    "leaf",
    "add",
    "sub",
    "mul",
    "neg",
    "scale",
    "add_scalar",
    "matmul",
    "matmul_nt",
    "matmul_tn",
    "transpose",
    "add_row_broadcast",
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "exp",
    "softmax_rows",
    "concat_cols",
    "concat_rows",
    "slice_cols",
    "gather_rows",
    "broadcast_rows",
    "mean_rows",
    "sum_rows",
    "mean_all",
    "sum_all",
    "hadamard_const",
    "reshape",
    "sum_row_groups",
    "softmax_cross_entropy",
    "grad_reverse",
    "fused_affine",
    "lstm_cell",
];

/// Tuning knobs for a finite-difference check.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckConfig {
    /// Half-width of the central difference. `1e-2` balances truncation
    /// error (`O(eps²·f‴)`) against `f32` rounding noise (`O(|L|·1e-7/eps)`).
    pub eps: f32,
    /// Normalized-error threshold (see the module docs).
    pub tol: f64,
    /// Cap on elements checked per parameter tensor, spread evenly across
    /// the tensor; `0` checks every element. Whole-model checks use this
    /// to stay fast — per-op fixtures check exhaustively.
    pub max_per_param: usize,
}

impl Default for GradCheckConfig {
    fn default() -> Self {
        Self {
            eps: 1e-2,
            tol: 1e-2,
            max_per_param: 0,
        }
    }
}

/// One checked scalar derivative.
#[derive(Debug, Clone)]
pub struct ElementCheck {
    /// Parameter name, or `"<input>"` for [`grad_check_input`].
    pub param: String,
    /// Flat element index within the tensor.
    pub index: usize,
    /// `∂L/∂θ` from `Tape::backward`.
    pub analytic: f64,
    /// `(L(θ+eps) − L(θ−eps)) / 2·eps`, accumulated in `f64`.
    pub numeric: f64,
    /// `|analytic − numeric| / (1 + |numeric|)`.
    pub rel_err: f64,
    pub ok: bool,
}

/// The full per-element outcome of one check.
#[derive(Debug, Clone)]
pub struct GradReport {
    pub records: Vec<ElementCheck>,
    pub tol: f64,
}

impl GradReport {
    pub fn ok(&self) -> bool {
        self.records.iter().all(|r| r.ok)
    }

    pub fn checked(&self) -> usize {
        self.records.len()
    }

    pub fn failures(&self) -> Vec<&ElementCheck> {
        self.records.iter().filter(|r| !r.ok).collect()
    }

    pub fn max_rel_err(&self) -> f64 {
        self.records.iter().fold(0.0, |m, r| m.max(r.rel_err))
    }

    /// Worst offenders first, one line each, capped at `limit` rows.
    pub fn render_failures(&self, limit: usize) -> String {
        let mut rows: Vec<&ElementCheck> = self.failures();
        rows.sort_by(|a, b| b.rel_err.total_cmp(&a.rel_err));
        let mut out = String::new();
        for r in rows.iter().take(limit) {
            out.push_str(&format!(
                "  {}[{}]: analytic {:+.6e} vs numeric {:+.6e} (rel {:.3e} > tol {:.1e})\n",
                r.param, r.index, r.analytic, r.numeric, r.rel_err, self.tol
            ));
        }
        if rows.len() > limit {
            out.push_str(&format!("  … and {} more\n", rows.len() - limit));
        }
        out
    }

    /// Panics with a per-element diagnosis if any derivative disagrees.
    pub fn assert_ok(&self, label: &str) {
        assert!(
            self.ok(),
            "{label}: {}/{} derivatives outside tolerance (max rel err {:.3e}):\n{}",
            self.failures().len(),
            self.checked(),
            self.max_rel_err(),
            self.render_failures(12)
        );
    }
}

/// Evenly spread `take` indices over `0..len` (all of them when
/// `take == 0` or `take >= len`), deterministically.
fn spread_indices(len: usize, take: usize) -> Vec<usize> {
    if take == 0 || take >= len {
        (0..len).collect()
    } else {
        (0..take).map(|i| i * len / take).collect()
    }
}

/// Checks `Tape::backward` against central finite differences over the
/// parameters of a store embedded in arbitrary state `S` (a bare store, a
/// `(store, model)` pair, or a model that owns its store).
///
/// `eval` must rebuild the loss *deterministically* — seed any internal
/// `Rng` inside the closure — and return the scalar loss value plus
/// `Tape::param_grads` of its backward pass (only the base call's
/// gradients are used; FD calls pay the extra backward on fixture-sized
/// models, which keeps the API a single closure). `filter` selects which
/// parameters to check by name (see the module docs for why whole-model
/// checks must exclude reversal-upstream or detach-feeding parameters).
pub fn grad_check_state<S>(
    state: &mut S,
    store_mut: impl Fn(&mut S) -> &mut ParamStore,
    mut eval: impl FnMut(&S) -> (f64, Vec<(ParamId, Tensor)>),
    filter: impl Fn(&str) -> bool,
    cfg: &GradCheckConfig,
) -> GradReport {
    let (base_loss, grads) = eval(state);
    assert!(
        base_loss.is_finite(),
        "grad_check: non-finite base loss {base_loss}"
    );

    // Snapshot the parameter inventory up front so the perturbation loop
    // holds no borrow of the store across `eval` calls.
    let inventory: Vec<(ParamId, String, usize)> = {
        let store = store_mut(state);
        store
            .ids()
            .map(|id| (id, store.name(id).to_string(), store.value(id).len()))
            .filter(|(_, name, _)| filter(name))
            .collect()
    };

    let grad_of =
        |id: ParamId| -> Option<&Tensor> { grads.iter().find(|(g, _)| *g == id).map(|(_, t)| t) };

    let eps = cfg.eps as f64;
    let mut records = Vec::new();
    for (id, name, len) in &inventory {
        for i in spread_indices(*len, cfg.max_per_param) {
            let orig = store_mut(state).value(*id).data()[i];
            store_mut(state).value_mut(*id).data_mut()[i] = orig + cfg.eps;
            let (lp, _) = eval(state);
            store_mut(state).value_mut(*id).data_mut()[i] = orig - cfg.eps;
            let (lm, _) = eval(state);
            store_mut(state).value_mut(*id).data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_of(*id).map_or(0.0, |g| g.data()[i]) as f64;
            let rel_err = (analytic - numeric).abs() / (1.0 + numeric.abs());
            records.push(ElementCheck {
                param: name.clone(),
                index: i,
                analytic,
                numeric,
                rel_err,
                ok: rel_err <= cfg.tol,
            });
        }
    }
    GradReport {
        records,
        tol: cfg.tol,
    }
}

/// [`grad_check_state`] for the common case: the loss is a function of a
/// free-standing [`ParamStore`], all parameters checked.
pub fn grad_check(
    store: &mut ParamStore,
    eval: impl FnMut(&ParamStore) -> (f64, Vec<(ParamId, Tensor)>),
    cfg: &GradCheckConfig,
) -> GradReport {
    grad_check_state(store, |s| s, eval, |_| true, cfg)
}

/// Builds a scalar loss from one *input* leaf and checks its gradient —
/// the harness for the per-op fixtures, where the differentiated quantity
/// is the op's input rather than a stored parameter. `build` receives a
/// fresh tape and the input `Var` and must return a `1×1` loss node.
pub fn grad_check_input(
    x0: &Tensor,
    build: impl Fn(&mut Tape, Var) -> Var,
    cfg: &GradCheckConfig,
) -> GradReport {
    let run = |x: Tensor| -> (f64, Option<Tensor>) {
        let mut tape = Tape::new();
        let xv = tape.input(x);
        let loss = build(&mut tape, xv);
        let value = tape.value(loss).item() as f64;
        let grads = tape.backward(loss);
        (value, grads.get(xv).cloned())
    };

    let (base_loss, grad) = run(x0.clone());
    assert!(
        base_loss.is_finite(),
        "grad_check_input: non-finite base loss {base_loss}"
    );

    let eps = cfg.eps as f64;
    let mut records = Vec::new();
    for i in spread_indices(x0.len(), cfg.max_per_param) {
        let mut plus = x0.clone();
        plus.data_mut()[i] += cfg.eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= cfg.eps;
        let numeric = (run(plus).0 - run(minus).0) / (2.0 * eps);
        let analytic = grad.as_ref().map_or(0.0, |g| g.data()[i]) as f64;
        let rel_err = (analytic - numeric).abs() / (1.0 + numeric.abs());
        records.push(ElementCheck {
            param: "<input>".to_string(),
            index: i,
            analytic,
            numeric,
            rel_err,
            ok: rel_err <= cfg.tol,
        });
    }
    GradReport {
        records,
        tol: cfg.tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_tensor::{GroupId, Rng};

    #[test]
    fn passes_on_a_correct_gradient() {
        // L = Σ w² has dL/dw = 2w — the tape gets this right, so the
        // checker must agree.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let w = store.register(
            "w",
            Tensor::randn(2, 3, 0.0, 1.0, &mut rng),
            GroupId::DEFAULT,
        );
        let report = grad_check(
            &mut store,
            |s| {
                let mut tape = Tape::new();
                let wv = tape.param(s, w);
                let sq = tape.mul(wv, wv);
                let loss = tape.sum_all(sq);
                let v = tape.value(loss).item() as f64;
                let g = tape.backward(loss);
                (v, tape.param_grads(&g))
            },
            &GradCheckConfig::default(),
        );
        assert_eq!(report.checked(), 6);
        report.assert_ok("sum of squares");
    }

    #[test]
    fn catches_a_wrong_gradient() {
        // Same loss, but the "analytic" side lies by a factor of 2 — the
        // checker exists to catch exactly this.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let w = store.register(
            "w",
            Tensor::randn(1, 4, 0.5, 0.2, &mut rng),
            GroupId::DEFAULT,
        );
        let report = grad_check(
            &mut store,
            |s| {
                let mut tape = Tape::new();
                let wv = tape.param(s, w);
                let sq = tape.mul(wv, wv);
                let loss = tape.sum_all(sq);
                let v = tape.value(loss).item() as f64;
                let g = tape.backward(loss);
                let mut pairs = tape.param_grads(&g);
                for (_, t) in &mut pairs {
                    let doubled = t.scale(2.0);
                    *t = doubled;
                }
                (v, pairs)
            },
            &GradCheckConfig::default(),
        );
        assert!(!report.ok(), "doubled gradient must not pass");
        assert!(!report.render_failures(12).is_empty());
    }

    #[test]
    fn unused_parameters_check_against_zero() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let used = store.register(
            "used",
            Tensor::randn(1, 2, 0.0, 1.0, &mut rng),
            GroupId::DEFAULT,
        );
        store.register(
            "dead",
            Tensor::randn(1, 2, 0.0, 1.0, &mut rng),
            GroupId::DEFAULT,
        );
        let report = grad_check(
            &mut store,
            |s| {
                let mut tape = Tape::new();
                let wv = tape.param(s, used);
                let loss = tape.sum_all(wv);
                let v = tape.value(loss).item() as f64;
                let g = tape.backward(loss);
                (v, tape.param_grads(&g))
            },
            &GradCheckConfig::default(),
        );
        // The dead parameter's FD derivative is 0 and its analytic grad is
        // absent (treated as 0): both elements must still be checked.
        assert_eq!(report.checked(), 4);
        report.assert_ok("dead parameter");
    }

    #[test]
    fn filter_and_subsampling_limit_coverage() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let a = store.register(
            "keep.a",
            Tensor::randn(1, 8, 0.0, 1.0, &mut rng),
            GroupId::DEFAULT,
        );
        let b = store.register(
            "skip.b",
            Tensor::randn(1, 8, 0.0, 1.0, &mut rng),
            GroupId::DEFAULT,
        );
        let cfg = GradCheckConfig {
            max_per_param: 3,
            ..GradCheckConfig::default()
        };
        let report = grad_check_state(
            &mut store,
            |s| s,
            |s| {
                let mut tape = Tape::new();
                let av = tape.param(s, a);
                let bv = tape.param(s, b);
                let sum = tape.add(av, bv);
                let sq = tape.mul(sum, sum);
                let loss = tape.sum_all(sq);
                let v = tape.value(loss).item() as f64;
                let g = tape.backward(loss);
                (v, tape.param_grads(&g))
            },
            |name| name.starts_with("keep."),
            &cfg,
        );
        assert_eq!(report.checked(), 3, "3 of 8 elements of the kept param");
        assert!(report.records.iter().all(|r| r.param == "keep.a"));
        report.assert_ok("filtered");
    }

    #[test]
    fn input_checker_runs_and_catches_sign_flips() {
        let mut rng = Rng::seed_from(4);
        let x = Tensor::randn(2, 3, 0.0, 1.0, &mut rng);
        let good = grad_check_input(
            &x,
            |tape, xv| {
                let t = tape.tanh(xv);
                tape.sum_all(t)
            },
            &GradCheckConfig::default(),
        );
        good.assert_ok("tanh-sum");
        // grad_reverse flips the backward sign while FD sees the identity
        // forward: the checker must flag it (its *correct* handling is the
        // dedicated GRL fixture's job).
        let flipped = grad_check_input(
            &x,
            |tape, xv| {
                let r = tape.grad_reverse(xv, 1.0);
                let sq = tape.mul(r, r);
                tape.sum_all(sq)
            },
            &GradCheckConfig::default(),
        );
        assert!(!flipped.ok(), "reversed gradient must disagree with FD");
    }
}
