//! Golden-regression layer: fixed-seed micro-runs of every backbone whose
//! per-epoch decomposed losses and ADE/FDE are pinned bit-for-bit in
//! committed `results/GOLDEN_*.json` files.
//!
//! The training stack is deterministic by construction (fixed seeds,
//! `window_seed`-derived per-window streams, order-preserving parallel
//! reduction), so a golden micro-run reproduces *exactly* — any bit of
//! drift in an epoch loss means a semantic change to the forward pass,
//! the backward pass, the optimizer, or the data pipeline, which is
//! precisely what a perf-motivated tape change must not cause silently.
//! Losses therefore compare on raw `f64` bit patterns (exact), while
//! ADE/FDE compare under a percentage tolerance flag — they pass through
//! best-of-k sampling, where a *deliberate* change to sampling counts as
//! drift but callers may loosen the gate during intentional retuning.
//!
//! These micro-runs are 2–3 epochs over ≤30 windows: they validate
//! *reproducibility*, not model quality — see EXPERIMENTS.md.

use adaptraj_data::dataset::{synthesize_domain, DomainDataset, SynthesisConfig};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::runner::{evaluate, pooled_train, run_cell, target_test};
use adaptraj_eval::{BackboneKind, CellSpec, MethodKind, RunnerConfig};
use adaptraj_models::predictor::TrainReport;
use adaptraj_models::{BackboneConfig, Predictor, SocialLstm, TrainerConfig, Vanilla};
use adaptraj_obs::json::{Arr, Obj, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// Schema tag every golden document carries.
pub const GOLDEN_SCHEMA: &str = "adaptraj-golden/v1";

/// Decomposed-loss field order inside `component_bits`.
pub const COMPONENT_NAMES: [&str; 5] = ["backbone", "recon", "diff", "similar", "distill"];

/// The five pinned micro-runs: one per backbone training path (the three
/// vanilla backbones, the V-REx method, and the full AdapTraj schedule).
pub const GOLDEN_NAMES: [&str; 5] = [
    "pecnet-vanilla",
    "lbebm-vanilla",
    "sociallstm-vanilla",
    "pecnet-causalmotion",
    "pecnet-adaptraj",
];

/// One epoch of a pinned run. `loss_bits`/`component_bits` are the `f64`
/// bit patterns and the source of truth for comparison; `loss` and
/// `components_pretty` are human-readable views of the same values (NaN
/// components — terms a method doesn't produce — survive the bit
/// round-trip where decimal JSON could not carry them).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochGold {
    pub epoch: u64,
    pub phase: String,
    pub loss: f64,
    pub loss_bits: u64,
    pub component_bits: [u64; 5],
}

impl EpochGold {
    fn from_components(epoch: u64, phase: &str, loss: f64, comps: [f64; 5]) -> Self {
        EpochGold {
            epoch,
            phase: phase.to_string(),
            loss,
            loss_bits: loss.to_bits(),
            component_bits: comps.map(f64::to_bits),
        }
    }

    pub fn components(&self) -> [f64; 5] {
        self.component_bits.map(f64::from_bits)
    }

    fn pretty_components(&self) -> String {
        COMPONENT_NAMES
            .iter()
            .zip(self.components())
            .map(|(n, v)| format!("{n}={v:.6}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A pinned micro-run.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenDoc {
    pub name: String,
    pub seed: u64,
    pub epochs: Vec<EpochGold>,
    pub ade: f64,
    pub fde: f64,
}

impl GoldenDoc {
    pub fn to_json(&self) -> String {
        let mut epochs = Arr::new();
        for e in &self.epochs {
            // Bit patterns are serialized as decimal *strings*: a u64 bit
            // pattern generally exceeds 2^53, and the JSON reader holds
            // numbers as f64, which would silently round the low bits —
            // the exact bits are the entire point of this file.
            let mut obj = Obj::new()
                .u64("epoch", e.epoch)
                .str("phase", &e.phase)
                .str("loss_bits", &e.loss_bits.to_string());
            if e.loss.is_finite() {
                obj = obj.f64("loss", e.loss);
            }
            let mut bits = Arr::new();
            for b in e.component_bits {
                bits = bits.push_str(&b.to_string());
            }
            epochs = epochs.push_raw(
                &obj.raw("component_bits", &bits.finish())
                    .str("components_pretty", &e.pretty_components())
                    .finish(),
            );
        }
        Obj::new()
            .str("schema", GOLDEN_SCHEMA)
            .str("name", &self.name)
            .u64("seed", self.seed)
            .raw("epochs", &epochs.finish())
            .f64("ade", self.ade)
            .f64("fde", self.fde)
            .finish()
    }
}

/// Structured failures when loading a golden document.
#[derive(Debug)]
pub enum GoldenError {
    Io(std::io::Error),
    /// Malformed JSON, wrong schema tag, or missing/mistyped fields.
    Schema(String),
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::Io(e) => write!(f, "golden io error: {e}"),
            GoldenError::Schema(msg) => write!(f, "golden schema error: {msg}"),
        }
    }
}

impl std::error::Error for GoldenError {}

impl From<std::io::Error> for GoldenError {
    fn from(e: std::io::Error) -> Self {
        GoldenError::Io(e)
    }
}

fn schema_err(msg: impl Into<String>) -> GoldenError {
    GoldenError::Schema(msg.into())
}

/// Parses and validates one `adaptraj-golden/v1` document.
pub fn parse_doc(text: &str) -> Result<GoldenDoc, GoldenError> {
    let v = Value::parse(text).map_err(schema_err)?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| schema_err("missing 'schema'"))?;
    if schema != GOLDEN_SCHEMA {
        return Err(schema_err(format!(
            "schema '{schema}', expected '{GOLDEN_SCHEMA}'"
        )));
    }
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| schema_err("missing 'name'"))?
        .to_string();
    let seed = v
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or_else(|| schema_err("missing 'seed'"))?;
    let ade = v
        .get("ade")
        .and_then(Value::as_f64)
        .ok_or_else(|| schema_err("missing 'ade'"))?;
    let fde = v
        .get("fde")
        .and_then(Value::as_f64)
        .ok_or_else(|| schema_err("missing 'fde'"))?;
    let mut epochs = Vec::new();
    for (i, e) in v
        .get("epochs")
        .and_then(Value::as_array)
        .ok_or_else(|| schema_err("missing 'epochs'"))?
        .iter()
        .enumerate()
    {
        let epoch = e
            .get("epoch")
            .and_then(Value::as_u64)
            .ok_or_else(|| schema_err(format!("epoch {i}: missing 'epoch'")))?;
        let phase = e
            .get("phase")
            .and_then(Value::as_str)
            .ok_or_else(|| schema_err(format!("epoch {i}: missing 'phase'")))?
            .to_string();
        let loss_bits = e
            .get("loss_bits")
            .and_then(Value::as_str)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| schema_err(format!("epoch {i}: missing or non-string 'loss_bits'")))?;
        let bits_arr = e
            .get("component_bits")
            .and_then(Value::as_array)
            .ok_or_else(|| schema_err(format!("epoch {i}: missing 'component_bits'")))?;
        if bits_arr.len() != COMPONENT_NAMES.len() {
            return Err(schema_err(format!(
                "epoch {i}: {} component bits, expected {}",
                bits_arr.len(),
                COMPONENT_NAMES.len()
            )));
        }
        let mut component_bits = [0u64; 5];
        for (j, b) in bits_arr.iter().enumerate() {
            component_bits[j] = b.as_str().and_then(|s| s.parse().ok()).ok_or_else(|| {
                schema_err(format!("epoch {i}: component bit {j} not a u64 string"))
            })?;
        }
        epochs.push(EpochGold {
            epoch,
            phase,
            loss: f64::from_bits(loss_bits),
            loss_bits,
            component_bits,
        });
    }
    if epochs.is_empty() {
        return Err(schema_err("no epochs"));
    }
    Ok(GoldenDoc {
        name,
        seed,
        epochs,
        ade,
        fde,
    })
}

/// `GOLDEN_<name>.json` inside `dir`.
pub fn golden_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("GOLDEN_{name}.json"))
}

pub fn write_doc(dir: &Path, doc: &GoldenDoc) -> Result<PathBuf, GoldenError> {
    std::fs::create_dir_all(dir)?;
    let path = golden_path(dir, &doc.name);
    std::fs::write(&path, doc.to_json())?;
    Ok(path)
}

/// Loads the committed baselines for all [`GOLDEN_NAMES`]; a missing file
/// is a [`GoldenError::Io`] — an absent baseline must fail the gate, never
/// silently shrink it.
pub fn load_baselines(dir: &Path) -> Result<Vec<GoldenDoc>, GoldenError> {
    GOLDEN_NAMES
        .iter()
        .map(|name| {
            let path = golden_path(dir, name);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| schema_err(format!("cannot read baseline {}: {e}", path.display())))?;
            parse_doc(&text)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Micro-runs.

/// Fixed seed all golden micro-runs train with.
pub const GOLDEN_SEED: u64 = 7;

/// The datasets the micro-runs draw from: smoke-sized synthesis of the
/// two source domains plus the held-out target.
pub fn micro_datasets() -> Vec<DomainDataset> {
    [DomainId::EthUcy, DomainId::LCas, DomainId::Syi]
        .iter()
        .map(|&d| synthesize_domain(d, &SynthesisConfig::smoke()))
        .collect()
}

fn micro_runner(epochs: usize) -> RunnerConfig {
    RunnerConfig {
        trainer: TrainerConfig {
            epochs,
            max_train_windows: 30,
            workers: 1,
            seed: GOLDEN_SEED,
            ..TrainerConfig::default()
        },
        samples_k: 2,
        eval_cap: 10,
        // With 3 epochs these fractions put exactly one epoch in each of
        // the AdapTraj schedule's three steps, so the golden pins a
        // step1/step2/step3 loss apiece.
        e_start_frac: 0.34,
        e_end_frac: 0.67,
        ..RunnerConfig::default()
    }
}

fn micro_spec(backbone: BackboneKind, method: MethodKind) -> CellSpec {
    CellSpec {
        backbone,
        method,
        sources: vec![DomainId::EthUcy, DomainId::LCas],
        target: DomainId::Syi,
    }
}

fn doc_from_report(name: &str, report: &TrainReport, ade: f32, fde: f32) -> GoldenDoc {
    let epochs = report
        .epochs
        .iter()
        .map(|r| {
            let c = &r.components;
            EpochGold::from_components(
                r.epoch as u64,
                &r.phase,
                r.loss,
                [c.backbone, c.recon, c.diff, c.similar, c.distill],
            )
        })
        .collect();
    GoldenDoc {
        name: name.to_string(),
        seed: GOLDEN_SEED,
        epochs,
        ade: ade as f64,
        fde: fde as f64,
    }
}

/// Re-runs the named micro-run and returns its golden document.
/// Panics on an unknown name — the name list is a compile-time constant.
pub fn run_golden(name: &str, datasets: &[DomainDataset]) -> GoldenDoc {
    let cell = |backbone, method, epochs| {
        let r = run_cell(
            &micro_spec(backbone, method),
            datasets,
            &micro_runner(epochs),
        );
        (r.eval, r.report)
    };
    let (eval, report) = match name {
        "pecnet-vanilla" => cell(BackboneKind::PecNet, MethodKind::Vanilla, 2),
        "lbebm-vanilla" => cell(BackboneKind::Lbebm, MethodKind::Vanilla, 2),
        "pecnet-causalmotion" => cell(BackboneKind::PecNet, MethodKind::CausalMotion, 2),
        "pecnet-adaptraj" => cell(BackboneKind::PecNet, MethodKind::AdapTraj, 3),
        "sociallstm-vanilla" => {
            // `BackboneKind` has no Social-LSTM variant (it is not part of
            // the paper's comparison tables), so this run builds the
            // predictor directly instead of going through `run_cell`.
            let cfg = micro_runner(2);
            let spec = micro_spec(BackboneKind::PecNet, MethodKind::Vanilla);
            let train = pooled_train(&spec, datasets);
            let test = target_test(&spec, datasets, cfg.eval_cap);
            let mut model = Vanilla::new(cfg.trainer.clone(), |s, r| {
                SocialLstm::new(s, r, BackboneConfig::default())
            });
            let report = model.fit(&train);
            let (eval, _) = evaluate(
                &model,
                &test,
                cfg.samples_k,
                cfg.eval_seed,
                cfg.trainer.workers,
            );
            (eval, report)
        }
        other => panic!("unknown golden micro-run '{other}'"),
    };
    doc_from_report(name, &report, eval.ade, eval.fde)
}

/// Runs all five micro-runs.
pub fn run_all_goldens() -> Vec<GoldenDoc> {
    let datasets = micro_datasets();
    GOLDEN_NAMES
        .iter()
        .map(|name| run_golden(name, &datasets))
        .collect()
}

// ---------------------------------------------------------------------------
// Comparison.

/// One divergence between a baseline and a candidate document.
#[derive(Debug, Clone)]
pub struct GoldenDiff {
    pub name: String,
    /// What diverged, e.g. `epoch[1].loss_bits` or `ade`.
    pub field: String,
    pub expected: String,
    pub actual: String,
}

/// Outcome of gating candidates against baselines.
#[derive(Debug, Clone)]
pub struct GoldenComparison {
    pub diffs: Vec<GoldenDiff>,
    /// Baseline runs with no candidate — always a failure.
    pub missing: Vec<String>,
    pub metric_tol_pct: f64,
    /// Number of documents compared.
    pub compared: usize,
}

impl GoldenComparison {
    pub fn ok(&self) -> bool {
        self.diffs.is_empty() && self.missing.is_empty()
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "golden gate: {} run(s) compared, metric tolerance {}%\n",
            self.compared, self.metric_tol_pct
        ));
        for m in &self.missing {
            out.push_str(&format!("  MISSING  {m}: no candidate run\n"));
        }
        for d in &self.diffs {
            out.push_str(&format!(
                "  DRIFT    {} {}: expected {} got {}\n",
                d.name, d.field, d.expected, d.actual
            ));
        }
        if self.ok() {
            out.push_str("  OK       no drift\n");
        }
        out
    }
}

/// Whether `actual` is within `pct` percent of `baseline` (exact match
/// when `pct` is zero — so a zero-baseline metric only accepts zero).
fn pct_close(baseline: f64, actual: f64, pct: f64) -> bool {
    if pct <= 0.0 {
        baseline == actual
    } else {
        (baseline - actual).abs() <= pct / 100.0 * baseline.abs()
    }
}

/// Gates `candidates` against `baselines`: epoch losses and decomposed
/// components must match *bit-for-bit*; ADE/FDE must agree within
/// `metric_tol_pct` percent of the baseline (exact when `0`).
pub fn compare(
    baselines: &[GoldenDoc],
    candidates: &[GoldenDoc],
    metric_tol_pct: f64,
) -> GoldenComparison {
    let mut diffs = Vec::new();
    let mut missing = Vec::new();
    let mut compared = 0usize;
    for base in baselines {
        let Some(cand) = candidates.iter().find(|c| c.name == base.name) else {
            missing.push(base.name.clone());
            continue;
        };
        compared += 1;
        let mut push = |field: String, expected: String, actual: String| {
            diffs.push(GoldenDiff {
                name: base.name.clone(),
                field,
                expected,
                actual,
            });
        };
        if base.epochs.len() != cand.epochs.len() {
            push(
                "epochs".into(),
                base.epochs.len().to_string(),
                cand.epochs.len().to_string(),
            );
            continue;
        }
        for (i, (b, c)) in base.epochs.iter().zip(&cand.epochs).enumerate() {
            if b.phase != c.phase {
                push(
                    format!("epoch[{i}].phase"),
                    b.phase.clone(),
                    c.phase.clone(),
                );
            }
            if b.loss_bits != c.loss_bits {
                push(
                    format!("epoch[{i}].loss_bits"),
                    format!("{} ({:.9})", b.loss_bits, b.loss),
                    format!("{} ({:.9})", c.loss_bits, c.loss),
                );
            }
            for (j, comp) in COMPONENT_NAMES.iter().enumerate() {
                if b.component_bits[j] != c.component_bits[j] {
                    push(
                        format!("epoch[{i}].{comp}"),
                        format!("{:.9}", f64::from_bits(b.component_bits[j])),
                        format!("{:.9}", f64::from_bits(c.component_bits[j])),
                    );
                }
            }
        }
        for (field, b, c) in [("ade", base.ade, cand.ade), ("fde", base.fde, cand.fde)] {
            if !pct_close(b, c, metric_tol_pct) {
                push(
                    field.to_string(),
                    format!("{b:.6}"),
                    format!("{c:.6} (tol {metric_tol_pct}%)"),
                );
            }
        }
    }
    GoldenComparison {
        diffs,
        missing,
        metric_tol_pct,
        compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(name: &str) -> GoldenDoc {
        GoldenDoc {
            name: name.to_string(),
            seed: 7,
            epochs: vec![
                // Non-dyadic values: their bit patterns use the low
                // mantissa bits, which only survive the JSON round trip
                // because bits are serialized as strings (a JSON number
                // would round above 2^53).
                EpochGold::from_components(
                    0,
                    "train",
                    1.5,
                    [0.1, f64::NAN, std::f64::consts::PI, 3.0, f64::NAN],
                ),
                EpochGold::from_components(1, "train", 0.75, [0.5, 0.3, 0.5, 0.7, 0.5]),
            ],
            ade: 0.42,
            fde: 0.84,
        }
    }

    #[test]
    fn json_round_trip_is_exact_including_nan_components() {
        let d = doc("rt");
        let parsed = parse_doc(&d.to_json()).expect("round trip");
        assert_eq!(parsed, d, "bit patterns survive the JSON round trip");
        assert!(parsed.epochs[0].components()[1].is_nan());
    }

    #[test]
    fn parse_rejects_bad_schema_and_missing_fields() {
        assert!(matches!(
            parse_doc("{\"schema\":\"other/v9\"}"),
            Err(GoldenError::Schema(_))
        ));
        assert!(matches!(parse_doc("not json"), Err(GoldenError::Schema(_))));
        let no_epochs = Obj::new()
            .str("schema", GOLDEN_SCHEMA)
            .str("name", "x")
            .u64("seed", 1)
            .f64("ade", 0.0)
            .f64("fde", 0.0)
            .raw("epochs", "[]")
            .finish();
        assert!(matches!(parse_doc(&no_epochs), Err(GoldenError::Schema(_))));
    }

    #[test]
    fn identical_docs_pass_the_gate() {
        let cmp = compare(&[doc("a")], &[doc("a")], 0.0);
        assert!(cmp.ok(), "{}", cmp.render_text());
        assert_eq!(cmp.compared, 1);
    }

    #[test]
    fn single_bit_loss_drift_fails() {
        let base = doc("a");
        let mut cand = doc("a");
        cand.epochs[1].loss_bits ^= 1; // one ulp
        let cmp = compare(&[base], &[cand], 5.0);
        assert!(!cmp.ok());
        assert!(cmp.diffs[0].field.contains("loss_bits"));
    }

    #[test]
    fn component_bit_drift_names_the_component() {
        let base = doc("a");
        let mut cand = doc("a");
        cand.epochs[0].component_bits[3] ^= 1;
        let cmp = compare(&[base], &[cand], 5.0);
        assert!(!cmp.ok());
        assert!(cmp.diffs[0].field.ends_with("similar"));
    }

    #[test]
    fn metric_tolerance_is_respected() {
        let base = doc("a");
        let mut cand = doc("a");
        cand.ade = base.ade * 1.004; // +0.4%
        let within = compare(std::slice::from_ref(&base), &[cand.clone()], 1.0);
        assert!(within.ok(), "{}", within.render_text());
        let strict = compare(&[base], &[cand], 0.1);
        assert!(!strict.ok(), "0.4% drift must fail a 0.1% gate");
    }

    #[test]
    fn missing_candidate_always_fails() {
        let cmp = compare(&[doc("a"), doc("b")], &[doc("a")], 100.0);
        assert!(!cmp.ok());
        assert_eq!(cmp.missing, vec!["b".to_string()]);
        assert!(cmp.render_text().contains("MISSING"));
    }
}
