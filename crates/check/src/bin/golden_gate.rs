//! Golden-regression gate: diffs candidate `adaptraj-golden/v1` documents
//! against the committed baselines and exits nonzero on any drift.
//!
//! ```text
//! golden_gate --baseline-dir results --candidate-dir target/golden \
//!             [--metric-tol-pct 0.1] [--check]
//! ```
//!
//! Epoch losses and decomposed components must match the baselines
//! bit-for-bit; ADE/FDE must agree within `--metric-tol-pct` percent.
//! A baseline with no candidate always fails. `--check` validates and
//! reports but never fails on drift (schema/parse errors still fail).

use adaptraj_check::golden::{compare, load_baselines, GoldenDoc};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: golden_gate --baseline-dir DIR --candidate-dir DIR \
         [--metric-tol-pct N] [--check]"
    );
    std::process::exit(2);
}

fn load(dir: &str) -> Result<Vec<GoldenDoc>, String> {
    load_baselines(Path::new(dir)).map_err(|e| format!("{dir}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_dir = None;
    let mut candidate_dir = None;
    let mut metric_tol_pct = 0.1f64;
    let mut check_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline-dir" => {
                baseline_dir = args.get(i + 1).cloned();
                i += 2;
            }
            "--candidate-dir" => {
                candidate_dir = args.get(i + 1).cloned();
                i += 2;
            }
            "--metric-tol-pct" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    usage();
                };
                metric_tol_pct = v;
                i += 2;
            }
            "--check" => {
                check_only = true;
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    let (Some(baseline_dir), Some(candidate_dir)) = (baseline_dir, candidate_dir) else {
        usage();
    };

    let base = match load(&baseline_dir) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("golden_gate: baseline {e}");
            return ExitCode::from(2);
        }
    };
    let cand = match load(&candidate_dir) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("golden_gate: candidate {e}");
            return ExitCode::from(2);
        }
    };

    let cmp = compare(&base, &cand, metric_tol_pct);
    print!("{}", cmp.render_text());
    if cmp.ok() {
        println!("golden_gate: OK ({} run(s))", cmp.compared);
        ExitCode::SUCCESS
    } else if check_only {
        println!(
            "golden_gate: {} divergence(s) (check mode, not failing)",
            cmp.diffs.len() + cmp.missing.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "golden_gate: FAIL — {} divergence(s) from committed goldens",
            cmp.diffs.len() + cmp.missing.len()
        );
        ExitCode::FAILURE
    }
}
