//! # adaptraj-check
//!
//! Correctness verification for the AdapTraj reproduction, in three
//! layers that trade breadth for depth:
//!
//! * [`gradcheck`] — central-finite-difference verification of
//!   [`adaptraj_tensor::Tape::backward`]. Per-op fixtures
//!   (`tests/op_grads.rs`) cover every one of the 34 `Op` kinds plus the
//!   LSTM/MLP layers at tight tolerance; end-to-end checks
//!   (`tests/model_grads.rs`) differentiate each backbone's full training
//!   loss and AdapTraj's three-step objective on fixed-seed windows.
//! * [`prop`] — an offline, zero-dependency property-test harness
//!   (deterministic seeds, size-ramped generation, shrink-by-size) that
//!   replaces the registry-gated proptest path for the algebraic and
//!   structural tape invariants (`tests/tape_props.rs`).
//! * [`golden`] — fixed-seed micro-runs of every backbone pinned
//!   bit-for-bit in committed `results/GOLDEN_*.json` files, gated by the
//!   `golden_gate` binary and the `adaptraj check` subcommand.
//!
//! Together these are the gate every later performance PR must clear: a
//! kernel rewrite that changes any gradient fails `op_grads`, one that
//! changes any training trajectory fails the golden gate.

pub mod golden;
pub mod gradcheck;
pub mod prop;

pub use golden::{
    compare, load_baselines, parse_doc, run_all_goldens, run_golden, write_doc, GoldenComparison,
    GoldenDoc, GoldenError, GOLDEN_NAMES, GOLDEN_SCHEMA,
};
pub use gradcheck::{
    grad_check, grad_check_input, grad_check_state, GradCheckConfig, GradReport, OP_KINDS,
};
pub use prop::{assert_close, check, Gen, MAX_SIZE};
