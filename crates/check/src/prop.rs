//! A small offline property-test harness over the workspace's own
//! xoshiro [`Rng`].
//!
//! The registry-gated proptest suites (`tests/proptests.rs`,
//! `crates/tensor/tests/proptest_ops.rs`) never run in the offline CI, so
//! the algebraic and structural tape invariants they express were
//! effectively unchecked. This harness keeps the useful half of proptest —
//! randomized cases, a growing size parameter, and shrinking to a minimal
//! failing case — with zero dependencies:
//!
//! * Cases are generated from deterministically derived seeds (an FNV-1a
//!   hash of the property name mixed with the case index), so a failure
//!   report is exactly reproducible.
//! * The [`Gen::size`] parameter ramps from 1 up to [`MAX_SIZE`] across
//!   the run, bounding every dimension and magnitude a generator draws.
//! * On failure the runner *shrinks by size*: it replays the failing seed
//!   at every smaller size and reports the smallest size that still
//!   fails. Because generators scale their draws by `size`, this
//!   minimizes dimensions and magnitudes together — cruder than
//!   proptest's per-value shrinking, but deterministic, dependency-free,
//!   and effective for the dimension-driven failures tape code produces.

use adaptraj_tensor::{Rng, Tensor};

/// Upper bound for [`Gen::size`]; dimensions drawn by [`Gen::dim`] never
/// exceed it. Kept small: tape ops are O(rows·cols) dense kernels and a
/// property runs hundreds of cases.
pub const MAX_SIZE: usize = 8;

/// A source of random test data bounded by a `size` parameter.
pub struct Gen {
    rng: Rng,
    /// Current case's size bound (`1..=MAX_SIZE`).
    pub size: usize,
}

impl Gen {
    fn new(seed: u64, size: usize) -> Self {
        Self {
            rng: Rng::seed_from(seed),
            size: size.max(1),
        }
    }

    /// A dimension in `1..=size`.
    pub fn dim(&mut self) -> usize {
        1 + self.rng.below(self.size)
    }

    /// A uniform integer in `lo..=hi`.
    pub fn int_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.rng.below(hi - lo + 1)
    }

    /// A finite value with magnitude scaled by `size` (≤ `size`), so small
    /// cases stay numerically tame.
    pub fn value(&mut self) -> f32 {
        let range = self.size as f32;
        self.rng.uniform(-range, range)
    }

    /// A `rows × cols` tensor of [`Gen::value`]s.
    pub fn tensor(&mut self, rows: usize, cols: usize) -> Tensor {
        let data = (0..rows * cols).map(|_| self.value()).collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// `n` row indices each `< rows` (repeats allowed, like `gather_rows`).
    pub fn row_indices(&mut self, n: usize, rows: usize) -> Vec<usize> {
        (0..n).map(|_| self.rng.below(rows)).collect()
    }

    /// Direct access for draws the helpers don't cover.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

/// FNV-1a, so each property gets its own seed stream without colliding
/// with other properties that share a case index.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn case_seed(name: &str, case: usize) -> u64 {
    fnv1a(name) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn case_size(case: usize, runs: usize) -> usize {
    // Ramp 1..=MAX_SIZE across the run so early cases are trivially small.
    1 + case * MAX_SIZE / runs.max(1)
}

/// Runs `prop` over `runs` generated cases; on the first failure, shrinks
/// by size and panics with the *minimal* reproduction (property name,
/// seed, size, and the property's message).
pub fn check(name: &str, runs: usize, prop: impl Fn(&mut Gen) -> Result<(), String>) {
    for case in 0..runs {
        let seed = case_seed(name, case);
        let size = case_size(case, runs);
        let mut gen = Gen::new(seed, size);
        if let Err(msg) = prop(&mut gen) {
            // Shrink: smallest size (same seed) that still fails.
            let (min_size, min_msg) = (1..size)
                .find_map(|s| {
                    let mut g = Gen::new(seed, s);
                    prop(&mut g).err().map(|m| (s, m))
                })
                .unwrap_or((size, msg));
            panic!(
                "property '{name}' failed (case {case}, seed {seed:#x}, \
                 size {size}; minimal size {min_size}): {min_msg}"
            );
        }
    }
}

/// `Err` unless `|a − b| ≤ tol·(1 + |b|)` element-wise — the same
/// normalized criterion the gradient checker uses.
pub fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) -> Result<(), String> {
    if a.shape() != b.shape() {
        return Err(format!("{what}: shape {:?} vs {:?}", a.shape(), b.shape()));
    }
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        if (x - y).abs() > tol * (1.0 + y.abs()) {
            return Err(format!("{what}: element {i}: {x} vs {y}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0usize);
        check("always-true", 50, |g| {
            count.set(count.get() + 1);
            let (rows, cols) = (g.dim(), g.dim());
            let t = g.tensor(rows, cols);
            if t.data().iter().all(|v| v.abs() <= MAX_SIZE as f32) {
                Ok(())
            } else {
                Err("value out of size bound".into())
            }
        });
        assert_eq!(count.get(), 50);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_size() {
        let caught = std::panic::catch_unwind(|| {
            check("always-false", 40, |_| Err("nope".into()));
        });
        let msg = *caught
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic payload is the report string");
        assert!(
            msg.contains("minimal size 1"),
            "an always-failing property shrinks to size 1: {msg}"
        );
        assert!(msg.contains("always-false") && msg.contains("nope"));
    }

    #[test]
    fn size_dependent_failure_reports_threshold_size() {
        // Fails only once the size bound reaches 3 — the minimal
        // reproduction must be exactly the threshold size.
        let caught = std::panic::catch_unwind(|| {
            check("needs-size-3", 200, |g| {
                if g.size >= 3 {
                    Err(format!("size bound reached {}", g.size))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *caught
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic payload is the report string");
        assert!(msg.contains("minimal size 3"), "shrunk report: {msg}");
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let draw = |name: &str| {
            let mut gen = Gen::new(case_seed(name, 7), 5);
            gen.tensor(2, 2).into_vec()
        };
        assert_eq!(draw("p"), draw("p"));
        assert_ne!(draw("p"), draw("q"), "different names, different streams");
    }
}
