//! Error paths in the checkpoint ↔ optimizer interplay
//! (`adaptraj_tensor::serialize` + `adaptraj_tensor::optim`):
//!
//! * a checkpoint whose group assignment disagrees with the receiving
//!   store must be rejected (a silently re-grouped parameter would dodge
//!   the three-step schedule's freezes),
//! * loading a checkpoint must not bypass a frozen group on subsequent
//!   optimizer steps, and
//! * stepping an Adam whose moment buffers were built for a different
//!   architecture must fail loudly, not corrupt parameters.

use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::serialize::{load_params, save_params, CheckpointError};
use adaptraj_tensor::{GradBuffer, GroupId, ParamId, ParamStore, Rng, Tape, Tensor};

const TRAINED: GroupId = GroupId(0);
const FROZEN: GroupId = GroupId(1);

fn two_group_store(seed: u64) -> (ParamStore, ParamId, ParamId) {
    let mut rng = Rng::seed_from(seed);
    let mut store = ParamStore::new();
    let a = store.register("body.w", Tensor::randn(3, 4, 0.0, 1.0, &mut rng), TRAINED);
    let b = store.register("head.w", Tensor::randn(4, 2, 0.0, 1.0, &mut rng), FROZEN);
    (store, a, b)
}

/// One gradient step of `L = Σ θ²` over every parameter.
fn quadratic_step(store: &mut ParamStore, opt: &mut Adam) {
    let mut tape = Tape::new();
    let ids: Vec<ParamId> = store.ids().collect();
    let mut loss = None;
    for id in ids {
        let p = tape.param(store, id);
        let sq = tape.mul(p, p);
        let term = tape.sum_all(sq);
        loss = Some(match loss {
            Some(acc) => tape.add(acc, term),
            None => term,
        });
    }
    let loss = loss.expect("store has parameters");
    let grads = tape.backward(loss);
    let mut buf = GradBuffer::new();
    buf.absorb(&tape, &grads);
    opt.step(store, &buf);
}

#[test]
fn checkpoint_with_reassigned_group_is_rejected() {
    let (src, _, _) = two_group_store(1);
    let mut bytes = Vec::new();
    save_params(&src, &mut bytes).unwrap();

    // Same names and shapes, but "head.w" now claims the trained group —
    // exactly the silent drift that would make a schedule freeze the
    // wrong parameters after a resume.
    let mut rng = Rng::seed_from(2);
    let mut dst = ParamStore::new();
    dst.register("body.w", Tensor::randn(3, 4, 0.0, 1.0, &mut rng), TRAINED);
    dst.register("head.w", Tensor::randn(4, 2, 0.0, 1.0, &mut rng), TRAINED);
    let before = dst.snapshot();

    let err = load_params(&mut dst, &mut bytes.as_slice()).unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    assert!(err.to_string().contains("group"), "{err}");
    // "body.w" loads before the mismatch is discovered; the guarantee is
    // the error, not atomicity — but the mismatched parameter itself must
    // be untouched.
    assert_eq!(dst.snapshot()[1].data(), before[1].data());
}

#[test]
fn loading_a_checkpoint_does_not_bypass_frozen_groups() {
    // Warm up an optimizer with a freeze, checkpoint mid-training, resume
    // into a fresh store: the frozen parameter must hold its loaded value
    // bit-for-bit while the trained one keeps moving.
    let (mut store, _, _) = two_group_store(3);
    let mut opt = Adam::new(1e-2);
    opt.schedule.freeze(FROZEN);
    quadratic_step(&mut store, &mut opt);

    let mut bytes = Vec::new();
    save_params(&store, &mut bytes).unwrap();

    let (mut resumed, trained_id, frozen_id) = two_group_store(4);
    load_params(&mut resumed, &mut bytes.as_slice()).unwrap();
    let frozen_before = resumed.value(frozen_id).clone();
    let trained_before = resumed.value(trained_id).clone();

    quadratic_step(&mut resumed, &mut opt);
    assert_eq!(
        resumed.value(frozen_id).data(),
        frozen_before.data(),
        "frozen group moved after checkpoint load"
    );
    assert_ne!(
        resumed.value(trained_id).data(),
        trained_before.data(),
        "trained group did not move"
    );
}

#[test]
fn adam_state_shape_mismatch_after_load_fails_loudly() {
    // Build Adam moments against one architecture…
    let (mut store, _, _) = two_group_store(5);
    let mut opt = Adam::new(1e-2);
    quadratic_step(&mut store, &mut opt);

    // …then swap in a differently-shaped store, as if a checkpoint for a
    // *new* model were resumed with the old optimizer state. The stale
    // moment tensors no longer match the gradients; the update must
    // panic on the shape assertion instead of silently mis-updating.
    let mut rng = Rng::seed_from(6);
    let mut other = ParamStore::new();
    other.register("body.w", Tensor::randn(2, 2, 0.0, 1.0, &mut rng), TRAINED);
    let snapshot = other.snapshot();

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        quadratic_step(&mut other, &mut opt);
    }));
    assert!(
        outcome.is_err(),
        "stepping stale Adam state onto a reshaped store must not succeed"
    );
    assert_eq!(
        other.snapshot()[0].data(),
        snapshot[0].data(),
        "parameters were modified by a failed optimizer step"
    );
}
