//! End-to-end behavior of the golden-regression layer on a *real*
//! micro-run (not the synthetic docs the unit tests use): determinism of
//! the pinned training stack, JSON round-tripping through files on disk,
//! and the gate's reaction to injected drift.
//!
//! Only the cheapest micro-run (`pecnet-vanilla`) executes here — the
//! full five-run sweep is exercised by `adaptraj check` in scripts/ci.sh.

use adaptraj_check::{compare, load_baselines, parse_doc, run_golden, write_doc, GOLDEN_NAMES};

#[test]
fn micro_run_is_deterministic_and_round_trips_through_disk() {
    let datasets = adaptraj_check::golden::micro_datasets();
    let a = run_golden("pecnet-vanilla", &datasets);
    let b = run_golden("pecnet-vanilla", &datasets);
    assert_eq!(
        a, b,
        "two identically-seeded micro-runs must agree bit-for-bit"
    );
    assert!(!a.epochs.is_empty());
    assert!(a.ade.is_finite() && a.fde.is_finite());

    // The document must survive a real write + parse, not just an
    // in-memory to_json/parse_doc pair.
    let dir = std::env::temp_dir().join(format!("adaptraj-golden-test-{}", std::process::id()));
    let path = write_doc(&dir, &a).expect("write golden doc");
    let parsed = parse_doc(&std::fs::read_to_string(&path).unwrap()).expect("parse golden doc");
    assert_eq!(parsed, a, "disk round trip changed the document");

    // An identical candidate passes the gate at zero tolerance; flipping
    // one ulp of one epoch loss fails it with a field-level diagnosis.
    let cmp = compare(std::slice::from_ref(&a), std::slice::from_ref(&b), 0.0);
    assert!(cmp.ok(), "{}", cmp.render_text());
    let mut drifted = a.clone();
    drifted.epochs[0].loss_bits ^= 1;
    let cmp = compare(&[a], &[drifted], 0.0);
    assert!(!cmp.ok(), "one-ulp loss drift must fail the gate");
    assert!(cmp.diffs[0].field.contains("loss_bits"), "{:?}", cmp.diffs);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn committed_baselines_load_and_cover_every_golden_name() {
    // The baselines live at the repository root; this test runs from
    // crates/check. Locating them relatively keeps the test hermetic.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let docs = load_baselines(&dir).expect(
        "committed results/GOLDEN_*.json must parse; regenerate with \
         `cargo run --release -- check --update-golden` if the schema changed",
    );
    assert_eq!(docs.len(), GOLDEN_NAMES.len());
    for (doc, name) in docs.iter().zip(GOLDEN_NAMES) {
        assert_eq!(doc.name, name);
        assert!(!doc.epochs.is_empty(), "{name} has no pinned epochs");
        assert!(
            doc.epochs.iter().all(|e| e.loss.is_finite()),
            "{name} pinned a non-finite loss"
        );
    }
    // The AdapTraj run must pin one epoch in each schedule step — that is
    // the whole point of its 3-epoch layout.
    let adaptraj = &docs[GOLDEN_NAMES
        .iter()
        .position(|n| *n == "pecnet-adaptraj")
        .unwrap()];
    let phases: Vec<&str> = adaptraj.epochs.iter().map(|e| e.phase.as_str()).collect();
    assert_eq!(phases.len(), 3, "adaptraj golden must span three epochs");
    assert_ne!(phases[0], phases[1], "steps 1 and 2 share a phase label");
    assert_ne!(phases[1], phases[2], "steps 2 and 3 share a phase label");
}
