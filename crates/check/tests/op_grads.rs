//! Per-op finite-difference fixtures: every one of the 34 tape `Op`
//! kinds, plus the LSTM and MLP layers, must match central differences at
//! rel-err ≤ 1e-2. Coverage is machine-checked through the op profiler —
//! a new tape op that lands without a fixture here fails the coverage
//! assertion, not a human review.

use adaptraj_check::gradcheck::{grad_check, grad_check_input, GradCheckConfig, OP_KINDS};
use adaptraj_obs::profile;
use adaptraj_tensor::nn::{Activation, LstmCell, Mlp};
use adaptraj_tensor::{FusedAct, GroupId, ParamStore, Rng, Tape, Tensor};

fn cfg() -> GradCheckConfig {
    GradCheckConfig::default() // eps 1e-2, tol 1e-2, exhaustive
}

/// Random values pushed at least 0.15 away from zero, so a ±eps FD
/// perturbation cannot cross the relu/leaky-relu kink.
fn kink_free(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::randn(rows, cols, 0.0, 1.0, &mut rng)
        .map(|v| if v >= 0.0 { v + 0.15 } else { v - 0.15 })
}

fn randn(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from(seed);
    Tensor::randn(rows, cols, 0.0, 1.0, &mut rng)
}

/// A named gradient-check fixture for one op.
type Fixture = (&'static str, Box<dyn Fn()>);

/// The fixture list. Each entry checks one op's backward rule (a few
/// exercise more than one incidentally); together they must light up
/// every kind in [`OP_KINDS`] in both directions.
fn fixtures() -> Vec<Fixture> {
    let mut out: Vec<Fixture> = Vec::new();
    let mut fixture = |name: &'static str, f: Box<dyn Fn()>| out.push((name, f));

    fixture(
        "add",
        Box::new(|| {
            let c = randn(2, 3, 100);
            grad_check_input(
                &randn(2, 3, 1),
                move |t, x| {
                    let cv = t.constant(c.clone());
                    let y = t.add(x, cv);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("add");
        }),
    );
    fixture(
        "sub",
        Box::new(|| {
            let c = randn(2, 3, 101);
            grad_check_input(
                &randn(2, 3, 2),
                move |t, x| {
                    let cv = t.constant(c.clone());
                    let y = t.sub(cv, x);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("sub");
        }),
    );
    fixture(
        "mul",
        Box::new(|| {
            grad_check_input(
                &randn(2, 3, 3),
                |t, x| {
                    // x ⊙ x exercises both operand slots of one node.
                    let y = t.mul(x, x);
                    t.sum_all(y)
                },
                &cfg(),
            )
            .assert_ok("mul");
        }),
    );
    fixture(
        "neg",
        Box::new(|| {
            let c = randn(2, 3, 102);
            grad_check_input(
                &randn(2, 3, 4),
                move |t, x| {
                    let n = t.neg(x);
                    let cv = t.constant(c.clone());
                    let y = t.mul(n, cv);
                    t.sum_all(y)
                },
                &cfg(),
            )
            .assert_ok("neg");
        }),
    );
    fixture(
        "scale",
        Box::new(|| {
            grad_check_input(
                &randn(2, 3, 5),
                |t, x| {
                    let y = t.scale(x, -1.7);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("scale");
        }),
    );
    fixture(
        "add_scalar",
        Box::new(|| {
            grad_check_input(
                &randn(2, 3, 6),
                |t, x| {
                    let y = t.add_scalar(x, 0.37);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("add_scalar");
        }),
    );
    fixture(
        "matmul",
        Box::new(|| {
            let right = randn(3, 2, 103);
            let left = randn(4, 2, 104);
            grad_check_input(
                &randn(2, 3, 7),
                move |t, x| {
                    // Both operand slots: x·R (dA path) and L·x (dB path).
                    let rv = t.constant(right.clone());
                    let lv = t.constant(left.clone());
                    let a = t.matmul(x, rv);
                    let b = t.matmul(lv, a);
                    let sq = t.mul(b, b);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("matmul");
        }),
    );
    fixture(
        "matmul_nt",
        Box::new(|| {
            let right = randn(4, 3, 140);
            let left = randn(5, 4, 141);
            grad_check_input(
                &randn(2, 3, 47),
                move |t, x| {
                    // Both operand slots: x·Rᵀ (dA path) and L·yᵀ (dB path).
                    let rv = t.constant(right.clone());
                    let lv = t.constant(left.clone());
                    let a = t.matmul_nt(x, rv); // [2,3]·[4,3]ᵀ = [2,4]
                    let b = t.matmul_nt(lv, a); // [5,4]·[2,4]ᵀ = [5,2]
                    let sq = t.mul(b, b);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("matmul_nt");
        }),
    );
    fixture(
        "matmul_tn",
        Box::new(|| {
            let right = randn(2, 4, 142);
            let left = randn(3, 5, 143);
            grad_check_input(
                &randn(2, 3, 48),
                move |t, x| {
                    // Both operand slots: xᵀ·R (dA path) and yᵀ·L... via two nodes.
                    let rv = t.constant(right.clone());
                    let lv = t.constant(left.clone());
                    let a = t.matmul_tn(x, rv); // [2,3]ᵀ·[2,4] = [3,4]
                    let b = t.matmul_tn(lv, a); // [3,5]ᵀ·[3,4] = [5,4]
                    let sq = t.mul(b, b);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("matmul_tn");
        }),
    );
    fixture(
        "transpose",
        Box::new(|| {
            let c = randn(3, 2, 105);
            grad_check_input(
                &randn(2, 3, 8),
                move |t, x| {
                    let xt = t.transpose(x);
                    let cv = t.constant(c.clone());
                    let y = t.mul(xt, cv);
                    t.sum_all(y)
                },
                &cfg(),
            )
            .assert_ok("transpose");
        }),
    );
    fixture(
        "add_row_broadcast(matrix)",
        Box::new(|| {
            let bias = randn(1, 3, 106);
            grad_check_input(
                &randn(4, 3, 9),
                move |t, x| {
                    let bv = t.constant(bias.clone());
                    let y = t.add_row_broadcast(x, bv);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("add_row_broadcast(matrix)");
        }),
    );
    fixture(
        "add_row_broadcast(bias)",
        Box::new(|| {
            let m = randn(4, 3, 107);
            grad_check_input(
                &randn(1, 3, 10),
                move |t, x| {
                    // Gradient sums over the broadcast rows.
                    let mv = t.constant(m.clone());
                    let y = t.add_row_broadcast(mv, x);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("add_row_broadcast(bias)");
        }),
    );
    fixture(
        "relu",
        Box::new(|| {
            let c = randn(2, 4, 108);
            grad_check_input(
                &kink_free(2, 4, 11),
                move |t, x| {
                    let y = t.relu(x);
                    let cv = t.constant(c.clone());
                    let w = t.mul(y, cv);
                    t.sum_all(w)
                },
                &cfg(),
            )
            .assert_ok("relu");
        }),
    );
    fixture(
        "leaky_relu",
        Box::new(|| {
            let c = randn(2, 4, 109);
            grad_check_input(
                &kink_free(2, 4, 12),
                move |t, x| {
                    let y = t.leaky_relu(x, 0.1);
                    let cv = t.constant(c.clone());
                    let w = t.mul(y, cv);
                    t.sum_all(w)
                },
                &cfg(),
            )
            .assert_ok("leaky_relu");
        }),
    );
    fixture(
        "tanh",
        Box::new(|| {
            grad_check_input(
                &randn(2, 4, 13),
                |t, x| {
                    let y = t.tanh(x);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("tanh");
        }),
    );
    fixture(
        "sigmoid",
        Box::new(|| {
            grad_check_input(
                &randn(2, 4, 14),
                |t, x| {
                    let y = t.sigmoid(x);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("sigmoid");
        }),
    );
    fixture(
        "exp",
        Box::new(|| {
            grad_check_input(
                &randn(2, 4, 15).scale(0.5),
                |t, x| {
                    let y = t.exp(x);
                    t.sum_all(y)
                },
                &cfg(),
            )
            .assert_ok("exp");
        }),
    );
    fixture(
        "softmax_rows",
        Box::new(|| {
            let c = randn(3, 4, 110);
            grad_check_input(
                &randn(3, 4, 16),
                move |t, x| {
                    // Weighted by a constant so off-diagonal Jacobian terms
                    // matter (a plain sum has gradient 0 by normalization).
                    let p = t.softmax_rows(x);
                    let cv = t.constant(c.clone());
                    let y = t.mul(p, cv);
                    t.sum_all(y)
                },
                &cfg(),
            )
            .assert_ok("softmax_rows");
        }),
    );
    fixture(
        "concat_cols",
        Box::new(|| {
            let c = randn(2, 2, 111);
            let w = randn(2, 5, 112);
            grad_check_input(
                &randn(2, 3, 17),
                move |t, x| {
                    let cv = t.constant(c.clone());
                    let y = t.concat_cols(&[x, cv]);
                    let wv = t.constant(w.clone());
                    let z = t.mul(y, wv);
                    t.sum_all(z)
                },
                &cfg(),
            )
            .assert_ok("concat_cols");
        }),
    );
    fixture(
        "concat_rows",
        Box::new(|| {
            let c = randn(2, 3, 113);
            let w = randn(4, 3, 114);
            grad_check_input(
                &randn(2, 3, 18),
                move |t, x| {
                    let cv = t.constant(c.clone());
                    let y = t.concat_rows(&[cv, x]);
                    let wv = t.constant(w.clone());
                    let z = t.mul(y, wv);
                    t.sum_all(z)
                },
                &cfg(),
            )
            .assert_ok("concat_rows");
        }),
    );
    fixture(
        "slice_cols",
        Box::new(|| {
            let w = randn(2, 2, 115);
            grad_check_input(
                &randn(2, 5, 19),
                move |t, x| {
                    // Un-sliced columns must get exactly zero gradient.
                    let y = t.slice_cols(x, 1, 3);
                    let wv = t.constant(w.clone());
                    let z = t.mul(y, wv);
                    t.sum_all(z)
                },
                &cfg(),
            )
            .assert_ok("slice_cols");
        }),
    );
    fixture(
        "gather_rows",
        Box::new(|| {
            let w = randn(4, 3, 116);
            grad_check_input(
                &randn(3, 3, 20),
                move |t, x| {
                    // Row 2 gathered twice: its gradient must accumulate.
                    let y = t.gather_rows(x, &[0, 2, 1, 2]);
                    let wv = t.constant(w.clone());
                    let z = t.mul(y, wv);
                    t.sum_all(z)
                },
                &cfg(),
            )
            .assert_ok("gather_rows");
        }),
    );
    fixture(
        "broadcast_rows",
        Box::new(|| {
            let w = randn(4, 3, 117);
            grad_check_input(
                &randn(1, 3, 21),
                move |t, x| {
                    let y = t.broadcast_rows(x, 4);
                    let wv = t.constant(w.clone());
                    let z = t.mul(y, wv);
                    t.sum_all(z)
                },
                &cfg(),
            )
            .assert_ok("broadcast_rows");
        }),
    );
    fixture(
        "mean_rows",
        Box::new(|| {
            let w = randn(1, 3, 118);
            grad_check_input(
                &randn(4, 3, 22),
                move |t, x| {
                    let y = t.mean_rows(x);
                    let wv = t.constant(w.clone());
                    let z = t.mul(y, wv);
                    t.sum_all(z)
                },
                &cfg(),
            )
            .assert_ok("mean_rows");
        }),
    );
    fixture(
        "sum_rows",
        Box::new(|| {
            let w = randn(1, 3, 119);
            grad_check_input(
                &randn(4, 3, 23),
                move |t, x| {
                    let y = t.sum_rows(x);
                    let wv = t.constant(w.clone());
                    let z = t.mul(y, wv);
                    let sq = t.mul(z, z);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("sum_rows");
        }),
    );
    fixture(
        "mean_all",
        Box::new(|| {
            grad_check_input(
                &randn(3, 4, 24),
                |t, x| {
                    let sq = t.mul(x, x);
                    t.mean_all(sq)
                },
                &cfg(),
            )
            .assert_ok("mean_all");
        }),
    );
    fixture(
        "sum_all",
        Box::new(|| {
            grad_check_input(
                &randn(3, 4, 25),
                |t, x| {
                    let sq = t.mul(x, x);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("sum_all");
        }),
    );
    fixture(
        "hadamard_const",
        Box::new(|| {
            let mask = randn(3, 4, 120).map(|v| if v > 0.0 { 1.0 } else { 0.25 });
            grad_check_input(
                &randn(3, 4, 26),
                move |t, x| {
                    let y = t.hadamard_const(x, mask.clone());
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("hadamard_const");
        }),
    );
    fixture(
        "reshape",
        Box::new(|| {
            let c = randn(3, 2, 122);
            grad_check_input(
                &randn(2, 3, 55),
                move |t, x| {
                    let r = t.reshape(x, 3, 2);
                    let cv = t.constant(c.clone());
                    let y = t.mul(r, cv);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("reshape");
        }),
    );
    fixture(
        "sum_row_groups",
        Box::new(|| {
            let c = randn(2, 3, 123);
            grad_check_input(
                &randn(6, 3, 56),
                move |t, x| {
                    // Each gradient element repeats over its k-row group.
                    let s = t.sum_row_groups(x, 3);
                    let cv = t.constant(c.clone());
                    let y = t.mul(s, cv);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("sum_row_groups");
        }),
    );
    fixture(
        "softmax_cross_entropy",
        Box::new(|| {
            grad_check_input(
                &randn(3, 4, 27),
                |t, x| t.softmax_cross_entropy(x, &[1, 0, 3]),
                &cfg(),
            )
            .assert_ok("softmax_cross_entropy");
        }),
    );
    fixture(
        "grad_reverse",
        Box::new(|| {
            let c = randn(2, 3, 121);
            grad_check_input(
                &randn(2, 3, 28),
                move |t, x| {
                    // A double reversal with λ₁·λ₂ = 1 restores the true
                    // gradient, so FD applies while both the forward and
                    // the (−λ)-scaling backward of each node execute. The
                    // single-reversal semantics are pinned by
                    // `grad_reverse_negates_the_upstream_gradient` below.
                    let r1 = t.grad_reverse(x, 2.0);
                    let r2 = t.grad_reverse(r1, 0.5);
                    let cv = t.constant(c.clone());
                    let y = t.mul(r2, cv);
                    t.sum_all(y)
                },
                &cfg(),
            )
            .assert_ok("grad_reverse");
        }),
    );
    fixture(
        "fused_affine(data)",
        Box::new(|| {
            let w = randn(3, 4, 150);
            let b = randn(1, 4, 151);
            grad_check_input(
                &randn(2, 3, 49),
                move |t, x| {
                    // Smooth activation so FD is exact everywhere; the
                    // relu/leaky variants are pinned bit-for-bit against
                    // the unfused composition in the tape's unit tests.
                    let wv = t.constant(w.clone());
                    let bv = t.constant(b.clone());
                    let y = t.fused_affine(x, wv, bv, FusedAct::Tanh);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("fused_affine(data)");
        }),
    );
    fixture(
        "fused_affine(weight)",
        Box::new(|| {
            let d = randn(4, 2, 152);
            let b = randn(1, 3, 153);
            grad_check_input(
                &randn(2, 3, 50),
                move |t, x| {
                    let dv = t.constant(d.clone());
                    let bv = t.constant(b.clone());
                    let y = t.fused_affine(dv, x, bv, FusedAct::Sigmoid);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("fused_affine(weight)");
        }),
    );
    fixture(
        "fused_affine(bias)",
        Box::new(|| {
            let d = randn(4, 2, 154);
            let w = randn(2, 3, 155);
            grad_check_input(
                &randn(1, 3, 51),
                move |t, x| {
                    // Gradient sums over the broadcast rows.
                    let dv = t.constant(d.clone());
                    let wv = t.constant(w.clone());
                    let y = t.fused_affine(dv, wv, x, FusedAct::Tanh);
                    let sq = t.mul(y, y);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("fused_affine(bias)");
        }),
    );
    fixture(
        "lstm_cell(input)",
        Box::new(|| {
            let w = randn(5, 12, 156).scale(0.5);
            let b = randn(1, 12, 157).scale(0.1);
            let h0 = randn(2, 3, 158).scale(0.5);
            let c0 = randn(2, 3, 159).scale(0.5);
            grad_check_input(
                &randn(2, 2, 52),
                move |t, x| {
                    let wv = t.constant(w.clone());
                    let bv = t.constant(b.clone());
                    let hv = t.constant(h0.clone());
                    let cv = t.constant(c0.clone());
                    // Loss over [h' | c'] so both output halves carry
                    // upstream gradient into the cell backward.
                    let hc = t.lstm_cell(x, hv, cv, wv, bv);
                    let sq = t.mul(hc, hc);
                    t.sum_all(sq)
                },
                &cfg(),
            )
            .assert_ok("lstm_cell(input)");
        }),
    );
    fixture(
        "lstm_cell(state)",
        Box::new(|| {
            let w = randn(5, 12, 160).scale(0.5);
            let b = randn(1, 12, 161).scale(0.1);
            let x0 = randn(2, 2, 162);
            let other = randn(2, 3, 163).scale(0.5);
            // h-slot and c-slot gradients, each against central FD.
            for h_slot in [true, false] {
                let (w, b, x0, other) = (w.clone(), b.clone(), x0.clone(), other.clone());
                grad_check_input(
                    &randn(2, 3, if h_slot { 53 } else { 54 }),
                    move |t, x| {
                        let wv = t.constant(w.clone());
                        let bv = t.constant(b.clone());
                        let xv = t.constant(x0.clone());
                        let ov = t.constant(other.clone());
                        let (hv, cv) = if h_slot { (x, ov) } else { (ov, x) };
                        let hc = t.lstm_cell(xv, hv, cv, wv, bv);
                        let sq = t.mul(hc, hc);
                        t.sum_all(sq)
                    },
                    &cfg(),
                )
                .assert_ok(if h_slot {
                    "lstm_cell(h)"
                } else {
                    "lstm_cell(c)"
                });
            }
        }),
    );
    // "leaf" is exercised by every fixture above: inputs and constants are
    // leaves, and input leaves on the gradient path get backward visits.
    // The w/b slots of lstm_cell are exercised parameter-side by
    // `lstm_params_match_finite_differences`.
    out
}

#[test]
fn every_op_kind_passes_fd_and_coverage_is_machine_checked() {
    profile::set_enabled(true);
    let snapshot = {
        let _p = profile::phase("op_grads_coverage");
        for (_, f) in fixtures() {
            f();
        }
        lstm_params_match_finite_differences();
        mlp_params_match_finite_differences();
        profile::snapshot().under("op_grads_coverage")
    };
    profile::set_enabled(false);

    let ops = snapshot.by_op();
    let mut uncovered = Vec::new();
    for kind in OP_KINDS {
        match ops.iter().find(|r| r.kind == kind) {
            None => uncovered.push(format!("{kind} (never executed)")),
            Some(r) if r.fwd_calls == 0 => uncovered.push(format!("{kind} (no forward)")),
            Some(r) if r.bwd_calls == 0 => uncovered.push(format!("{kind} (no backward)")),
            Some(_) => {}
        }
    }
    assert!(
        uncovered.is_empty(),
        "op kinds without both-direction fixture coverage: {uncovered:?}"
    );
    // The reverse: the kind list itself must stay exhaustive. A 33rd op
    // would show up here before anyone remembers to extend OP_KINDS.
    for r in &ops {
        assert!(
            OP_KINDS.contains(&r.kind),
            "op kind '{}' executed but missing from OP_KINDS — extend the fixture list",
            r.kind
        );
    }
}

#[test]
fn grad_reverse_negates_the_upstream_gradient() {
    // The one op whose backward *intentionally* disagrees with FD:
    // forward identity, backward −λ·g. Check analytic == −λ·numeric.
    let lambda = 1.6f64;
    let x = randn(2, 3, 29);
    let report = grad_check_input(
        &x,
        |t, x| {
            let r = t.grad_reverse(x, 1.6);
            let sq = t.mul(r, r);
            t.sum_all(sq)
        },
        &cfg(),
    );
    assert!(!report.records.is_empty());
    for rec in &report.records {
        let expected = -lambda * rec.numeric;
        assert!(
            (rec.analytic - expected).abs() <= 1e-2 * (1.0 + expected.abs()),
            "element {}: analytic {} vs −λ·numeric {}",
            rec.index,
            rec.analytic,
            expected
        );
    }
}

fn lstm_params_match_finite_differences() {
    // Full parameter-side check through a 3-step unroll: the fused gate
    // matmul, all four gate nonlinearities, and BPTT accumulation.
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(30);
    let cell = LstmCell::new(&mut store, &mut rng, "lstm", 3, 4, GroupId::DEFAULT);
    let steps: Vec<Tensor> = (0..3)
        .map(|_| Tensor::randn(2, 3, 0.0, 1.0, &mut rng))
        .collect();
    let report = grad_check(
        &mut store,
        |s| {
            let mut tape = Tape::new();
            let mut state = cell.zero_state(&mut tape, 2);
            for x in &steps {
                let xv = tape.constant(x.clone());
                state = cell.step(s, &mut tape, xv, state);
            }
            let sq = tape.mul(state.h, state.h);
            let loss = tape.sum_all(sq);
            let v = tape.value(loss).item() as f64;
            let g = tape.backward(loss);
            (v, tape.param_grads(&g))
        },
        &cfg(),
    );
    report.assert_ok("lstm parameters");
}

fn mlp_params_match_finite_differences() {
    // Two-hidden-layer MLP, tanh (smooth, so every parameter is FD-exact;
    // the relu kink itself is covered kink-free by the relu fixture).
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(31);
    let mlp = Mlp::new(
        &mut store,
        &mut rng,
        "mlp",
        &[3, 6, 5, 2],
        Activation::Tanh,
        GroupId::DEFAULT,
    );
    let x = Tensor::randn(2, 3, 0.0, 1.0, &mut rng);
    let target = Tensor::randn(2, 2, 0.0, 1.0, &mut rng);
    let report = grad_check(
        &mut store,
        |s| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = mlp.forward(s, &mut tape, xv);
            let loss = tape.mse_to(y, &target);
            let v = tape.value(loss).item() as f64;
            let g = tape.backward(loss);
            (v, tape.param_grads(&g))
        },
        &cfg(),
    );
    report.assert_ok("mlp parameters");
}

#[test]
fn lstm_fd_runs_standalone() {
    lstm_params_match_finite_differences();
}

#[test]
fn mlp_fd_runs_standalone() {
    mlp_params_match_finite_differences();
}
