//! Kernel-dispatch equivalence: the default SIMD GEMM path must agree
//! **bitwise** with the scalar path on every shape and sparsity pattern —
//! the contract that lets PR 10 ship explicit AVX2 microkernels without
//! touching a single golden baseline (see `crates/tensor/src/kernels.rs`
//! module docs for the IEEE lane-wise argument).
//!
//! Randomized through the offline `adaptraj_check::prop` harness; degenerate
//! shapes (k=0, m=0, single row, all-zero `a`) get dedicated deterministic
//! cases on top because a uniform draw visits them rarely. The forced-split
//! test pins the other half of the tentpole: intra-op row partitioning is
//! bitwise invisible at any lane count.
//!
//! These tests force kernels per call via `matmul_with` — the process-wide
//! dispatch is never flipped, so they are safe to run concurrently with
//! every other test in this binary.

use adaptraj_check::prop::{check, Gen};
use adaptraj_exec::intra_op;
use adaptraj_tensor::{kernels, Kernel, Tensor};
use std::sync::Mutex;

/// Serializes tests that install the process-global intra-op hook.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// A tensor where roughly `zero_pct`% of entries are exactly 0.0, so the
/// zero-skip branch (skip k-terms whose left factor is zero) is exercised
/// at every density from dense to empty.
fn sparse_tensor(g: &mut Gen, rows: usize, cols: usize, zero_pct: usize) -> Tensor {
    let mut t = g.tensor(rows, cols);
    for v in t.data_mut() {
        if g.rng().below(100) < zero_pct {
            *v = 0.0;
        }
    }
    t
}

fn check_all_products(a: &Tensor, b: &Tensor, label: &str) -> Result<(), String> {
    let (n, k) = a.shape();
    let m = b.shape().1;
    let nn_s = a.matmul_with(b, Kernel::Scalar);
    let nn_v = a.matmul_with(b, Kernel::Simd);
    if bits(&nn_s) != bits(&nn_v) {
        return Err(format!("{label}: NN scalar/simd diverge ({n},{k},{m})"));
    }
    let at = a.transpose();
    let tn_s = at.matmul_tn_with(b, Kernel::Scalar);
    let tn_v = at.matmul_tn_with(b, Kernel::Simd);
    if bits(&tn_s) != bits(&tn_v) {
        return Err(format!("{label}: TN scalar/simd diverge ({n},{k},{m})"));
    }
    if bits(&nn_s) != bits(&tn_s) {
        return Err(format!(
            "{label}: TN composition drifted from NN ({n},{k},{m})"
        ));
    }
    let bt = b.transpose();
    let nt_s = a.matmul_nt_with(&bt, Kernel::Scalar);
    let nt_v = a.matmul_nt_with(&bt, Kernel::Simd);
    if bits(&nt_s) != bits(&nt_v) {
        return Err(format!("{label}: NT scalar/simd diverge ({n},{k},{m})"));
    }
    if bits(&nn_s) != bits(&nt_s) {
        return Err(format!(
            "{label}: NT composition drifted from NN ({n},{k},{m})"
        ));
    }
    Ok(())
}

#[test]
fn scalar_and_simd_agree_bitwise_on_random_shapes() {
    if !kernels::simd_available() {
        eprintln!("skipping: AVX2 unavailable on this host");
        return;
    }
    check("kernel-equivalence-random", 150, |g| {
        // Dimensions up to 5×MAX_SIZE so the 16-column register panels,
        // the 8-wide tail, and the scalar tail all get hit; 0 included.
        let n = g.int_in(0, 5 * g.size);
        let k = g.int_in(0, 5 * g.size);
        let m = g.int_in(0, 5 * g.size);
        let zero_pct = g.int_in(0, 100);
        let a = sparse_tensor(g, n, k, zero_pct);
        let b = g.tensor(k, m);
        check_all_products(&a, &b, "random")
    });
}

#[test]
fn scalar_and_simd_agree_bitwise_on_degenerate_shapes() {
    if !kernels::simd_available() {
        eprintln!("skipping: AVX2 unavailable on this host");
        return;
    }
    check("kernel-equivalence-degenerate", 40, |g| {
        // k=0 (empty inner dim: output must stay exactly zero), m=0
        // (empty output rows), n=1 (single-row path), n=0, and an a that
        // is entirely zeros (every k-term skipped).
        let d = 1 + 3 * g.size;
        for (n, k, m, zero_pct) in [
            (d, 0, d, 0),
            (0, d, d, 0),
            (d, d, 0, 0),
            (1, d, d, 30),
            (d, 1, 1, 0),
            (d, d, d, 100),
        ] {
            let a = sparse_tensor(g, n, k, zero_pct);
            let b = g.tensor(k, m);
            check_all_products(&a, &b, "degenerate")?;
        }
        Ok(())
    });
}

#[test]
fn equivalence_holds_under_forced_intra_op_split() {
    let _guard = HOOK_LOCK.lock().unwrap();
    // Zero threshold + 4 lanes: every product in the property splits,
    // including single-row and empty ones. Scalar, SIMD, and the unsplit
    // reference must all coincide bitwise.
    let prev_min = kernels::split_min_flops();
    kernels::set_split_min_flops(0);
    intra_op::install(4);
    let result = std::panic::catch_unwind(|| {
        check("kernel-equivalence-split", 60, |g| {
            let n = g.int_in(0, 5 * g.size);
            let k = g.int_in(0, 4 * g.size);
            let m = g.int_in(0, 4 * g.size);
            let a = sparse_tensor(g, n, k, 40);
            let b = g.tensor(k, m);
            check_all_products(&a, &b, "split")?;
            // Split-vs-unsplit on the dispatch path actually used in prod.
            let split = a.matmul(&b);
            intra_op::install(1);
            let unsplit = a.matmul(&b);
            intra_op::install(4);
            if bits(&split) != bits(&unsplit) {
                return Err(format!("split result diverges from unsplit ({n},{k},{m})"));
            }
            Ok(())
        });
    });
    intra_op::install(1);
    kernels::set_split_min_flops(prev_min);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

#[test]
fn active_kernel_resolves_and_is_stable() {
    // Whatever the environment selected, repeated reads must agree (the
    // dispatch is cached) and the choice must be runnable on this host.
    let k = kernels::active_kernel();
    assert_eq!(k, kernels::active_kernel());
    match k {
        Kernel::Scalar => {}
        Kernel::Simd => assert!(kernels::simd_available()),
        Kernel::Fma => assert!(kernels::fma_available()),
    }
}
