//! Regression tests pinning `golden_gate`'s behavior on malformed input:
//! a one-line schema error on stderr and exit code 2 — never a panic.

use adaptraj_check::golden::{golden_path, GOLDEN_NAMES};
use std::path::PathBuf;
use std::process::Command;

fn golden_gate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_golden_gate"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("adaptraj_golden_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_schema_error(out: std::process::Output, needle: &str) {
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "stderr missing '{needle}': {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "gate panicked instead of reporting: {stderr}"
    );
    assert_eq!(stderr.trim_end().lines().count(), 1, "stderr: {stderr}");
}

#[test]
fn malformed_baseline_json_is_a_one_line_error() {
    let base = tmp_dir("malformed");
    std::fs::write(golden_path(&base, GOLDEN_NAMES[0]), "{\"schema\":").unwrap();
    let out = golden_gate()
        .args([
            "--baseline-dir",
            base.to_str().unwrap(),
            "--candidate-dir",
            base.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_schema_error(out, "golden_gate: baseline");
}

#[test]
fn wrong_schema_version_is_a_one_line_error() {
    let base = tmp_dir("wrong_schema");
    std::fs::write(
        golden_path(&base, GOLDEN_NAMES[0]),
        "{\"schema\":\"adaptraj-golden/v999\",\"name\":\"x\"}",
    )
    .unwrap();
    let out = golden_gate()
        .args([
            "--baseline-dir",
            base.to_str().unwrap(),
            "--candidate-dir",
            base.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_schema_error(out, "golden_gate: baseline");
}

#[test]
fn missing_baseline_file_is_a_one_line_error() {
    let empty = tmp_dir("empty");
    let out = golden_gate()
        .args([
            "--baseline-dir",
            empty.to_str().unwrap(),
            "--candidate-dir",
            empty.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_schema_error(out, "golden_gate: baseline");
}
