//! End-to-end gradient verification: each backbone's full training loss,
//! CausalMotion's V-REx gradient assembly, and AdapTraj's three-step
//! objective, all checked against central finite differences on tiny
//! fixed-seed windows.
//!
//! Two intentional forward/backward asymmetries shape these tests (see
//! `adaptraj_check::gradcheck` module docs):
//!
//! * **Langevin detach** (LBEBM): the negative sample is computed from the
//!   energy-net and scene-encoder parameters but enters the tape as a
//!   constant, so FD disagrees for those parameters *by design*. The
//!   LBEBM check filters to the posterior/rollout parameters the detached
//!   path cannot reach.
//! * **Gradient reversal + teacher detach** (AdapTraj): the per-step
//!   checks zero `gamma` (GRL) and `distill_weight` (teacher detach) so
//!   every parameter is FD-clean; the full-config check filters to the
//!   downstream heads and aggregator; and a dedicated test pins the GRL
//!   semantics (analytic = −λ·numeric upstream of the reversal) on the
//!   real `similarity_loss`.

use adaptraj_check::gradcheck::{grad_check, grad_check_state, GradCheckConfig};
use adaptraj_core::config::{AGGREGATOR_GROUP, AUX_GROUP, INVARIANT_GROUP, SPECIFIC_GROUP};
use adaptraj_core::losses::similarity_loss;
use adaptraj_core::{AdapTraj, AdapTrajConfig, DomainClassifier, Features};
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_TOTAL};
use adaptraj_data::WindowBatch;
use adaptraj_models::{
    Backbone, BackboneConfig, ForwardCtx, Lbebm, PecNet, SocialLstm, BACKBONE_GROUP,
};
use adaptraj_tensor::nn::{Activation, Mlp};
use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::{GroupId, ParamId, ParamStore, Rng, Tape, Tensor};

/// Whole-model checks subsample each parameter tensor and run at a looser
/// tolerance than the per-op fixtures: the loss is a long `f32` chain, so
/// rounding noise in the difference quotient grows with depth. `eps` is
/// smaller than the per-op fixtures' because the models are full of relu
/// units whose kink the perturbation must not cross (see [`jitter`]).
fn model_cfg() -> GradCheckConfig {
    GradCheckConfig {
        eps: 2e-3,
        tol: 2e-2,
        max_per_param: 4,
    }
}

/// Freshly constructed models have all-zero biases, which parks relu
/// preactivations exactly on the kink where central differences measure
/// the subgradient average instead of the one-sided derivative the tape
/// returns. A small deterministic jitter moves every unit off the kink.
fn jitter(store: &mut ParamStore, seed: u64) {
    let mut rng = Rng::seed_from(seed);
    let ids: Vec<ParamId> = store.ids().collect();
    for id in ids {
        for v in store.value_mut(id).data_mut() {
            *v += rng.uniform(-0.08, 0.08);
        }
    }
}

/// Smallest architecture the constructors accept — keeps the FD loop
/// (2 forward passes per checked element) cheap.
fn tiny() -> BackboneConfig {
    BackboneConfig {
        embed_dim: 4,
        hidden_dim: 6,
        inter_dim: 6,
        dec_hidden: 6,
        z_dim: 3,
        ..BackboneConfig::default()
    }
}

/// A deterministic window with one neighbor, so the interaction pooling
/// path carries real gradient.
fn toy_window(v: f32, domain: DomainId) -> TrajWindow {
    let focal: Vec<Point> = (0..T_TOTAL)
        .map(|t| [v * t as f32, 0.1 * (t as f32).sin()])
        .collect();
    let nb: Vec<Point> = (0..T_OBS)
        .map(|t| [1.0 + 0.8 * v * t as f32, 0.5 - 0.05 * t as f32])
        .collect();
    TrajWindow::from_world(&focal, &[nb], domain)
}

/// One deterministic training forward+backward for a plain backbone:
/// re-seeds the per-window rng inside the closure so every FD evaluation
/// sees the identical noise draw.
fn backbone_eval<'a, B: adaptraj_models::Backbone>(
    model: &'a B,
    w: &TrajWindow,
    seed: u64,
) -> impl Fn(&ParamStore) -> (f64, Vec<(ParamId, Tensor)>) + 'a {
    let w = w.clone();
    move |s| {
        let mut tape = Tape::new();
        let mut wrng = Rng::seed_from(seed);
        let batch = WindowBatch::single(&w, 0);
        let mut ctx = ForwardCtx::train(s, &mut tape, std::slice::from_mut(&mut wrng));
        let (_, loss) = model.train_forward(&mut ctx, &batch, None);
        let v = tape.value(loss).item() as f64;
        let g = tape.backward(loss);
        (v, tape.param_grads(&g))
    }
}

#[test]
fn pecnet_training_loss_gradients_match_fd() {
    // PECNet's train path is detach-clean: the endpoint target is data and
    // the CVAE eps is an rng constant independent of the parameters, so
    // every parameter must pass.
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(11);
    let model = PecNet::new(&mut store, &mut rng, tiny());
    jitter(&mut store, 91);
    let w = toy_window(0.3, DomainId::EthUcy);
    grad_check(&mut store, backbone_eval(&model, &w, 501), &model_cfg())
        .assert_ok("pecnet training loss");
}

#[test]
fn social_lstm_training_loss_gradients_match_fd() {
    // SocialLSTM's latent z is a plain Gaussian constant: detach-clean.
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(12);
    let model = SocialLstm::new(&mut store, &mut rng, tiny());
    jitter(&mut store, 92);
    let w = toy_window(0.25, DomainId::EthUcy);
    grad_check(&mut store, backbone_eval(&model, &w, 502), &model_cfg())
        .assert_ok("social-lstm training loss");
}

#[test]
fn lbebm_training_loss_gradients_match_fd_on_detach_clean_params() {
    // The Langevin negative is detached but *computed from* the energy-net
    // and scene-encoder parameters, so FD sees a dependency the tape
    // (correctly) ignores for `lbebm.energy.*` and the scene encoder.
    // The posterior and rollout decoder never feed the Langevin chain —
    // they must pass an ordinary FD check.
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(13);
    let model = Lbebm::new(&mut store, &mut rng, tiny());
    jitter(&mut store, 93);
    let w = toy_window(0.35, DomainId::EthUcy);
    let report = grad_check_state(
        &mut store,
        |s| s,
        backbone_eval(&model, &w, 503),
        |name| name.starts_with("lbebm.post") || name.starts_with("lbebm.roll"),
        &model_cfg(),
    );
    assert!(
        report.checked() > 0,
        "filter matched no parameters — prefixes renamed?"
    );
    report.assert_ok("lbebm training loss (posterior + rollout)");
}

#[test]
fn causal_motion_vrex_gradient_assembly_matches_fd() {
    // CausalMotion never builds the V-REx objective on one tape: the
    // trainer assembles  dL/dθ = (g₁+g₂)/2 + 2λ(r₁−r₂)(g₁−g₂)  from
    // per-environment risks/gradients (crates/models/src/causal_motion.rs).
    // Verify that assembled gradient against FD of the explicit scalar
    //   L = (r₁+r₂)/2 + λ(r₁−r₂)²
    // with λ = INVARIANCE_WEIGHT = 2.0.
    let lambda = 2.0f64;
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(14);
    let model = PecNet::new(&mut store, &mut rng, tiny());
    jitter(&mut store, 94);
    // Similar speeds keep the risk gap small: the assembly's 2λ(r₁−r₂)
    // factor multiplies every per-environment gradient (and any relu-kink
    // FD error with it), so a large gap would drown the comparison.
    let w1 = toy_window(0.3, DomainId::EthUcy);
    let w2 = toy_window(0.34, DomainId::EthUcy);

    let risk = |s: &ParamStore, w: &TrajWindow, seed: u64| {
        let mut tape = Tape::new();
        let mut wrng = Rng::seed_from(seed);
        let batch = WindowBatch::single(w, 0);
        let mut ctx = ForwardCtx::train(s, &mut tape, std::slice::from_mut(&mut wrng));
        let (_, loss) = model.train_forward(&mut ctx, &batch, None);
        let v = tape.value(loss).item() as f64;
        let g = tape.backward(loss);
        (v, tape.param_grads(&g))
    };

    let report = grad_check(
        &mut store,
        |s| {
            let (r1, g1) = risk(s, &w1, 601);
            let (r2, g2) = risk(s, &w2, 602);
            let gap = r1 - r2;
            let loss = 0.5 * (r1 + r2) + lambda * gap * gap;
            let coeff = (2.0 * lambda * gap) as f32;
            let assembled: Vec<(ParamId, Tensor)> = g1
                .iter()
                .map(|(id, t1)| {
                    let t2 = g2
                        .iter()
                        .find(|(id2, _)| id2 == id)
                        .map(|(_, t)| t.clone())
                        .unwrap_or_else(|| Tensor::zeros(t1.rows(), t1.cols()));
                    let combined = t1.zip_map(&t2, |a, b| 0.5 * (a + b) + coeff * (a - b));
                    (*id, combined)
                })
                .collect();
            (loss, assembled)
        },
        &model_cfg(),
    );
    report.assert_ok("causal-motion v-rex assembly");
}

fn tiny_adaptraj_cfg() -> AdapTrajConfig {
    let mut cfg = AdapTrajConfig::smoke();
    cfg.feat_dim = 4;
    cfg.fused_dim = 4;
    cfg.trainer.seed = 21;
    cfg
}

fn tiny_adaptraj(cfg: AdapTrajConfig) -> AdapTraj<PecNet> {
    AdapTraj::new(cfg, &[DomainId::EthUcy, DomainId::LCas], |s, r, extra| {
        PecNet::new(s, r, tiny().with_extra(extra))
    })
}

#[test]
fn adaptraj_step_losses_match_fd_with_asymmetries_disabled() {
    // γ = 0 removes the gradient-reversed similarity term and
    // distill_weight = 0 the teacher-detach term: the remaining objective
    // is FD-clean over *every* parameter. Check the exact (masked, δ)
    // loss surfaces the three-step schedule optimizes: step 1 uses the
    // expert path at δ, steps 2–3 the masked path at δ′ (model.rs::fit).
    let mut cfg = tiny_adaptraj_cfg();
    cfg.gamma = 0.0;
    cfg.distill_weight = 0.0;
    let delta = cfg.delta;
    let delta_prime = cfg.delta_prime;
    let mut model = tiny_adaptraj(cfg);
    jitter(model.store_mut(), 95);
    let w = toy_window(0.3, DomainId::LCas);

    for (label, masked, d) in [
        ("adaptraj step1 (expert path)", false, delta),
        ("adaptraj steps2-3 (masked path)", true, delta_prime),
    ] {
        let report = grad_check_state(
            &mut model,
            |m| m.store_mut(),
            |m| {
                let mut tape = Tape::new();
                let mut wrng = Rng::seed_from(701);
                let batch = WindowBatch::single(&w, 0);
                let mut ctx =
                    ForwardCtx::train(m.store(), &mut tape, std::slice::from_mut(&mut wrng));
                let loss = m.batch_training_loss(&mut ctx, &batch, masked, d);
                let v = tape.value(loss).item() as f64;
                let g = tape.backward(loss);
                (v, tape.param_grads(&g))
            },
            |_| true,
            &model_cfg(),
        );
        report.assert_ok(label);
    }
}

#[test]
fn adaptraj_full_objective_matches_fd_on_clean_params() {
    // Full config (γ > 0, distillation on), masked path: parameters that
    // feed the invariant features are GRL-contaminated and the specific
    // experts feed the detached teacher, but the aggregator (student side
    // of the distillation, attached), the reconstruction decoder, and the
    // domain classifier have no path through either asymmetry.
    let cfg = tiny_adaptraj_cfg();
    let delta_prime = cfg.delta_prime;
    assert!(cfg.gamma > 0.0 && cfg.distill_weight > 0.0);
    let mut model = tiny_adaptraj(cfg);
    jitter(model.store_mut(), 96);
    let w = toy_window(0.3, DomainId::EthUcy);
    let report = grad_check_state(
        &mut model,
        |m| m.store_mut(),
        |m| {
            let mut tape = Tape::new();
            let mut wrng = Rng::seed_from(702);
            let batch = WindowBatch::single(&w, 0);
            let mut ctx = ForwardCtx::train(m.store(), &mut tape, std::slice::from_mut(&mut wrng));
            let loss = m.batch_training_loss(&mut ctx, &batch, true, delta_prime);
            let v = tape.value(loss).item() as f64;
            let g = tape.backward(loss);
            (v, tape.param_grads(&g))
        },
        |name| name.starts_with("agg.") || name.starts_with("aux."),
        &model_cfg(),
    );
    assert!(report.checked() > 0);
    report.assert_ok("adaptraj full objective (aggregator + heads)");
}

#[test]
fn grl_reverses_gradients_upstream_of_the_similarity_loss() {
    // The real `similarity_loss` on synthetic features: parameters that
    // reach the classifier only through the reversed invariant features
    // must satisfy analytic = −λ·numeric (λ = GRL_LAMBDA = 1), while the
    // specific-path and classifier parameters get the ordinary gradient.
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(15);
    let feat_dim = 4;
    let enc = Mlp::new(
        &mut store,
        &mut rng,
        "enc",
        &[3, 5, feat_dim],
        Activation::Tanh,
        GroupId::DEFAULT,
    );
    let spec = Mlp::new(
        &mut store,
        &mut rng,
        "spec",
        &[3, 5, feat_dim],
        Activation::Tanh,
        GroupId::DEFAULT,
    );
    let clf = DomainClassifier::new(&mut store, &mut rng, feat_dim, 3);
    jitter(&mut store, 97);
    let x_ind = Tensor::randn(1, 3, 0.0, 1.0, &mut rng);
    let x_nei = Tensor::randn(1, 3, 0.0, 1.0, &mut rng);

    let eval = |s: &ParamStore| {
        let mut tape = Tape::new();
        let xi = tape.constant(x_ind.clone());
        let xn = tape.constant(x_nei.clone());
        let feats = Features {
            inv_ind: enc.forward(s, &mut tape, xi),
            inv_nei: enc.forward(s, &mut tape, xn),
            spec_ind: spec.forward(s, &mut tape, xi),
            spec_nei: spec.forward(s, &mut tape, xn),
        };
        let loss = similarity_loss(s, &mut tape, &clf, &feats, 1);
        let v = tape.value(loss).item() as f64;
        let g = tape.backward(loss);
        (v, tape.param_grads(&g))
    };

    // Downstream / non-reversed parameters: plain FD agreement.
    grad_check_state(
        &mut store,
        |s| s,
        eval,
        |name| name.starts_with("spec.") || name.starts_with("aux.class"),
        &model_cfg(),
    )
    .assert_ok("similarity loss (specific + classifier params)");

    // Upstream of the reversal: the sign flips.
    let reversed = grad_check_state(
        &mut store,
        |s| s,
        eval,
        |name| name.starts_with("enc."),
        &model_cfg(),
    );
    assert!(reversed.checked() > 0);
    for rec in &reversed.records {
        let expected = -rec.numeric; // λ = 1
        assert!(
            (rec.analytic - expected).abs() <= 2e-2 * (1.0 + expected.abs()),
            "{}[{}]: analytic {:+.6e}, want −numeric {:+.6e}",
            rec.param,
            rec.index,
            rec.analytic,
            expected
        );
    }
}

#[test]
fn three_step_schedule_freezes_and_scales_the_documented_groups() {
    let cfg = tiny_adaptraj_cfg();
    let lr = cfg.trainer.lr;
    let mut opt = Adam::new(lr);

    AdapTraj::<PecNet>::configure_schedule(&mut opt, &cfg, 1);
    assert!(
        opt.schedule.is_frozen(AGGREGATOR_GROUP),
        "step 1 freezes M/A"
    );
    for g in [BACKBONE_GROUP, INVARIANT_GROUP, SPECIFIC_GROUP, AUX_GROUP] {
        assert_eq!(opt.schedule.effective_lr(g), Some(lr), "step 1 full lr");
    }

    AdapTraj::<PecNet>::configure_schedule(&mut opt, &cfg, 2);
    assert!(
        opt.schedule.is_frozen(SPECIFIC_GROUP),
        "step 2 freezes the specific experts"
    );
    assert!(
        !opt.schedule.is_frozen(AGGREGATOR_GROUP),
        "step 2 must undo step 1's freeze"
    );
    assert_eq!(
        opt.schedule.effective_lr(AGGREGATOR_GROUP),
        Some(lr * cfg.f_high)
    );
    for g in [BACKBONE_GROUP, INVARIANT_GROUP, AUX_GROUP] {
        assert_eq!(opt.schedule.effective_lr(g), Some(lr * cfg.f_low));
    }

    AdapTraj::<PecNet>::configure_schedule(&mut opt, &cfg, 3);
    for g in [
        BACKBONE_GROUP,
        INVARIANT_GROUP,
        SPECIFIC_GROUP,
        AGGREGATOR_GROUP,
        AUX_GROUP,
    ] {
        assert!(!opt.schedule.is_frozen(g), "step 3 unfreezes everything");
        assert_eq!(opt.schedule.effective_lr(g), Some(lr * cfg.f_low));
    }
}
