//! Randomized tape invariants and algebraic identities, run through the
//! offline `adaptraj_check::prop` harness so they execute in the default
//! `cargo test` (the proptest versions in `crates/tensor/tests/
//! proptest_ops.rs` stay registry-gated and never run in offline CI).
//!
//! Three structural invariants of the autodiff engine, then the key
//! algebraic properties ported from the proptest suite.

use adaptraj_check::prop::{assert_close, check, Gen};
use adaptraj_tensor::{pool, with_pooled, BufferPool, Tape, Tensor, Var};

/// Grows a random same-shape expression DAG over one input leaf and a few
/// constants, reusing earlier nodes so the graph has real fan-out.
fn random_dag(g: &mut Gen, tape: &mut Tape) -> (Var, Vec<Var>) {
    let (rows, cols) = (g.dim(), g.dim());
    let mut vars = vec![tape.input(g.tensor(rows, cols))];
    let steps = g.int_in(2, 8);
    for _ in 0..steps {
        let a = vars[g.rng().below(vars.len())];
        let b = vars[g.rng().below(vars.len())];
        let v = match g.int_in(0, 6) {
            0 => tape.add(a, b),
            1 => tape.mul(a, b),
            2 => tape.sub(a, b),
            3 => tape.tanh(a),
            4 => tape.neg(a),
            5 => tape.scale(a, 0.5),
            _ => {
                let c = tape.constant(g.tensor(rows, cols));
                vars.push(c);
                tape.add(a, c)
            }
        };
        vars.push(v);
    }
    let last = *vars.last().expect("non-empty");
    let root = tape.sum_all(last);
    vars.push(root);
    (root, vars)
}

#[test]
fn node_order_is_topological() {
    // The whole backward pass relies on it: `backward` visits nodes in
    // reverse index order and assumes every parent has a smaller index.
    check("topological-order", 60, |g| {
        let mut tape = Tape::new();
        let (_, vars) = random_dag(g, &mut tape);
        for &v in &vars {
            for p in tape.parents(v) {
                if p.index() >= v.index() {
                    return Err(format!(
                        "node {} ({}) has parent {} ({}) with index >= its own",
                        v.index(),
                        tape.op_kind(v),
                        p.index(),
                        tape.op_kind(p)
                    ));
                }
            }
        }
        Ok(())
    });
}

#[test]
fn gradient_accumulation_is_linear() {
    // ∇(α·L₁ + β·L₂) = α·∇L₁ + β·∇L₂ — the accumulation in `add_grad`
    // must be a plain sum, with no path-order or fan-out dependence.
    check("grad-linearity", 60, |g| {
        let mut tape = Tape::new();
        let (rows, cols) = (g.dim(), g.dim());
        let x = tape.input(g.tensor(rows, cols));
        let c = tape.constant(g.tensor(rows, cols));
        let t = tape.tanh(x);
        let m = tape.mul(t, c);
        let l1 = tape.sum_all(m);
        let sq = tape.mul(x, x);
        let l2 = tape.sum_all(sq);
        let (alpha, beta) = (0.75f32, -1.25f32);
        let s1 = tape.scale(l1, alpha);
        let s2 = tape.scale(l2, beta);
        let combined = tape.add(s1, s2);

        let g1 = tape.backward(l1).get(x).cloned().ok_or("no grad for L1")?;
        let g2 = tape.backward(l2).get(x).cloned().ok_or("no grad for L2")?;
        let gc = tape
            .backward(combined)
            .get(x)
            .cloned()
            .ok_or("no grad for combined loss")?;
        let expected = g1.zip_map(&g2, |a, b| alpha * a + beta * b);
        assert_close(&gc, &expected, 1e-4, "combined gradient")
    });
}

#[test]
fn constants_and_dead_branches_get_no_gradient() {
    check("no-grad-leaves", 60, |g| {
        let mut tape = Tape::new();
        let (rows, cols) = (g.dim(), g.dim());
        let x = tape.input(g.tensor(rows, cols));
        let c = tape.constant(g.tensor(rows, cols));
        // A live branch through both, and a dead branch off to the side.
        let dead = tape.input(g.tensor(rows, cols));
        let _unused = tape.tanh(dead);
        let m = tape.mul(x, c);
        let root = tape.sum_all(m);
        let grads = tape.backward(root);
        if grads.get(c).is_some() {
            return Err("constant received a gradient".into());
        }
        if grads.get(dead).is_some() {
            return Err("leaf outside the root's ancestry received a gradient".into());
        }
        let gx = grads.get(x).ok_or("live input has no gradient")?;
        // dΣ(x⊙c)/dx = c exactly.
        assert_close(gx, tape.value(c), 1e-6, "live gradient")
    });
}

#[test]
fn add_commutes_bitwise() {
    check("add-commutes", 80, |g| {
        let (rows, cols) = (g.dim(), g.dim());
        let a = g.tensor(rows, cols);
        let b = g.tensor(rows, cols);
        if a.add(&b).data() == b.add(&a).data() {
            Ok(())
        } else {
            Err("a + b != b + a".into())
        }
    });
}

#[test]
fn matmul_distributes_over_add() {
    check("matmul-distributes", 60, |g| {
        let (m, k, n) = (g.dim(), g.dim(), g.dim());
        let a = g.tensor(m, k);
        let b = g.tensor(k, n);
        let c = g.tensor(k, n);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        assert_close(&lhs, &rhs, 1e-4, "A(B+C) vs AB+AC")
    });
}

#[test]
fn transpose_is_involution_and_reverses_matmul() {
    check("transpose-identities", 60, |g| {
        let (m, k, n) = (g.dim(), g.dim(), g.dim());
        let a = g.tensor(m, k);
        let b = g.tensor(k, n);
        if a.transpose().transpose().data() != a.data() {
            return Err("(Aᵀ)ᵀ != A".into());
        }
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_close(&lhs, &rhs, 1e-4, "(AB)ᵀ vs BᵀAᵀ")
    });
}

#[test]
fn softmax_rows_are_distributions() {
    check("softmax-rows", 80, |g| {
        let (rows, cols) = (g.dim(), g.dim());
        let s = g.tensor(rows, cols).softmax_rows();
        for r in 0..rows {
            let row = s.row_slice(r);
            if !row.iter().all(|&p| (0.0..=1.0).contains(&p)) {
                return Err(format!("row {r} has an entry outside [0, 1]"));
            }
            let sum: f32 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-4 {
                return Err(format!("row {r} sums to {sum}"));
            }
        }
        Ok(())
    });
}

#[test]
fn concat_slice_round_trip() {
    check("concat-slice", 60, |g| {
        let rows = g.dim();
        let (wa, wb) = (g.dim(), g.dim());
        let a = g.tensor(rows, wa);
        let b = g.tensor(rows, wb);
        let c = Tensor::concat_cols(&[&a, &b]);
        if c.slice_cols(0, wa).data() != a.data() {
            return Err("first slice != a".into());
        }
        if c.slice_cols(wa, wa + wb).data() != b.data() {
            return Err("second slice != b".into());
        }
        Ok(())
    });
}

#[test]
fn gather_rows_copies_the_indexed_rows() {
    check("gather-rows", 60, |g| {
        let (rows, cols) = (g.dim(), g.dim());
        let x = g.tensor(rows, cols);
        let n = g.int_in(1, 6);
        let idx = g.row_indices(n, rows);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let gathered = tape.gather_rows(xv, &idx);
        let got = tape.value(gathered);
        for (out_r, &src_r) in idx.iter().enumerate() {
            if got.row_slice(out_r) != x.row_slice(src_r) {
                return Err(format!("output row {out_r} != source row {src_r}"));
            }
        }
        Ok(())
    });
}

#[test]
fn simse_is_bounded_by_mse_and_nonnegative() {
    check("simse-vs-mse", 60, |g| {
        let (rows, cols) = (g.dim(), g.dim());
        let pred = g.tensor(rows, cols);
        let target = g.tensor(rows, cols);
        let mut tape = Tape::new();
        let p = tape.input(pred);
        let simse_var = tape.simse_to(p, &target);
        let simse = tape.value(simse_var).item();
        let mse_var = tape.mse_to(p, &target);
        let mse = tape.value(mse_var).item();
        if simse < -1e-6 {
            return Err(format!("simse {simse} negative"));
        }
        if simse > mse + 1e-4 {
            return Err(format!("simse {simse} exceeds mse {mse}"));
        }
        Ok(())
    });
}

#[test]
fn grad_reverse_is_identity_forward_and_negation_backward() {
    check("grad-reverse", 60, |g| {
        let (rows, cols) = (g.dim(), g.dim());
        let x = g.tensor(rows, cols);
        let lambda = 0.25 + g.rng().unit() * 2.0;
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let r = tape.grad_reverse(xv, lambda);
        if tape.value(r).data() != x.data() {
            return Err("grad_reverse changed the forward value".into());
        }
        let c = tape.constant(g.tensor(rows, cols));
        let m = tape.mul(r, c);
        let root = tape.sum_all(m);
        let grads = tape.backward(root);
        let gx = grads.get(xv).ok_or("no gradient through grad_reverse")?;
        // dΣ(gr(x)⊙c)/dx = −λ·c.
        let expected = tape.value(c).scale(-lambda);
        assert_close(gx, &expected, 1e-5, "reversed gradient")
    });
}

#[test]
fn buffer_pool_retains_capacity_and_zeroes_reused_buffers() {
    // The pool must never leak one window's data into the next: a
    // `take_zeroed` that is served from the free list has to come back
    // fully zeroed regardless of what the retired buffer held, and the
    // retired capacity has to actually be retained (that is the whole
    // point of pooling).
    check("pool-reuse", 60, |g| {
        let mut pool = BufferPool::new();
        let len = g.int_in(1, 2048);
        let garbage: Vec<f32> = (0..len).map(|i| 1.0 + i as f32).collect();
        let cap = garbage.capacity();
        pool.give(garbage);
        if pool.free_buffers() != 1 {
            return Err("retired buffer was not retained".into());
        }
        let take = g.int_in(1, len);
        let buf = pool.take_zeroed(take);
        if buf.len() != take {
            return Err(format!("take_zeroed({take}) returned len {}", buf.len()));
        }
        if buf.capacity() < cap.min(take) {
            return Err("reused buffer lost its retired capacity".into());
        }
        if buf.iter().any(|&v| v != 0.0) {
            return Err("reused buffer carries stale data".into());
        }
        let stats = pool.stats();
        if stats.reuse_hits != 1 {
            return Err(format!("expected 1 reuse hit, got {}", stats.reuse_hits));
        }
        if stats.bytes_reused != 4 * take as u64 {
            return Err(format!(
                "expected {} bytes reused, got {}",
                4 * take,
                stats.bytes_reused
            ));
        }
        // Retire it again: the free list grows back and the capacity
        // survives a second round trip.
        pool.give(buf);
        let again = pool.take_empty(take);
        if again.capacity() < take {
            return Err("second reuse lost capacity".into());
        }
        Ok(())
    });
}

#[test]
fn tape_reset_reuses_buffers_without_stale_gradients() {
    // `Tape::reset` retires every node buffer into the thread pool; the
    // next window is then served from those recycled buffers. Rebuilding
    // the identical graph after a reset must give bit-identical values
    // and gradients — any deviation means a pooled buffer leaked state.
    check("reset-no-stale-grads", 40, |g| {
        let (rows, cols) = (g.dim(), g.dim());
        let x = g.tensor(rows, cols);
        let c = g.tensor(rows, cols);
        let build = |tape: &mut Tape| {
            let xv = tape.input(x.clone());
            let cv = tape.constant(c.clone());
            let t = tape.tanh(xv);
            let m = tape.mul(t, cv);
            let s = tape.softmax_rows(m);
            let root = tape.sum_all(s);
            (xv, root)
        };
        let mut tape = Tape::new();
        let (xv, root) = build(&mut tape);
        let val1 = tape.value(root).item();
        let grads = tape.backward(root);
        let g1 = grads.get(xv).cloned().ok_or("no grad before reset")?;
        grads.recycle();
        tape.reset();

        let (xv2, root2) = build(&mut tape);
        let val2 = tape.value(root2).item();
        if val1.to_bits() != val2.to_bits() {
            return Err(format!("value drifted across reset: {val1} vs {val2}"));
        }
        let g2 = tape
            .backward(root2)
            .get(xv2)
            .cloned()
            .ok_or("no grad after reset")?;
        if g1.data() != g2.data() {
            return Err("gradient drifted across reset (stale pooled buffer)".into());
        }
        Ok(())
    });
}

#[test]
fn pooled_tape_serves_repeat_windows_from_the_free_list() {
    // Steady-state contract of `with_pooled`: after the first window has
    // retired its buffers, later identical windows are served from the
    // pool (reuse hits climb) and still produce bit-identical outputs.
    let x = Tensor::from_vec(4, 6, (0..24).map(|i| (i as f32 * 0.37).sin()).collect());
    let w = Tensor::from_vec(6, 3, (0..18).map(|i| (i as f32 * 0.11).cos()).collect());
    let run = || {
        with_pooled(|tape| {
            let xv = tape.input(x.clone());
            let wv = tape.constant(w.clone());
            let h = tape.matmul(xv, wv);
            let t = tape.tanh(h);
            let root = tape.sum_all(t);
            let val = tape.value(root).item();
            let grads = tape.backward(root);
            let gx = grads.expect(xv).clone();
            grads.recycle();
            (val, gx)
        })
    };
    let (v1, g1) = run();
    let before = pool::thread_stats();
    let (v2, g2) = run();
    let after = pool::thread_stats();
    assert_eq!(v1.to_bits(), v2.to_bits(), "value must not drift");
    assert_eq!(g1, g2, "gradient must not drift");
    assert!(
        after.reuse_hits > before.reuse_hits,
        "second window should reuse retired buffers ({before:?} -> {after:?})"
    );
}
