//! Finite-difference evidence for the opt-in FMA kernel
//! (`ADAPTRAJ_KERNEL=fma`).
//!
//! The FMA variant fuses each mul+add into one correctly-rounded
//! `vfmadd`, so its results differ from the scalar/SIMD contract at ulp
//! level — it is excluded from the golden gate and must instead ship with
//! gradient-check evidence: the analytic gradients computed *under FMA
//! kernels* must match central finite differences computed *under FMA
//! kernels*, i.e. the fused rounding is a consistent arithmetic, not a
//! correctness bug.
//!
//! This file force-sets the process-wide kernel dispatch, which would race
//! with bit-identity assertions elsewhere — so it lives in its own
//! integration-test binary (one process per test file) and every test
//! here tolerates FMA rounding. `set_active_kernel` falls back to scalar
//! on non-FMA hosts, where these checks still pass (they then just
//! duplicate the scalar evidence).

use adaptraj_check::gradcheck::{grad_check, GradCheckConfig};
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_TOTAL};
use adaptraj_data::WindowBatch;
use adaptraj_models::{Backbone, BackboneConfig, ForwardCtx, PecNet};
use adaptraj_tensor::kernels::{self, Kernel};
use adaptraj_tensor::nn::{Activation, Mlp};
use adaptraj_tensor::{GroupId, ParamId, ParamStore, Rng, Tape, Tensor};

fn force_fma() {
    kernels::set_active_kernel(Kernel::Fma);
    if kernels::active_kernel() != Kernel::Fma {
        eprintln!("FMA unavailable on this host; checking the fallback kernel instead");
    }
}

fn model_cfg() -> GradCheckConfig {
    GradCheckConfig {
        eps: 2e-3,
        tol: 2e-2,
        max_per_param: 4,
    }
}

fn jitter(store: &mut ParamStore, seed: u64) {
    let mut rng = Rng::seed_from(seed);
    let ids: Vec<ParamId> = store.ids().collect();
    for id in ids {
        for v in store.value_mut(id).data_mut() {
            *v += rng.uniform(-0.08, 0.08);
        }
    }
}

#[test]
fn mlp_loss_gradients_match_fd_under_fma() {
    force_fma();
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(21);
    let mlp = Mlp::new(
        &mut store,
        &mut rng,
        "fma_probe",
        &[6, 24, 24, 2],
        Activation::Tanh,
        GroupId::DEFAULT,
    );
    jitter(&mut store, 22);
    let x = Tensor::randn(5, 6, 0.0, 1.0, &mut rng);
    let y = Tensor::randn(5, 2, 0.0, 0.5, &mut rng);
    grad_check(
        &mut store,
        |s| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let pred = mlp.forward(s, &mut tape, xv);
            let loss = tape.mse_to(pred, &y);
            let v = tape.value(loss).item() as f64;
            let g = tape.backward(loss);
            (v, tape.param_grads(&g))
        },
        &model_cfg(),
    )
    .assert_ok("mlp loss under fma kernels");
}

#[test]
fn pecnet_training_loss_gradients_match_fd_under_fma() {
    force_fma();
    // The same end-to-end check `model_grads.rs` runs for the default
    // kernels: PECNet's train path is detach-clean, so every parameter
    // must pass with the fused-rounding GEMMs underneath the whole
    // forward/backward (LSTM gates, heads, pooling).
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(11);
    let model = PecNet::new(
        &mut store,
        &mut rng,
        BackboneConfig {
            embed_dim: 4,
            hidden_dim: 6,
            inter_dim: 6,
            dec_hidden: 6,
            z_dim: 3,
            ..BackboneConfig::default()
        },
    );
    jitter(&mut store, 91);
    let focal: Vec<Point> = (0..T_TOTAL)
        .map(|t| [0.3 * t as f32, 0.1 * (t as f32).sin()])
        .collect();
    let nb: Vec<Point> = (0..T_OBS)
        .map(|t| [1.0 + 0.24 * t as f32, 0.5 - 0.05 * t as f32])
        .collect();
    let w = TrajWindow::from_world(&focal, &[nb], DomainId::EthUcy);
    grad_check(
        &mut store,
        |s| {
            let mut tape = Tape::new();
            let mut wrng = Rng::seed_from(501);
            let batch = WindowBatch::single(&w, 0);
            let mut ctx = ForwardCtx::train(s, &mut tape, std::slice::from_mut(&mut wrng));
            let (_, loss) = model.train_forward(&mut ctx, &batch, None);
            let v = tape.value(loss).item() as f64;
            let g = tape.backward(loss);
            (v, tape.param_grads(&g))
        },
        &model_cfg(),
    )
    .assert_ok("pecnet training loss under fma kernels");
}

#[test]
fn fma_forward_stays_within_rounding_of_scalar() {
    if !kernels::fma_available() {
        eprintln!("skipping: FMA unavailable on this host");
        return;
    }
    // Not bit-identical (that's the point of the opt-in), but the drift
    // must be rounding-scale, not structural.
    let mut rng = Rng::seed_from(33);
    let a = Tensor::randn(16, 80, 0.0, 1.0, &mut rng);
    let b = Tensor::randn(80, 128, 0.0, 1.0, &mut rng);
    let scalar = a.matmul_with(&b, Kernel::Scalar);
    let fma = a.matmul_with(&b, Kernel::Fma);
    let mut max_rel = 0.0f32;
    for (s, f) in scalar.data().iter().zip(fma.data()) {
        max_rel = max_rel.max((s - f).abs() / s.abs().max(1.0));
    }
    assert!(max_rel < 1e-5, "fma drift beyond rounding scale: {max_rel}");
    assert!(
        scalar.data() != fma.data() || max_rel == 0.0,
        "sanity: fused rounding usually differs somewhere on an 80-term dot"
    );
}
