//! Mask correctness and batched-vs-per-window equivalence for the batched
//! `WindowBatch` execution path.
//!
//! Two layers of evidence back the batched redesign:
//!
//! * **Mechanism properties** (through `adaptraj_check::prop`): the padded
//!   slot grid's two masking devices — the `PAD_BIAS` additive softmax
//!   bias of the attention path and the 0/1 multiplicative mask of the
//!   mean-pool path — produce *exactly* zero weight and *exactly* zero
//!   gradient at every pad slot, not merely small values. This is the
//!   "padding provably contributes zero gradient" claim of the layout
//!   contract (`crates/data/src/batch.rs`).
//! * **Configuration equivalence**: for each of the five golden
//!   configurations (pecnet/lbebm/sociallstm under vanilla, pecnet under
//!   CausalMotion's per-environment risk, pecnet under AdapTraj's
//!   three-step objective), the batched loss over a ragged multi-window
//!   batch equals the mean of the batch-of-one losses up to float
//!   re-association — the equivalence demonstrated before the goldens
//!   were regenerated.
//!
//! Ragged batches here always include a 1-agent (zero-neighbor) window so
//! the maximally padded case is exercised everywhere.

use adaptraj_check::gradcheck::{grad_check, GradCheckConfig};
use adaptraj_check::prop::{check, Gen};
use adaptraj_core::{AdapTraj, AdapTrajConfig};
use adaptraj_data::batch::keyed_jobs;
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_TOTAL};
use adaptraj_data::WindowBatch;
use adaptraj_models::backbone::{InteractionKind, SceneEncoder, PAD_BIAS};
use adaptraj_models::config::TrainerConfig;
use adaptraj_models::{
    Backbone, BackboneConfig, CausalMotion, Counter, ForwardCtx, Lbebm, PecNet, Predictor,
    SocialLstm, Vanilla,
};
use adaptraj_tensor::{ParamId, ParamStore, Rng, Tape, Tensor};

// ---------------------------------------------------------------------------
// Mechanism properties: pad slots are exact zeros in value and gradient.
// ---------------------------------------------------------------------------

/// Random `[B, A_max]` validity grid with slot 0 of every window valid
/// (the focal agent always occupies the first slot) and at least one pad
/// slot overall; `None` when the draw comes out fully packed.
fn random_validity(g: &mut Gen, b: usize, a_max: usize) -> Option<Vec<bool>> {
    let mut valid = Vec::with_capacity(b * a_max);
    for _ in 0..b {
        // Slot 0 (focal) is always valid.
        valid.push(true);
        valid.extend((1..a_max).map(|_| g.rng().below(2) == 0));
    }
    if valid.iter().all(|&ok| ok) {
        None
    } else {
        Some(valid)
    }
}

#[test]
fn padded_slot_attention_weight_and_gradient_are_exactly_zero() {
    // The attention path's masked softmax, extracted verbatim from
    // `SceneEncoder::encode`: scores + PAD_BIAS → softmax → broadcast →
    // weighted slot values → per-window reduction. After the row-max
    // subtraction inside softmax, exp(PAD_BIAS) underflows to exactly 0.0
    // in f32, so pad weights are exact zeros and the softmax backward
    // `y ⊙ (g − y·g)` as well as the value-side product gradient are
    // exact zeros too.
    check("pad-attention-exact-zero", 80, |g| {
        let b = g.dim();
        let a_max = g.int_in(2, g.size + 1);
        let d = g.dim();
        let valid = match random_validity(g, b, a_max) {
            Some(v) => v,
            None => return Ok(()),
        };
        let mut tape = Tape::new();
        let scores = tape.input(g.tensor(b, a_max));
        let values = tape.input(g.tensor(b * a_max, d));
        let bias: Vec<f32> = valid
            .iter()
            .map(|&ok| if ok { 0.0 } else { PAD_BIAS })
            .collect();
        let bt = tape.constant(Tensor::from_vec(b, a_max, bias));
        let biased = tape.add(scores, bt);
        let attn = tape.softmax_rows(biased);
        let attn_col = tape.reshape(attn, b * a_max, 1);
        let ones_row = tape.constant(Tensor::ones(1, d));
        let attn_b = tape.matmul(attn_col, ones_row);
        let weighted = tape.mul(attn_b, values);
        let pooled = tape.sum_row_groups(weighted, a_max);
        let root = tape.sum_all(pooled);

        let attn_v = tape.value(attn).clone();
        let grads = tape.backward(root);
        let g_values = grads.expect(values);
        let g_scores = grads.expect(scores);
        for (slot, &ok) in valid.iter().enumerate() {
            if ok {
                continue;
            }
            let (r, c) = (slot / a_max, slot % a_max);
            if attn_v.at(r, c) != 0.0 {
                return Err(format!(
                    "pad weight ({r},{c}) = {} — not exactly zero",
                    attn_v.at(r, c)
                ));
            }
            if g_scores.at(r, c) != 0.0 {
                return Err(format!(
                    "score gradient at pad slot ({r},{c}) = {} — not exactly zero",
                    g_scores.at(r, c)
                ));
            }
            for k in 0..d {
                if g_values.at(slot, k) != 0.0 {
                    return Err(format!(
                        "value gradient at pad slot {slot} col {k} = {} — not exactly zero",
                        g_values.at(slot, k)
                    ));
                }
            }
        }
        Ok(())
    });
}

#[test]
fn padded_slot_meanpool_mask_gradient_is_exactly_zero() {
    // The mean-pool path's multiplicative mask: a 0/1 Hadamard constant
    // before the per-window slot reduction. The backward of a constant
    // Hadamard is the same mask, so gradients at pad slots are exact
    // zeros regardless of the downstream scaling.
    check("pad-meanpool-exact-zero", 80, |g| {
        let b = g.dim();
        let a_max = g.int_in(2, g.size + 1);
        let d = g.dim();
        let valid = match random_validity(g, b, a_max) {
            Some(v) => v,
            None => return Ok(()),
        };
        let mut tape = Tape::new();
        let slots = tape.input(g.tensor(b * a_max, d));
        let mut mask = Vec::with_capacity(b * a_max * d);
        for &ok in &valid {
            let m = if ok { 1.0 } else { 0.0 };
            mask.extend(std::iter::repeat_n(m, d));
        }
        let masked = tape.hadamard_const(slots, Tensor::from_vec(b * a_max, d, mask));
        let pooled = tape.sum_row_groups(masked, a_max);
        // Downstream per-window 1/agents scaling, as in the encoder.
        let scaled = tape.scale(pooled, 0.25);
        let root = tape.sum_all(scaled);

        let pooled_v = tape.value(masked).clone();
        let grads = tape.backward(root);
        let g_slots = grads.expect(slots);
        for (slot, &ok) in valid.iter().enumerate() {
            if ok {
                continue;
            }
            for k in 0..d {
                if pooled_v.at(slot, k) != 0.0 {
                    return Err(format!(
                        "masked value at pad slot {slot} col {k} = {} — not exactly zero",
                        pooled_v.at(slot, k)
                    ));
                }
                if g_slots.at(slot, k) != 0.0 {
                    return Err(format!(
                        "gradient at pad slot {slot} col {k} = {} — not exactly zero",
                        g_slots.at(slot, k)
                    ));
                }
            }
        }
        Ok(())
    });
}

// ---------------------------------------------------------------------------
// Ragged-batch FD check of the real encoder.
// ---------------------------------------------------------------------------

/// Deterministic window with `neighbors` neighbors; `neighbors == 0`
/// yields a 1-agent window (focal only), the maximally padded case.
fn window(v: f32, neighbors: usize, domain: DomainId) -> TrajWindow {
    let focal: Vec<Point> = (0..T_TOTAL)
        .map(|t| [v * t as f32, 0.1 * (t as f32).sin()])
        .collect();
    let nb: Vec<Vec<Point>> = (0..neighbors)
        .map(|k| {
            (0..T_OBS)
                .map(|t| {
                    [
                        0.5 + 0.8 * v * t as f32,
                        0.4 * (k + 1) as f32 - 0.05 * t as f32,
                    ]
                })
                .collect()
        })
        .collect();
    TrajWindow::from_world(&focal, &nb, domain)
}

/// Ragged three-window batch: 2 neighbors, none (1-agent), 3 neighbors.
fn ragged_windows(domain: DomainId) -> Vec<TrajWindow> {
    vec![
        window(0.30, 2, domain),
        window(0.45, 0, domain),
        window(0.25, 3, domain),
    ]
}

#[test]
fn ragged_batch_encode_gradients_match_fd() {
    // Central finite differences through the full encoder on a ragged
    // batch (including a 1-agent window), for both interaction kinds: the
    // gather/reshape/sum-row-groups plumbing and the pad masking must be
    // differentiated exactly.
    let cfg = GradCheckConfig {
        eps: 2e-3,
        tol: 2e-2,
        max_per_param: 4,
    };
    for kind in [InteractionKind::Attention, InteractionKind::MeanPool] {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(31);
        let bcfg = BackboneConfig {
            embed_dim: 4,
            hidden_dim: 6,
            inter_dim: 6,
            ..BackboneConfig::default()
        };
        let enc = SceneEncoder::new(&mut store, &mut rng, "rb", &bcfg, kind);
        // Move relu preactivations off the kink (see model_grads.rs).
        let ids: Vec<ParamId> = store.ids().collect();
        let mut jrng = Rng::seed_from(133);
        for id in ids {
            for v in store.value_mut(id).data_mut() {
                *v += jrng.uniform(-0.08, 0.08);
            }
        }
        let ws = ragged_windows(DomainId::EthUcy);
        grad_check(
            &mut store,
            |s| {
                let batch = WindowBatch::new(ws.iter().collect(), vec![0, 1, 2]);
                let mut tape = Tape::new();
                let scene = enc.encode(s, &mut tape, &batch);
                let sp = tape.sum_all(scene.p_i);
                let sh = tape.sum_all(scene.h_focal);
                let loss = tape.add(sp, sh);
                let v = tape.value(loss).item() as f64;
                let g = tape.backward(loss);
                (v, tape.param_grads(&g))
            },
            &cfg,
        )
        .assert_ok(&format!("ragged encode ({kind:?})"));
    }
}

// ---------------------------------------------------------------------------
// Batched-vs-per-window equivalence, one test per golden configuration.
// ---------------------------------------------------------------------------

/// Per-window rng seed: must match between the batched pass (rng `b`
/// seeded for window `b`) and that window's batch-of-one pass.
fn wseed(i: usize) -> u64 {
    900 + i as u64
}

fn batched_loss<B: Backbone>(
    model: &B,
    store: &ParamStore,
    ws: &[&TrajWindow],
    ids: &[u64],
) -> f32 {
    let batch = WindowBatch::new(ws.to_vec(), ids.to_vec());
    let mut rngs: Vec<Rng> = ids
        .iter()
        .map(|&id| Rng::seed_from(wseed(id as usize)))
        .collect();
    let mut tape = Tape::new();
    let mut ctx = ForwardCtx::train(store, &mut tape, &mut rngs);
    let (_, loss) = model.train_forward(&mut ctx, &batch, None);
    tape.value(loss).item()
}

fn single_loss<B: Backbone>(model: &B, store: &ParamStore, w: &TrajWindow, i: usize) -> f32 {
    let batch = WindowBatch::single(w, i as u64);
    let mut rng = Rng::seed_from(wseed(i));
    let mut tape = Tape::new();
    let mut ctx = ForwardCtx::train(store, &mut tape, std::slice::from_mut(&mut rng));
    let (_, loss) = model.train_forward(&mut ctx, &batch, None);
    tape.value(loss).item()
}

/// `|batched − mean(singles)| ≤ tol·(1 + |mean|)` — float re-association
/// across the batched GEMMs is the only permitted difference.
fn assert_equiv(label: &str, batched: f32, singles: &[f32]) {
    let mean = singles.iter().sum::<f32>() / singles.len() as f32;
    assert!(
        (batched - mean).abs() <= 1e-4 * (1.0 + mean.abs()),
        "{label}: batched loss {batched} vs per-window mean {mean} (singles {singles:?})"
    );
}

fn vanilla_equivalence<B: Backbone>(label: &str, model: &B, store: &ParamStore) {
    let ws = ragged_windows(DomainId::EthUcy);
    let refs: Vec<&TrajWindow> = ws.iter().collect();
    let batched = batched_loss(model, store, &refs, &[0, 1, 2]);
    let singles: Vec<f32> = ws
        .iter()
        .enumerate()
        .map(|(i, w)| single_loss(model, store, w, i))
        .collect();
    assert_equiv(label, batched, &singles);
}

#[test]
fn pecnet_vanilla_batched_loss_matches_per_window_mean() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(11);
    let model = PecNet::new(&mut store, &mut rng, BackboneConfig::default());
    vanilla_equivalence("pecnet-vanilla", &model, &store);
}

#[test]
fn lbebm_vanilla_batched_loss_matches_per_window_mean() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(12);
    let model = Lbebm::new(&mut store, &mut rng, BackboneConfig::default());
    vanilla_equivalence("lbebm-vanilla", &model, &store);
}

#[test]
fn sociallstm_vanilla_batched_loss_matches_per_window_mean() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(13);
    let model = SocialLstm::new(&mut store, &mut rng, BackboneConfig::default());
    vanilla_equivalence("sociallstm-vanilla", &model, &store);
}

#[test]
fn pecnet_causalmotion_risk_reduction_matches_per_window_mean() {
    // CausalMotion's per-environment risk: windows split into
    // domain-homogeneous jobs via `keyed_jobs`, each job's batched loss
    // reduced with weight |job|/n. The job-weighted sum must equal the
    // per-window mean — the identity the V-REx risks rely on.
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(14);
    let model = PecNet::new(&mut store, &mut rng, BackboneConfig::default());
    // Mixed domains, interleaved, ragged — and a cap of 2 to force
    // several jobs per domain group.
    let ws = [
        window(0.30, 2, DomainId::EthUcy),
        window(0.45, 0, DomainId::LCas),
        window(0.25, 3, DomainId::EthUcy),
        window(0.35, 1, DomainId::LCas),
        window(0.40, 0, DomainId::EthUcy),
    ];
    let keys: Vec<DomainId> = ws.iter().map(|w| w.domain).collect();
    let mut weighted = 0.0f32;
    for pos in keyed_jobs(&keys, 2) {
        let job: Vec<&TrajWindow> = pos.iter().map(|&p| &ws[p]).collect();
        let ids: Vec<u64> = pos.iter().map(|&p| p as u64).collect();
        let loss = batched_loss(&model, &store, &job, &ids);
        weighted += loss * pos.len() as f32 / ws.len() as f32;
    }
    let singles: Vec<f32> = ws
        .iter()
        .enumerate()
        .map(|(i, w)| single_loss(&model, &store, w, i))
        .collect();
    assert_equiv("pecnet-causalmotion risk", weighted, &singles);
}

#[test]
fn pecnet_adaptraj_batched_training_loss_matches_per_window_mean() {
    // The full three-step objective on both loss surfaces the schedule
    // optimizes: the expert path at δ and the masked path at δ′
    // (model.rs::fit). Batches must be domain-homogeneous, so all
    // windows share a domain.
    let mut cfg = AdapTrajConfig::smoke();
    cfg.feat_dim = 4;
    cfg.fused_dim = 4;
    let delta = cfg.delta;
    let delta_prime = cfg.delta_prime;
    let model = AdapTraj::new(cfg, &[DomainId::EthUcy, DomainId::LCas], |s, r, extra| {
        PecNet::new(
            s,
            r,
            BackboneConfig {
                embed_dim: 4,
                hidden_dim: 6,
                inter_dim: 6,
                dec_hidden: 6,
                z_dim: 3,
                ..BackboneConfig::default()
            }
            .with_extra(extra),
        )
    });
    let ws = ragged_windows(DomainId::LCas);
    for (label, masked, d) in [
        ("adaptraj expert path", false, delta),
        ("adaptraj masked path", true, delta_prime),
    ] {
        let eval = |subset: Vec<&TrajWindow>, ids: Vec<u64>| -> f32 {
            let batch = WindowBatch::new(subset, ids.clone());
            let mut rngs: Vec<Rng> = ids
                .iter()
                .map(|&id| Rng::seed_from(wseed(id as usize)))
                .collect();
            let mut tape = Tape::new();
            let mut ctx = ForwardCtx::train(model.store(), &mut tape, &mut rngs);
            let loss = model.batch_training_loss(&mut ctx, &batch, masked, d);
            tape.value(loss).item()
        };
        let batched = eval(ws.iter().collect(), vec![0, 1, 2]);
        let singles: Vec<f32> = ws
            .iter()
            .enumerate()
            .map(|(i, w)| eval(vec![w], vec![i as u64]))
            .collect();
        assert_equiv(label, batched, &singles);
    }
}

// ---------------------------------------------------------------------------
// Batched inference bit-identity: the serving contract.
// ---------------------------------------------------------------------------
//
// `Predictor::predict_batch` over a coalesced batch must reproduce the
// per-window `predict` calls *bit for bit* — this is what lets
// `adaptraj-serve` micro-batch concurrent requests into one tape pass
// while honoring the offline-eval bit-identity contract. Unlike the loss
// equivalence above (batch-mean reductions re-associate), predictions are
// per-window rows with no cross-window reduction, so exact equality is
// required, not tolerance.

/// Ragged, mixed-domain windows: 1-agent (maximally padded), and domains
/// interleaved so a coalesced batch is domain-heterogeneous.
fn serving_windows() -> Vec<TrajWindow> {
    vec![
        window(0.30, 2, DomainId::EthUcy),
        window(0.45, 0, DomainId::LCas),
        window(0.25, 3, DomainId::EthUcy),
        window(0.35, 1, DomainId::Sdd),
        window(0.40, 4, DomainId::LCas),
    ]
}

fn assert_predict_batch_bit_identical(label: &str, model: &dyn Predictor) {
    let ws = serving_windows();
    let batch = WindowBatch::new(ws.iter().collect(), (0..ws.len() as u64).collect());
    let mut batch_rngs: Vec<Rng> = (0..ws.len()).map(|i| Rng::seed_from(wseed(i))).collect();
    // Two consecutive batched samples: streams must continue exactly as
    // per-window `predict` continues them.
    let got0 = model.predict_batch(&batch, &mut batch_rngs);
    let got1 = model.predict_batch(&batch, &mut batch_rngs);
    for (i, w) in ws.iter().enumerate() {
        let mut rng = Rng::seed_from(wseed(i));
        let want0 = model.predict(w, &mut rng);
        let want1 = model.predict(w, &mut rng);
        for (s, (got, want)) in [(&got0[i], &want0), (&got1[i], &want1)]
            .into_iter()
            .enumerate()
        {
            assert_eq!(
                got.len(),
                want.len(),
                "{label}: window {i} sample {s} length"
            );
            for (t, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert!(
                    g[0].to_bits() == w[0].to_bits() && g[1].to_bits() == w[1].to_bits(),
                    "{label}: window {i} sample {s} step {t}: batched {g:?} != single {w:?}"
                );
            }
        }
    }
}

#[test]
fn predict_batch_bit_identical_vanilla_pecnet() {
    let model = Vanilla::new(TrainerConfig::smoke(), |s, r| {
        PecNet::new(s, r, BackboneConfig::default())
    });
    assert_predict_batch_bit_identical("pecnet-vanilla", &model);
}

#[test]
fn predict_batch_bit_identical_vanilla_lbebm() {
    let model = Vanilla::new(TrainerConfig::smoke(), |s, r| {
        Lbebm::new(s, r, BackboneConfig::default())
    });
    assert_predict_batch_bit_identical("lbebm-vanilla", &model);
}

#[test]
fn predict_batch_bit_identical_vanilla_sociallstm() {
    let model = Vanilla::new(TrainerConfig::smoke(), |s, r| {
        SocialLstm::new(s, r, BackboneConfig::default())
    });
    assert_predict_batch_bit_identical("sociallstm-vanilla", &model);
}

#[test]
fn predict_batch_bit_identical_counter() {
    let model = Counter::new(TrainerConfig::smoke(), |s, r| {
        PecNet::new(s, r, BackboneConfig::default())
    });
    assert_predict_batch_bit_identical("pecnet-counter", &model);
}

#[test]
fn predict_batch_bit_identical_causalmotion() {
    let model = CausalMotion::new(TrainerConfig::smoke(), |s, r| {
        PecNet::new(s, r, BackboneConfig::default())
    });
    assert_predict_batch_bit_identical("pecnet-causalmotion", &model);
}

#[test]
fn predict_batch_bit_identical_adaptraj() {
    let model = AdapTraj::new(
        AdapTrajConfig::smoke(),
        &[DomainId::EthUcy, DomainId::LCas],
        |s, r, extra| PecNet::new(s, r, BackboneConfig::default().with_extra(extra)),
    );
    assert_predict_batch_bit_identical("pecnet-adaptraj", &model);
}
