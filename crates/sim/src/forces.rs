//! Social-force terms (Helbing & Molnár, 1995).
//!
//! Pedestrian acceleration is a sum of: a relaxation toward the desired
//! velocity, exponential repulsion from nearby agents, repulsion from walls,
//! attraction toward the centroid of the agent's group, and a small noise
//! term. Each term is a pure function here so it can be tested in isolation;
//! [`crate::world::World::step`] composes them.

use crate::agent::Agent;
use crate::vec2::Vec2;

/// Parameters of the social-force model. Calibrated per domain by
/// `adaptraj-data` to match the paper's Table I statistics.
#[derive(Debug, Clone)]
pub struct ForceParams {
    /// Relaxation time τ (s) toward the desired velocity.
    pub relaxation_time: f32,
    /// Agent–agent repulsion strength A (m/s²).
    pub repulsion_strength: f32,
    /// Agent–agent repulsion range B (m).
    pub repulsion_range: f32,
    /// Interaction cutoff (m); pairs farther apart exert no force.
    pub interaction_radius: f32,
    /// Wall repulsion strength (m/s²).
    pub wall_strength: f32,
    /// Wall repulsion range (m).
    pub wall_range: f32,
    /// Group cohesion gain (1/s²): pull toward the group centroid when more
    /// than `group_slack` away.
    pub group_cohesion: f32,
    /// Distance (m) a group member may stray before cohesion engages.
    pub group_slack: f32,
    /// Standard deviation of isotropic acceleration noise (m/s²).
    pub noise_std: f32,
    /// Anisotropy λ ∈ [0,1]: pedestrians react more to what is in front of
    /// them. 1 = isotropic.
    pub anisotropy: f32,
}

impl Default for ForceParams {
    fn default() -> Self {
        Self {
            relaxation_time: 0.5,
            repulsion_strength: 6.0,
            repulsion_range: 0.4,
            interaction_radius: 4.0,
            wall_strength: 3.0,
            wall_range: 0.3,
            group_cohesion: 0.8,
            group_slack: 1.0,
            noise_std: 0.05,
            anisotropy: 0.4,
        }
    }
}

/// Relaxation toward the desired velocity: `(v_des · ê − v) / τ`.
pub fn goal_force(agent: &Agent, desired_dir: Vec2, params: &ForceParams) -> Vec2 {
    let desired_vel = desired_dir.normalized() * agent.desired_speed;
    (desired_vel - agent.vel) / params.relaxation_time
}

/// Exponential repulsion exerted on `a` by `b`:
/// `A · exp((r_ab − d) / B) · n̂`, scaled by the anisotropy factor when `b`
/// is behind `a`'s heading.
pub fn agent_repulsion(a: &Agent, b: &Agent, params: &ForceParams) -> Vec2 {
    let diff = a.pos - b.pos;
    let d = diff.norm();
    if d < 1e-6 || d > params.interaction_radius {
        return Vec2::ZERO;
    }
    let n = diff / d;
    let r_ab = a.radius + b.radius;
    let magnitude = params.repulsion_strength * ((r_ab - d) / params.repulsion_range).exp();

    // Anisotropy: weight by how much b lies in front of a's motion.
    let heading = a.vel.normalized();
    let w = if heading == Vec2::ZERO {
        1.0
    } else {
        let cos = heading.dot(-n); // +1 when b is straight ahead
        params.anisotropy + (1.0 - params.anisotropy) * (1.0 + cos) / 2.0
    };
    n * (magnitude * w)
}

/// An axis-aligned or free line-segment wall.
#[derive(Debug, Clone, Copy)]
pub struct Wall {
    pub a: Vec2,
    pub b: Vec2,
}

impl Wall {
    pub fn new(a: Vec2, b: Vec2) -> Self {
        Self { a, b }
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Vec2) -> Vec2 {
        let ab = self.b - self.a;
        let len_sq = ab.norm_sq();
        if len_sq < 1e-12 {
            return self.a;
        }
        let t = ((p - self.a).dot(ab) / len_sq).clamp(0.0, 1.0);
        self.a + ab * t
    }
}

/// Exponential repulsion from the nearest point of a wall.
pub fn wall_force(agent: &Agent, wall: &Wall, params: &ForceParams) -> Vec2 {
    let cp = wall.closest_point(agent.pos);
    let diff = agent.pos - cp;
    let d = diff.norm();
    if d < 1e-6 || d > params.interaction_radius {
        return Vec2::ZERO;
    }
    let n = diff / d;
    n * (params.wall_strength * ((agent.radius - d) / params.wall_range).exp())
}

/// A circular static obstacle (pillar, kiosk, tree planter).
#[derive(Debug, Clone, Copy)]
pub struct Obstacle {
    pub center: Vec2,
    pub radius: f32,
}

/// Exponential repulsion from a circular obstacle's surface.
pub fn obstacle_force(agent: &Agent, obstacle: &Obstacle, params: &ForceParams) -> Vec2 {
    let diff = agent.pos - obstacle.center;
    let d = diff.norm();
    if d < 1e-6 || d > params.interaction_radius + obstacle.radius {
        return Vec2::ZERO;
    }
    let n = diff / d;
    let surface_gap = d - obstacle.radius;
    n * (params.wall_strength * ((agent.radius - surface_gap) / params.wall_range).exp())
}

/// Spring-like pull toward the group centroid once beyond the slack
/// distance.
pub fn group_force(agent: &Agent, centroid: Vec2, params: &ForceParams) -> Vec2 {
    let diff = centroid - agent.pos;
    let d = diff.norm();
    if d <= params.group_slack {
        return Vec2::ZERO;
    }
    diff.normalized() * (params.group_cohesion * (d - params.group_slack))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walker_at(x: f32, y: f32) -> Agent {
        Agent::walker(Vec2::new(x, y), Vec2::new(100.0, 0.0), 1.3)
    }

    #[test]
    fn goal_force_accelerates_toward_goal() {
        let a = walker_at(0.0, 0.0);
        let p = ForceParams::default();
        let f = goal_force(&a, Vec2::new(1.0, 0.0), &p);
        assert!(f.x > 0.0);
        assert!(f.y.abs() < 1e-6);
        // Magnitude = desired_speed / tau when at rest.
        assert!((f.x - a.desired_speed / p.relaxation_time).abs() < 1e-5);
    }

    #[test]
    fn goal_force_damps_excess_velocity() {
        let mut a = walker_at(0.0, 0.0);
        a.vel = Vec2::new(5.0, 0.0); // much faster than desired
        let f = goal_force(&a, Vec2::new(1.0, 0.0), &ForceParams::default());
        assert!(f.x < 0.0, "should brake");
    }

    #[test]
    fn repulsion_pushes_apart_and_decays() {
        let p = ForceParams::default();
        let a = walker_at(0.0, 0.0);
        let near = walker_at(0.5, 0.0);
        let far = walker_at(2.5, 0.0);
        let f_near = agent_repulsion(&a, &near, &p);
        let f_far = agent_repulsion(&a, &far, &p);
        assert!(f_near.x < 0.0, "pushed away from neighbor on the right");
        assert!(
            f_near.norm() > f_far.norm(),
            "repulsion decays with distance"
        );
    }

    #[test]
    fn repulsion_zero_beyond_cutoff() {
        let p = ForceParams::default();
        let a = walker_at(0.0, 0.0);
        let b = walker_at(p.interaction_radius + 1.0, 0.0);
        assert_eq!(agent_repulsion(&a, &b, &p), Vec2::ZERO);
    }

    #[test]
    fn repulsion_is_anisotropic() {
        let mut a = walker_at(0.0, 0.0);
        a.vel = Vec2::new(1.0, 0.0); // heading +x
        let ahead = walker_at(1.0, 0.0);
        let behind = walker_at(-1.0, 0.0);
        let p = ForceParams::default();
        let f_ahead = agent_repulsion(&a, &ahead, &p);
        let f_behind = agent_repulsion(&a, &behind, &p);
        assert!(
            f_ahead.norm() > f_behind.norm(),
            "agents ahead matter more: {} vs {}",
            f_ahead.norm(),
            f_behind.norm()
        );
    }

    #[test]
    fn wall_closest_point_clamps_to_segment() {
        let w = Wall::new(Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0));
        assert_eq!(w.closest_point(Vec2::new(5.0, 3.0)), Vec2::new(5.0, 0.0));
        assert_eq!(w.closest_point(Vec2::new(-5.0, 3.0)), Vec2::new(0.0, 0.0));
        assert_eq!(w.closest_point(Vec2::new(15.0, -2.0)), Vec2::new(10.0, 0.0));
    }

    #[test]
    fn wall_force_pushes_away() {
        let w = Wall::new(Vec2::new(-10.0, 0.0), Vec2::new(10.0, 0.0));
        let a = walker_at(0.0, 0.2);
        let f = wall_force(&a, &w, &ForceParams::default());
        assert!(f.y > 0.0, "pushed up away from wall below");
        assert!(f.x.abs() < 1e-6);
    }

    #[test]
    fn obstacle_force_pushes_radially_outward() {
        let p = ForceParams::default();
        let ob = Obstacle {
            center: Vec2::new(0.0, 0.0),
            radius: 1.0,
        };
        let a = walker_at(1.3, 0.0); // 0.3 m from the surface
        let f = obstacle_force(&a, &ob, &p);
        assert!(f.x > 0.0, "pushed away from the pillar");
        assert!(f.y.abs() < 1e-6);
        // Decays with distance from the surface.
        let far = walker_at(3.0, 0.0);
        assert!(obstacle_force(&far, &ob, &p).norm() < f.norm());
    }

    #[test]
    fn obstacle_force_zero_beyond_cutoff() {
        let p = ForceParams::default();
        let ob = Obstacle {
            center: Vec2::new(0.0, 0.0),
            radius: 0.5,
        };
        let a = walker_at(p.interaction_radius + 1.0, 0.0);
        assert_eq!(obstacle_force(&a, &ob, &p), Vec2::ZERO);
    }

    #[test]
    fn group_force_engages_beyond_slack() {
        let p = ForceParams::default();
        let a = walker_at(0.0, 0.0);
        let near_centroid = Vec2::new(0.5, 0.0);
        let far_centroid = Vec2::new(5.0, 0.0);
        assert_eq!(group_force(&a, near_centroid, &p), Vec2::ZERO);
        let f = group_force(&a, far_centroid, &p);
        assert!(f.x > 0.0, "pulled toward distant centroid");
    }
}
