//! Frame-by-frame capture of simulated scenes.

use crate::agent::AgentId;
use crate::vec2::Vec2;
use crate::world::World;

/// Positions of all agents over time. `frames[t][agent]` is `Some(pos)`
/// while the agent is active (present in the scene) at frame `t`.
#[derive(Debug, Clone)]
pub struct Recording {
    dt: f32,
    frames: Vec<Vec<Option<Vec2>>>,
    num_agents: usize,
}

impl Recording {
    pub fn new(dt: f32) -> Self {
        Self {
            dt,
            frames: Vec::new(),
            num_agents: 0,
        }
    }

    /// Simulation time step between frames (s).
    pub fn dt(&self) -> f32 {
        self.dt
    }

    /// Appends the current world state as a frame.
    pub fn capture(&mut self, world: &World) {
        self.num_agents = self.num_agents.max(world.agents.len());
        self.frames.push(
            world
                .agents
                .iter()
                .map(|a| a.active.then_some(a.pos))
                .collect(),
        );
    }

    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    pub fn num_agents(&self) -> usize {
        self.num_agents
    }

    /// Position of `agent` at `frame`, if present.
    pub fn position(&self, frame: usize, agent: AgentId) -> Option<Vec2> {
        self.frames.get(frame)?.get(agent).copied().flatten()
    }

    /// Ids of agents present at `frame`.
    pub fn active_at(&self, frame: usize) -> Vec<AgentId> {
        match self.frames.get(frame) {
            Some(f) => f
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.map(|_| i))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The contiguous presence of one agent: `(first_frame, positions)`.
    /// Returns `None` if the agent never appears.
    pub fn trajectory_of(&self, agent: AgentId) -> Option<(usize, Vec<Vec2>)> {
        let first = (0..self.num_frames()).find(|&t| self.position(t, agent).is_some())?;
        let mut pts = Vec::new();
        for t in first..self.num_frames() {
            match self.position(t, agent) {
                Some(p) => pts.push(p),
                None => break,
            }
        }
        Some((first, pts))
    }

    /// Mean number of active agents per frame.
    pub fn mean_density(&self) -> f32 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .frames
            .iter()
            .map(|f| f.iter().filter(|p| p.is_some()).count())
            .sum();
        total as f32 / self.frames.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Agent;
    use crate::forces::ForceParams;

    fn recorded_world() -> Recording {
        let p = ForceParams {
            noise_std: 0.0,
            ..Default::default()
        };
        let mut w = World::new(p, 0.1, 0);
        w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(2.0, 0.0), 1.3));
        w.spawn(Agent::stationary(Vec2::new(5.0, 5.0)));
        w.run_record(80)
    }

    #[test]
    fn frames_and_agents_counted() {
        let rec = recorded_world();
        assert_eq!(rec.num_frames(), 81);
        assert_eq!(rec.num_agents(), 2);
    }

    #[test]
    fn walker_disappears_after_goal() {
        let rec = recorded_world();
        assert!(rec.position(0, 0).is_some());
        assert!(
            rec.position(80, 0).is_none(),
            "walker should have exited the scene"
        );
        // Stationary agent present throughout.
        assert!(rec.position(80, 1).is_some());
    }

    #[test]
    fn trajectory_extraction_is_contiguous() {
        let rec = recorded_world();
        let (start, pts) = rec.trajectory_of(0).expect("walker trajectory");
        assert_eq!(start, 0);
        assert!(pts.len() < rec.num_frames(), "exited early");
        assert!(pts.len() > 5);
        // Monotone progress toward the goal on x.
        assert!(pts.last().unwrap().x > pts[0].x);
    }

    #[test]
    fn active_at_lists_present_agents() {
        let rec = recorded_world();
        assert_eq!(rec.active_at(0), vec![0, 1]);
        assert_eq!(rec.active_at(80), vec![1]);
        assert!(rec.active_at(10_000).is_empty());
    }

    #[test]
    fn mean_density_between_one_and_two() {
        let rec = recorded_world();
        let d = rec.mean_density();
        assert!(d > 1.0 && d < 2.0, "density {d}");
    }

    #[test]
    fn missing_agent_has_no_trajectory() {
        let rec = recorded_world();
        assert!(rec.trajectory_of(99).is_none());
    }
}
