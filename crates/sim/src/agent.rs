//! Simulated pedestrian agents.

use crate::vec2::Vec2;

/// Identifier of an agent within a [`crate::world::World`]. Stable for the
/// lifetime of a simulation (agents are never removed, only deactivated).
pub type AgentId = usize;

/// Behavioral role, used by the scenario generators to produce the
/// interaction motifs the paper's datasets exhibit (leader–follower,
/// group formations, stationary crowds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// Ordinary pedestrian heading to its goal.
    #[default]
    Walker,
    /// Walks to its goal; others may follow it.
    Leader,
    /// Follows the agent identified by the payload instead of a fixed goal.
    Follower(AgentId),
    /// Stands still (stationary crowd groups, as in the SYI dataset).
    Stationary,
}

/// One pedestrian.
#[derive(Debug, Clone)]
pub struct Agent {
    pub pos: Vec2,
    pub vel: Vec2,
    /// Where the agent wants to go (ignored for `Follower`/`Stationary`).
    pub goal: Vec2,
    /// Preferred walking speed (m/s).
    pub desired_speed: f32,
    /// Hard maximum speed (m/s); the social-force update clamps to this.
    pub max_speed: f32,
    /// Body radius (m) used by the repulsion force.
    pub radius: f32,
    /// Group membership for cohesion forces; agents sharing a group id walk
    /// together.
    pub group: Option<usize>,
    pub role: Role,
    /// Step at which the agent entered the scene.
    pub spawn_step: usize,
    /// Steps to wait (after spawning) before entering the scene. While
    /// waiting the agent is inactive and invisible to others; staggered
    /// entries produce the density fluctuations real recordings show.
    pub entry_delay: usize,
    /// Set false once the agent has reached its goal and left the scene.
    pub active: bool,
}

impl Agent {
    /// A standard walker with sensible defaults.
    pub fn walker(pos: Vec2, goal: Vec2, desired_speed: f32) -> Self {
        Self {
            pos,
            vel: Vec2::ZERO,
            goal,
            desired_speed,
            max_speed: desired_speed * 1.8 + 0.2,
            radius: 0.3,
            group: None,
            role: Role::Walker,
            spawn_step: 0,
            entry_delay: 0,
            active: true,
        }
    }

    /// A stationary agent (e.g. part of a standing crowd group).
    pub fn stationary(pos: Vec2) -> Self {
        Self {
            pos,
            vel: Vec2::ZERO,
            goal: pos,
            desired_speed: 0.0,
            max_speed: 0.3,
            radius: 0.3,
            group: None,
            role: Role::Stationary,
            spawn_step: 0,
            entry_delay: 0,
            active: true,
        }
    }

    /// True once the agent is within `tol` of its goal.
    pub fn reached_goal(&self, tol: f32) -> bool {
        matches!(self.role, Role::Walker | Role::Leader) && self.pos.distance(self.goal) < tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_defaults() {
        let a = Agent::walker(Vec2::new(0.0, 0.0), Vec2::new(10.0, 0.0), 1.2);
        assert!(a.active);
        assert_eq!(a.role, Role::Walker);
        assert!(a.max_speed > a.desired_speed);
        assert!(!a.reached_goal(0.5));
    }

    #[test]
    fn stationary_has_zero_desire() {
        let a = Agent::stationary(Vec2::new(1.0, 1.0));
        assert_eq!(a.desired_speed, 0.0);
        // Stationary agents never "reach" a goal — they never leave.
        assert!(!a.reached_goal(10.0));
    }

    #[test]
    fn goal_reaching_tolerance() {
        let mut a = Agent::walker(Vec2::ZERO, Vec2::new(0.2, 0.0), 1.0);
        assert!(a.reached_goal(0.5));
        a.role = Role::Follower(3);
        assert!(!a.reached_goal(0.5), "followers have no own goal");
    }
}
