//! Minimal 2-D vector math for the simulator.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 2-D vector / point in world coordinates (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    pub fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    pub fn dot(self, other: Vec2) -> f32 {
        self.x * other.x + self.y * other.y
    }

    pub fn norm_sq(self) -> f32 {
        self.dot(self)
    }

    pub fn norm(self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in this direction; zero vector stays zero.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n > 1e-9 {
            self / n
        } else {
            Vec2::ZERO
        }
    }

    pub fn distance(self, other: Vec2) -> f32 {
        (self - other).norm()
    }

    /// Clamps the magnitude to `max` while preserving direction.
    pub fn clamp_norm(self, max: f32) -> Vec2 {
        let n = self.norm();
        if n > max && n > 0.0 {
            self * (max / n)
        } else {
            self
        }
    }

    /// Perpendicular vector (rotated 90° counter-clockwise).
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f32) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Div<f32> for Vec2 {
    type Output = Vec2;
    fn div(self, s: f32) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn norms_and_normalize() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        let u = v.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-6);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn clamp_norm_caps_long_vectors_only() {
        let v = Vec2::new(6.0, 8.0);
        assert!((v.clamp_norm(5.0).norm() - 5.0).abs() < 1e-5);
        let short = Vec2::new(0.3, 0.4);
        assert_eq!(short.clamp_norm(5.0), short);
    }

    #[test]
    fn perp_is_orthogonal() {
        let v = Vec2::new(2.0, 7.0);
        assert_eq!(v.dot(v.perp()), 0.0);
    }

    #[test]
    fn distance_symmetric() {
        let a = Vec2::new(1.0, 1.0);
        let b = Vec2::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
    }
}
