//! Scene construction: spawners producing the interaction motifs that the
//! paper's datasets exhibit (bidirectional flows, crossing streams,
//! leader–follower chains, walking groups, stationary crowds).
//!
//! A [`ScenarioConfig`] is a *distribution over scenes*; `adaptraj-data`
//! holds one calibrated config per paper domain and samples many scenes
//! from it to synthesize a dataset.

use crate::agent::{Agent, Role};
use crate::forces::{ForceParams, Wall};
use crate::vec2::Vec2;
use crate::world::World;
use adaptraj_tensor::rng::Rng;

/// Dominant travel axis for a scene, controlling the velocity anisotropy
/// seen in Table I of the paper (e.g. SYI's strong vertical flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowAxis {
    /// Most agents travel along x.
    Horizontal,
    /// Most agents travel along y.
    Vertical,
    /// Directions drawn uniformly.
    Mixed,
}

/// Parameters of a scene distribution.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Scene half-extent (m): agents spawn within `[-extent, extent]²`.
    pub extent: f32,
    /// Independent walkers.
    pub num_walkers: usize,
    /// Walking groups (cohesive clusters heading to a shared goal).
    pub num_groups: usize,
    pub group_size: usize,
    /// Leader–follower chains.
    pub num_chains: usize,
    pub chain_len: usize,
    /// Stationary crowd clusters (as in SYI).
    pub num_stationary_groups: usize,
    pub stationary_group_size: usize,
    /// Desired-speed distribution (m/s).
    pub speed_mean: f32,
    pub speed_std: f32,
    pub flow_axis: FlowAxis,
    /// Probability that a walker follows the dominant axis (vs the cross
    /// axis). Ignored for `Mixed`.
    pub flow_bias: f32,
    /// If set, adds two walls forming a corridor of this half-width along
    /// the dominant axis (indoor scenes like L-CAS).
    pub corridor_half_width: Option<f32>,
    /// Maximum entry delay (in simulator steps) applied uniformly at
    /// random to independent walkers; 0 = everyone starts at once.
    /// Staggered entries widen the per-window crowd-density spread.
    pub entry_stagger: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            extent: 10.0,
            num_walkers: 6,
            num_groups: 1,
            group_size: 3,
            num_chains: 0,
            chain_len: 3,
            num_stationary_groups: 0,
            stationary_group_size: 4,
            speed_mean: 1.2,
            speed_std: 0.2,
            flow_axis: FlowAxis::Horizontal,
            flow_bias: 0.8,
            corridor_half_width: None,
            entry_stagger: 0,
        }
    }
}

impl ScenarioConfig {
    /// Expected number of agents a sampled scene contains.
    pub fn expected_agents(&self) -> usize {
        self.num_walkers
            + self.num_groups * self.group_size
            + self.num_chains * self.chain_len
            + self.num_stationary_groups * self.stationary_group_size
    }
}

/// Draws a (start, goal) pair aligned with the configured flow.
fn sample_route(cfg: &ScenarioConfig, rng: &mut Rng) -> (Vec2, Vec2) {
    let e = cfg.extent;
    let along_main = match cfg.flow_axis {
        FlowAxis::Mixed => rng.chance(0.5),
        _ => rng.chance(cfg.flow_bias),
    };
    let main_is_x = match cfg.flow_axis {
        FlowAxis::Horizontal => along_main,
        FlowAxis::Vertical => !along_main,
        FlowAxis::Mixed => rng.chance(0.5),
    };
    // Travel from one side to the other along the chosen axis, with the
    // start position spread over the whole travel span so co-presence
    // windows vary.
    let dir = if rng.chance(0.5) { 1.0 } else { -1.0 };
    let travel_start = rng.uniform(-e, e * 0.2) * dir;
    let lateral = rng.uniform(-e * 0.8, e * 0.8);
    let lateral_goal = lateral + rng.uniform(-e * 0.2, e * 0.2);
    if main_is_x {
        (
            Vec2::new(travel_start, lateral),
            Vec2::new(e * dir, lateral_goal),
        )
    } else {
        (
            Vec2::new(lateral, travel_start),
            Vec2::new(lateral_goal, e * dir),
        )
    }
}

fn sample_speed(cfg: &ScenarioConfig, rng: &mut Rng) -> f32 {
    rng.normal(cfg.speed_mean, cfg.speed_std).max(0.1)
}

/// Builds one randomized scene from the distribution.
pub fn build_world(cfg: &ScenarioConfig, params: &ForceParams, dt: f32, seed: u64) -> World {
    let mut world = World::new(params.clone(), dt, seed);
    let mut rng = Rng::seed_from(seed ^ 0xA5A5_5A5A_DEAD_BEEF);

    if let Some(hw) = cfg.corridor_half_width {
        let e = cfg.extent * 1.5;
        let (a1, b1, a2, b2) = match cfg.flow_axis {
            FlowAxis::Vertical => (
                Vec2::new(-hw, -e),
                Vec2::new(-hw, e),
                Vec2::new(hw, -e),
                Vec2::new(hw, e),
            ),
            _ => (
                Vec2::new(-e, -hw),
                Vec2::new(e, -hw),
                Vec2::new(-e, hw),
                Vec2::new(e, hw),
            ),
        };
        world.add_wall(Wall::new(a1, b1));
        world.add_wall(Wall::new(a2, b2));
    }

    // Independent walkers.
    for _ in 0..cfg.num_walkers {
        let (start, goal) = sample_route(cfg, &mut rng);
        let speed = sample_speed(cfg, &mut rng);
        let mut a = Agent::walker(start, goal, speed);
        if cfg.entry_stagger > 0 {
            a.entry_delay = rng.below(cfg.entry_stagger + 1);
        }
        world.spawn(a);
    }

    // Cohesive walking groups: shared route, jittered offsets.
    for g in 0..cfg.num_groups {
        let (start, goal) = sample_route(cfg, &mut rng);
        let speed = sample_speed(cfg, &mut rng);
        for _ in 0..cfg.group_size {
            let jitter = Vec2::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
            let mut a = Agent::walker(start + jitter, goal + jitter, speed);
            a.group = Some(g);
            world.spawn(a);
        }
    }

    // Leader–follower chains.
    for _ in 0..cfg.num_chains {
        let (start, goal) = sample_route(cfg, &mut rng);
        let speed = sample_speed(cfg, &mut rng);
        let mut leader = Agent::walker(start, goal, speed);
        leader.role = Role::Leader;
        let mut prev = world.spawn(leader);
        let back = (goal - start).normalized() * -1.2;
        for k in 1..cfg.chain_len {
            let offset =
                back * k as f32 + Vec2::new(rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3));
            let mut f = Agent::walker(start + offset, goal, speed * 1.05);
            f.role = Role::Follower(prev);
            prev = world.spawn(f);
        }
    }

    // Stationary crowd clusters.
    for _ in 0..cfg.num_stationary_groups {
        let center = Vec2::new(
            rng.uniform(-cfg.extent * 0.6, cfg.extent * 0.6),
            rng.uniform(-cfg.extent * 0.6, cfg.extent * 0.6),
        );
        for _ in 0..cfg.stationary_group_size {
            let off = Vec2::new(rng.uniform(-1.2, 1.2), rng.uniform(-1.2, 1.2));
            world.spawn(Agent::stationary(center + off));
        }
    }

    world
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_agents_adds_up() {
        let cfg = ScenarioConfig {
            num_walkers: 4,
            num_groups: 2,
            group_size: 3,
            num_chains: 1,
            chain_len: 4,
            num_stationary_groups: 1,
            stationary_group_size: 5,
            ..Default::default()
        };
        assert_eq!(cfg.expected_agents(), 4 + 6 + 4 + 5);
        let w = build_world(&cfg, &ForceParams::default(), 0.1, 0);
        assert_eq!(w.agents.len(), cfg.expected_agents());
    }

    #[test]
    fn scene_is_seed_deterministic() {
        let cfg = ScenarioConfig::default();
        let p = ForceParams::default();
        let w1 = build_world(&cfg, &p, 0.1, 9);
        let w2 = build_world(&cfg, &p, 0.1, 9);
        for (a, b) in w1.agents.iter().zip(&w2.agents) {
            assert_eq!(a.pos, b.pos);
            assert_eq!(a.goal, b.goal);
        }
    }

    #[test]
    fn horizontal_flow_dominates_x_velocity() {
        let cfg = ScenarioConfig {
            flow_axis: FlowAxis::Horizontal,
            flow_bias: 1.0,
            num_groups: 0,
            num_walkers: 12,
            ..Default::default()
        };
        let p = ForceParams {
            noise_std: 0.0,
            ..Default::default()
        };
        let mut w = build_world(&cfg, &p, 0.1, 3);
        for _ in 0..30 {
            w.step();
        }
        let (mut vx, mut vy) = (0.0f32, 0.0f32);
        for a in w.agents.iter().filter(|a| a.active) {
            vx += a.vel.x.abs();
            vy += a.vel.y.abs();
        }
        assert!(vx > vy * 2.0, "flow not horizontal: |vx|={vx} |vy|={vy}");
    }

    #[test]
    fn vertical_flow_dominates_y_velocity() {
        let cfg = ScenarioConfig {
            flow_axis: FlowAxis::Vertical,
            flow_bias: 1.0,
            num_groups: 0,
            num_walkers: 12,
            ..Default::default()
        };
        let p = ForceParams {
            noise_std: 0.0,
            ..Default::default()
        };
        let mut w = build_world(&cfg, &p, 0.1, 4);
        for _ in 0..30 {
            w.step();
        }
        let (mut vx, mut vy) = (0.0f32, 0.0f32);
        for a in w.agents.iter().filter(|a| a.active) {
            vx += a.vel.x.abs();
            vy += a.vel.y.abs();
        }
        assert!(vy > vx * 2.0, "flow not vertical: |vx|={vx} |vy|={vy}");
    }

    #[test]
    fn stationary_groups_remain_in_scene() {
        let cfg = ScenarioConfig {
            num_walkers: 0,
            num_groups: 0,
            num_stationary_groups: 2,
            stationary_group_size: 4,
            ..Default::default()
        };
        let mut w = build_world(&cfg, &ForceParams::default(), 0.1, 5);
        for _ in 0..100 {
            w.step();
        }
        assert_eq!(w.active_count(), 8);
    }

    #[test]
    fn entry_stagger_delays_some_walkers() {
        let cfg = ScenarioConfig {
            num_walkers: 20,
            num_groups: 0,
            entry_stagger: 50,
            ..Default::default()
        };
        let mut w = build_world(&cfg, &ForceParams::default(), 0.1, 11);
        let inactive = w.agents.iter().filter(|a| !a.active).count();
        assert!(inactive > 0, "some walkers should start delayed");
        // Delays vary rather than being a single constant.
        let mut delays: Vec<usize> = w.agents.iter().map(|a| a.entry_delay).collect();
        delays.sort_unstable();
        delays.dedup();
        assert!(delays.len() > 3, "delays should be spread out: {delays:?}");
        // Everyone has entered once the stagger window has passed.
        for _ in 0..=50 {
            w.step();
        }
        assert!(
            w.agents.iter().all(|a| a.active || a.entry_delay == 0),
            "all delayed agents should have entered"
        );
    }

    #[test]
    fn corridor_walls_present() {
        let cfg = ScenarioConfig {
            corridor_half_width: Some(3.0),
            ..Default::default()
        };
        let w = build_world(&cfg, &ForceParams::default(), 0.1, 6);
        assert_eq!(w.walls.len(), 2);
    }
}
