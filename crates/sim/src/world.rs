//! Simulation world and time stepping.

use crate::agent::{Agent, AgentId, Role};
use crate::forces::{
    agent_repulsion, goal_force, group_force, obstacle_force, wall_force, ForceParams, Obstacle,
    Wall,
};
use crate::recording::Recording;
use crate::vec2::Vec2;
use adaptraj_tensor::rng::Rng;
use std::sync::OnceLock;
use std::time::Instant;

/// Cached global-metrics handles for the hot stepping loop.
struct SimMetrics {
    steps: adaptraj_obs::CounterHandle,
    steps_per_sec: adaptraj_obs::HistogramHandle,
    active_agents: adaptraj_obs::HistogramHandle,
}

fn sim_metrics() -> &'static SimMetrics {
    static METRICS: OnceLock<SimMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = adaptraj_obs::global();
        SimMetrics {
            steps: reg.counter("sim.steps"),
            steps_per_sec: reg.histogram("sim.steps_per_sec"),
            active_agents: reg.histogram("sim.active_agents"),
        }
    })
}

/// Distance at which a walker is considered to have reached its goal and
/// leaves the scene.
const GOAL_TOLERANCE: f32 = 0.6;

/// Preferred following distance for `Role::Follower` agents.
const FOLLOW_DISTANCE: f32 = 1.0;

/// The complete simulation state: agents, static geometry, force
/// parameters, and the integration clock.
#[derive(Debug)]
pub struct World {
    pub agents: Vec<Agent>,
    pub walls: Vec<Wall>,
    pub obstacles: Vec<Obstacle>,
    pub params: ForceParams,
    /// Integration step (s). The paper's preprocessing standardizes
    /// trajectories to 0.4 s; the simulator typically runs at a finer step
    /// and `adaptraj-data` resamples.
    pub dt: f32,
    step_count: usize,
    rng: Rng,
}

impl World {
    pub fn new(params: ForceParams, dt: f32, seed: u64) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        Self {
            agents: Vec::new(),
            walls: Vec::new(),
            obstacles: Vec::new(),
            params,
            dt,
            step_count: 0,
            rng: Rng::seed_from(seed),
        }
    }

    /// Adds an agent, stamping its spawn step; returns its id. Agents
    /// with a nonzero `entry_delay` start inactive and enter the scene
    /// once the delay elapses.
    pub fn spawn(&mut self, mut agent: Agent) -> AgentId {
        agent.spawn_step = self.step_count;
        if agent.entry_delay > 0 {
            agent.active = false;
        }
        self.agents.push(agent);
        self.agents.len() - 1
    }

    pub fn add_wall(&mut self, wall: Wall) {
        self.walls.push(wall);
    }

    pub fn add_obstacle(&mut self, obstacle: Obstacle) {
        self.obstacles.push(obstacle);
    }

    pub fn step_count(&self) -> usize {
        self.step_count
    }

    pub fn active_count(&self) -> usize {
        self.agents.iter().filter(|a| a.active).count()
    }

    /// Centroid of the active members of `group`.
    fn group_centroid(&self, group: usize) -> Option<Vec2> {
        let mut sum = Vec2::ZERO;
        let mut n = 0;
        for a in &self.agents {
            if a.active && a.group == Some(group) {
                sum += a.pos;
                n += 1;
            }
        }
        (n > 1).then(|| sum / n as f32)
    }

    /// The direction an agent currently wants to move in, given its role.
    fn desired_direction(&self, id: AgentId) -> Vec2 {
        let agent = &self.agents[id];
        match agent.role {
            Role::Walker | Role::Leader => (agent.goal - agent.pos).normalized(),
            Role::Stationary => Vec2::ZERO,
            Role::Follower(leader) => {
                let leader_agent = &self.agents[leader];
                if !leader_agent.active {
                    // Leader left: head to the leader's last goal.
                    return (leader_agent.goal - agent.pos).normalized();
                }
                let to_leader = leader_agent.pos - agent.pos;
                if to_leader.norm() <= FOLLOW_DISTANCE {
                    // Close enough — match the leader's heading.
                    leader_agent.vel.normalized()
                } else {
                    to_leader.normalized()
                }
            }
        }
    }

    /// Advances the simulation by one time step (semi-implicit Euler).
    pub fn step(&mut self) {
        // Delayed entries.
        let now = self.step_count;
        for agent in &mut self.agents {
            if !agent.active && agent.entry_delay > 0 && now >= agent.spawn_step + agent.entry_delay
            {
                agent.active = true;
                agent.entry_delay = 0;
            }
        }
        let n = self.agents.len();
        let mut forces = vec![Vec2::ZERO; n];

        #[allow(clippy::needless_range_loop)] // i indexes both agents and forces
        for i in 0..n {
            if !self.agents[i].active {
                continue;
            }
            let desired = self.desired_direction(i);
            let mut f = goal_force(&self.agents[i], desired, &self.params);

            for j in 0..n {
                if i != j && self.agents[j].active {
                    f += agent_repulsion(&self.agents[i], &self.agents[j], &self.params);
                }
            }
            for wall in &self.walls {
                f += wall_force(&self.agents[i], wall, &self.params);
            }
            for obstacle in &self.obstacles {
                f += obstacle_force(&self.agents[i], obstacle, &self.params);
            }
            if let Some(g) = self.agents[i].group {
                if let Some(centroid) = self.group_centroid(g) {
                    f += group_force(&self.agents[i], centroid, &self.params);
                }
            }
            if self.params.noise_std > 0.0 {
                f += Vec2::new(
                    self.rng.normal(0.0, self.params.noise_std),
                    self.rng.normal(0.0, self.params.noise_std),
                );
            }
            forces[i] = f;
        }

        let dt = self.dt;
        for (agent, f) in self.agents.iter_mut().zip(&forces) {
            if !agent.active {
                continue;
            }
            agent.vel = (agent.vel + *f * dt).clamp_norm(agent.max_speed);
            agent.pos += agent.vel * dt;
            debug_assert!(agent.pos.is_finite(), "agent position diverged");
            if agent.reached_goal(GOAL_TOLERANCE) {
                agent.active = false;
            }
        }
        self.step_count += 1;
        sim_metrics().steps.incr();
    }

    /// Runs `steps` steps, recording every agent's position per frame.
    /// Frame 0 is the state *before* the first step.
    pub fn run_record(&mut self, steps: usize) -> Recording {
        let t0 = Instant::now();
        let mut rec = Recording::new(self.dt);
        rec.capture(self);
        for _ in 0..steps {
            self.step();
            rec.capture(self);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let m = sim_metrics();
        if steps > 0 && elapsed > 0.0 {
            m.steps_per_sec.record(steps as f64 / elapsed);
        }
        m.active_agents.record(self.active_count() as f64);
        rec
    }

    /// Mutable access to the world RNG (for scenario spawners that want to
    /// share the stream).
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_world(seed: u64) -> World {
        let p = ForceParams {
            noise_std: 0.0,
            ..Default::default()
        };
        World::new(p, 0.1, seed)
    }

    #[test]
    fn lone_walker_reaches_goal() {
        let mut w = free_world(0);
        let id = w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(5.0, 0.0), 1.3));
        for _ in 0..200 {
            w.step();
        }
        assert!(!w.agents[id].active, "walker should arrive and deactivate");
        assert!(w.agents[id].pos.distance(Vec2::new(5.0, 0.0)) < 1.0);
    }

    #[test]
    fn walker_approaches_desired_speed() {
        let mut w = free_world(1);
        let id = w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(100.0, 0.0), 1.3));
        for _ in 0..50 {
            w.step();
        }
        let speed = w.agents[id].vel.norm();
        assert!((speed - 1.3).abs() < 0.1, "cruise speed {speed}");
    }

    #[test]
    fn head_on_agents_avoid_collision() {
        let mut w = free_world(2);
        // Two walkers heading straight at each other.
        let a = w.spawn(Agent::walker(
            Vec2::new(0.0, 0.05),
            Vec2::new(10.0, 0.0),
            1.3,
        ));
        let b = w.spawn(Agent::walker(
            Vec2::new(10.0, -0.05),
            Vec2::new(0.0, 0.0),
            1.3,
        ));
        let mut min_dist = f32::MAX;
        for _ in 0..300 {
            w.step();
            if w.agents[a].active && w.agents[b].active {
                min_dist = min_dist.min(w.agents[a].pos.distance(w.agents[b].pos));
            }
        }
        let hard = w.agents[a].radius + w.agents[b].radius;
        assert!(
            min_dist > hard * 0.8,
            "agents interpenetrated: min dist {min_dist} vs body {hard}"
        );
    }

    #[test]
    fn stationary_agents_stay_put() {
        let mut w = free_world(3);
        let id = w.spawn(Agent::stationary(Vec2::new(2.0, 2.0)));
        for _ in 0..100 {
            w.step();
        }
        assert!(w.agents[id].pos.distance(Vec2::new(2.0, 2.0)) < 0.3);
        assert!(w.agents[id].active);
    }

    #[test]
    fn follower_tracks_leader() {
        let mut w = free_world(4);
        let leader = w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(20.0, 0.0), 1.0));
        w.agents[leader].role = Role::Leader;
        let mut f = Agent::walker(Vec2::new(-2.0, 0.3), Vec2::ZERO, 1.2);
        f.role = Role::Follower(leader);
        let follower = w.spawn(f);
        for _ in 0..100 {
            w.step();
        }
        let gap = w.agents[follower].pos.distance(w.agents[leader].pos);
        assert!(gap < 3.0, "follower fell behind: gap {gap}");
        // Follower should be moving in roughly the leader's direction.
        assert!(w.agents[follower].vel.x > 0.0);
    }

    #[test]
    fn group_members_stay_together() {
        let mut w = free_world(5);
        let mut ids = Vec::new();
        for dy in [-1.5f32, 0.0, 1.5] {
            let mut a = Agent::walker(Vec2::new(0.0, dy * 2.0), Vec2::new(15.0, dy * 2.0), 1.2);
            a.group = Some(7);
            ids.push(w.spawn(a));
        }
        for _ in 0..60 {
            w.step();
        }
        // Pairwise spread should be bounded by cohesion.
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let d = w.agents[ids[i]].pos.distance(w.agents[ids[j]].pos);
                assert!(d < 6.0, "group dispersed: {d}");
            }
        }
    }

    #[test]
    fn walls_contain_agents() {
        let mut w = free_world(6);
        w.add_wall(Wall::new(Vec2::new(-100.0, 1.0), Vec2::new(100.0, 1.0)));
        w.add_wall(Wall::new(Vec2::new(-100.0, -1.0), Vec2::new(100.0, -1.0)));
        // Goal deliberately beyond the wall: the corridor should keep y small.
        let id = w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(30.0, 0.0), 1.3));
        for _ in 0..150 {
            w.step();
            assert!(
                w.agents[id].pos.y.abs() < 1.0,
                "agent escaped corridor: y = {}",
                w.agents[id].pos.y
            );
        }
    }

    #[test]
    fn agents_route_around_obstacles() {
        let mut w = free_world(12);
        w.add_obstacle(Obstacle {
            center: Vec2::new(5.0, 0.0),
            radius: 1.0,
        });
        let id = w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(10.0, 0.05), 1.2));
        let mut min_center_dist = f32::MAX;
        for _ in 0..300 {
            w.step();
            min_center_dist = min_center_dist.min(w.agents[id].pos.distance(Vec2::new(5.0, 0.0)));
        }
        assert!(
            min_center_dist > 0.9,
            "agent should skirt the pillar: came within {min_center_dist}"
        );
        assert!(!w.agents[id].active, "agent should still reach the goal");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let p = ForceParams {
                noise_std: 0.2,
                ..Default::default()
            };
            let mut w = World::new(p, 0.1, seed);
            let id = w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(8.0, 3.0), 1.1));
            for _ in 0..100 {
                w.step();
            }
            w.agents[id].pos
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn delayed_agents_enter_late() {
        let mut w = free_world(8);
        let mut a = Agent::walker(Vec2::ZERO, Vec2::new(50.0, 0.0), 1.0);
        a.entry_delay = 10;
        let id = w.spawn(a);
        assert!(!w.agents[id].active, "not yet in the scene");
        for _ in 0..5 {
            w.step();
        }
        assert!(!w.agents[id].active);
        for _ in 0..6 {
            w.step();
        }
        assert!(w.agents[id].active, "entered after the delay");
        // Entered agents move normally.
        let x0 = w.agents[id].pos.x;
        for _ in 0..10 {
            w.step();
        }
        assert!(w.agents[id].pos.x > x0);
    }

    #[test]
    fn delayed_agents_are_absent_from_recordings() {
        let mut w = free_world(9);
        let mut a = Agent::walker(Vec2::ZERO, Vec2::new(50.0, 0.0), 1.0);
        a.entry_delay = 20;
        w.spawn(a);
        let rec = w.run_record(40);
        assert!(rec.position(0, 0).is_none(), "invisible while delayed");
        assert!(rec.position(40, 0).is_some(), "visible after entry");
    }

    #[test]
    fn recording_captures_all_frames() {
        let mut w = free_world(7);
        w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(3.0, 0.0), 1.0));
        let rec = w.run_record(50);
        assert_eq!(rec.num_frames(), 51);
    }

    #[test]
    fn stepping_feeds_the_metrics_registry() {
        let before = adaptraj_obs::global().counter("sim.steps").get();
        let mut w = free_world(10);
        w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(3.0, 0.0), 1.0));
        w.run_record(20);
        let reg = adaptraj_obs::global();
        assert!(reg.counter("sim.steps").get() >= before + 20);
        assert!(reg.histogram("sim.steps_per_sec").snapshot().count >= 1);
        assert!(reg.histogram("sim.active_agents").snapshot().count >= 1);
    }
}
