//! # adaptraj-sim
//!
//! A social-force multi-agent crowd simulator (Helbing & Molnár, 1995),
//! built as the data substrate for the AdapTraj (ICDE 2024) reproduction.
//!
//! The paper evaluates on four recorded pedestrian datasets (ETH&UCY,
//! L-CAS, SYI, SDD) that are unavailable offline. What matters for the
//! paper's *problem* — multi-source domain generalization — is that domains
//! exhibit (a) distinct motion statistics (Table I) and (b) the shared
//! interaction motifs that make "domain-invariant" features learnable:
//! collision avoidance, leader–follower dynamics, group formations, and
//! stationary crowds. This simulator produces both: the force model yields
//! the motifs, and [`scenario::ScenarioConfig`] exposes the knobs
//! (`speed`, `flow axis`, `density`, `corridors`) that `adaptraj-data`
//! calibrates per domain to match Table I.
//!
//! ```
//! use adaptraj_sim::{
//!     forces::ForceParams,
//!     scenario::{build_world, ScenarioConfig},
//! };
//!
//! let cfg = ScenarioConfig::default();
//! let mut world = build_world(&cfg, &ForceParams::default(), 0.1, 42);
//! let recording = world.run_record(100);
//! assert_eq!(recording.num_frames(), 101);
//! ```

pub mod agent;
pub mod forces;
pub mod recording;
pub mod scenario;
pub mod vec2;
pub mod world;

pub use agent::{Agent, AgentId, Role};
pub use forces::{ForceParams, Obstacle, Wall};
pub use recording::Recording;
pub use scenario::{build_world, FlowAxis, ScenarioConfig};
pub use vec2::Vec2;
pub use world::World;
