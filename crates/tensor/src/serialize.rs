//! Checkpointing: saving and loading a [`ParamStore`] to a simple,
//! self-describing binary format.
//!
//! Format (little-endian):
//! ```text
//! magic "ATPS1\n" | u32 param_count |
//!   per param: u32 name_len | name bytes | u32 group | u32 rows | u32 cols |
//!              rows*cols f32 values
//! ```
//! The format stores parameter *names* so a checkpoint can be validated
//! against the model that loads it: loading fails loudly on any mismatch
//! in count, name, group, or shape — silently mis-binding weights is the
//! failure mode this guards against.

//! ```
//! use adaptraj_tensor::serialize::{load_params, save_params};
//! use adaptraj_tensor::{GroupId, ParamStore, Tensor};
//!
//! let mut a = ParamStore::new();
//! a.register("w", Tensor::row(&[1.0, 2.0]), GroupId::DEFAULT);
//! let mut bytes = Vec::new();
//! save_params(&a, &mut bytes).unwrap();
//!
//! let mut b = ParamStore::new();
//! b.register("w", Tensor::row(&[0.0, 0.0]), GroupId::DEFAULT);
//! load_params(&mut b, &mut bytes.as_slice()).unwrap();
//! assert_eq!(b.snapshot(), a.snapshot());
//! ```

use crate::param::{GroupId, ParamStore};
use crate::tensor::Tensor;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 6] = b"ATPS1\n";

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    Io(io::Error),
    /// The file is not an ATPS1 checkpoint.
    BadMagic,
    /// Parameter metadata does not match the receiving store.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not an ATPS1 checkpoint"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Serializes every parameter of `store` to `writer`.
pub fn save_params(store: &ParamStore, writer: &mut impl Write) -> Result<(), CheckpointError> {
    writer.write_all(MAGIC)?;
    write_u32(writer, store.len() as u32)?;
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        write_u32(writer, name.len() as u32)?;
        writer.write_all(name)?;
        write_u32(writer, store.group(id).0)?;
        let t = store.value(id);
        write_u32(writer, t.rows() as u32)?;
        write_u32(writer, t.cols() as u32)?;
        for &v in t.data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Loads a checkpoint into an existing store built by the *same* model
/// constructor. Every parameter's name, group, and shape must match.
pub fn load_params(store: &mut ParamStore, reader: &mut impl Read) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 6];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let count = read_u32(reader)? as usize;
    if count != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {count} params, model has {}",
            store.len()
        )));
    }
    for id in store.ids().collect::<Vec<_>>() {
        let name_len = read_u32(reader)? as usize;
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8_lossy(&name).into_owned();
        if name != store.name(id) {
            return Err(CheckpointError::Mismatch(format!(
                "param name '{}' expected, checkpoint has '{name}'",
                store.name(id)
            )));
        }
        let group = GroupId(read_u32(reader)?);
        if group != store.group(id) {
            return Err(CheckpointError::Mismatch(format!(
                "param '{name}': group {:?} expected, checkpoint has {group:?}",
                store.group(id)
            )));
        }
        let rows = read_u32(reader)? as usize;
        let cols = read_u32(reader)? as usize;
        if (rows, cols) != store.value(id).shape() {
            return Err(CheckpointError::Mismatch(format!(
                "param '{name}': shape {:?} expected, checkpoint has {rows}x{cols}",
                store.value(id).shape()
            )));
        }
        let mut data = vec![0.0f32; rows * cols];
        for v in &mut data {
            let mut buf = [0u8; 4];
            reader.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        *store.value_mut(id) = Tensor::from_vec(rows, cols, data).into_shared();
    }
    Ok(())
}

/// Convenience: save to a file path (buffered).
pub fn save_params_to_file(
    store: &ParamStore,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    save_params(store, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Convenience: load from a file path (buffered).
pub fn load_params_from_file(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    load_params(store, &mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn sample_store(seed: u64) -> ParamStore {
        let mut rng = Rng::seed_from(seed);
        let mut store = ParamStore::new();
        store.register(
            "layer0.w",
            Tensor::randn(3, 4, 0.0, 1.0, &mut rng),
            GroupId(0),
        );
        store.register(
            "layer0.b",
            Tensor::randn(1, 4, 0.0, 1.0, &mut rng),
            GroupId(0),
        );
        store.register(
            "head.w",
            Tensor::randn(4, 2, 0.0, 1.0, &mut rng),
            GroupId(2),
        );
        store
    }

    #[test]
    fn round_trip_preserves_values() {
        let src = sample_store(1);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut dst = sample_store(2); // different values, same structure
        assert_ne!(dst.snapshot(), src.snapshot());
        load_params(&mut dst, &mut buf.as_slice()).unwrap();
        assert_eq!(dst.snapshot(), src.snapshot());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut dst = sample_store(0);
        let err = load_params(&mut dst, &mut b"NOTAPS\x00\x00".as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_param_count_mismatch() {
        let src = sample_store(1);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut small = ParamStore::new();
        small.register("layer0.w", Tensor::zeros(3, 4), GroupId(0));
        let err = load_params(&mut small, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = sample_store(1);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut rng = Rng::seed_from(9);
        let mut wrong = ParamStore::new();
        wrong.register(
            "layer0.w",
            Tensor::randn(3, 5, 0.0, 1.0, &mut rng),
            GroupId(0),
        );
        wrong.register(
            "layer0.b",
            Tensor::randn(1, 4, 0.0, 1.0, &mut rng),
            GroupId(0),
        );
        wrong.register(
            "head.w",
            Tensor::randn(4, 2, 0.0, 1.0, &mut rng),
            GroupId(2),
        );
        let err = load_params(&mut wrong, &mut buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("shape"), "{msg}");
    }

    #[test]
    fn rejects_name_mismatch() {
        let src = sample_store(1);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        let mut rng = Rng::seed_from(9);
        let mut wrong = ParamStore::new();
        wrong.register(
            "renamed.w",
            Tensor::randn(3, 4, 0.0, 1.0, &mut rng),
            GroupId(0),
        );
        wrong.register(
            "layer0.b",
            Tensor::randn(1, 4, 0.0, 1.0, &mut rng),
            GroupId(0),
        );
        wrong.register(
            "head.w",
            Tensor::randn(4, 2, 0.0, 1.0, &mut rng),
            GroupId(2),
        );
        let err = load_params(&mut wrong, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("name"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("adaptraj_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.atps");
        let src = sample_store(3);
        save_params_to_file(&src, &path).unwrap();
        let mut dst = sample_store(4);
        load_params_from_file(&mut dst, &path).unwrap();
        assert_eq!(dst.snapshot(), src.snapshot());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_fails_cleanly() {
        let src = sample_store(1);
        let mut buf = Vec::new();
        save_params(&src, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut dst = sample_store(2);
        assert!(load_params(&mut dst, &mut buf.as_slice()).is_err());
    }
}
