//! Dense, row-major `f32` matrices.
//!
//! The whole reproduction operates on rank-2 tensors `[rows, cols]`; sequences
//! and batches are handled by the layers above (e.g. an LSTM steps over a
//! `Vec<Tensor>`). Keeping the substrate to rank 2 keeps every kernel simple,
//! cache-friendly, and easy to verify, which matters more here than
//! generality: all of the paper's modules (MLP extractors, LSTM encoders,
//! attention pooling, energy heads) are expressible as matrix programs.

use crate::rng::Rng;
use std::fmt;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor from raw row-major data. Panics if the element count
    /// does not match `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-ones tensor.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// I.i.d. normal entries.
    pub fn randn(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut Rng) -> Self {
        Self {
            rows,
            cols,
            data: rng.normal_vec(rows * cols, mean, std),
        }
    }

    /// A `1 x n` row vector.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// A `n x 1` column vector.
    pub fn col(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// A scalar wrapped as a `1 x 1` tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access with bounds checks in debug builds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 x 1` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar {self:?}");
        self.data[0]
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise zip-map against another same-shape tensor.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip_map");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place scaled accumulate: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| alpha * x)
    }

    /// Matrix product `self[n,k] * other[k,m] -> [n,m]`.
    ///
    /// Classic ikj loop order so the inner loop streams both the output row
    /// and the `other` row sequentially.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dims {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * m..(i + 1) * m];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * m..(p + 1) * m];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(n, m, out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Tensor::from_vec(self.cols, self.rows, out)
    }

    /// Adds a `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_slice_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Zero for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise mean: `[n, m] -> [1, m]`.
    pub fn mean_rows(&self) -> Tensor {
        assert!(self.rows > 0, "mean_rows on empty tensor");
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row_slice(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for o in &mut out {
            *o *= inv;
        }
        Tensor::from_vec(1, self.cols, out)
    }

    /// Column-wise sum: `[n, m] -> [1, m]`.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row_slice(r)) {
                *o += x;
            }
        }
        Tensor::from_vec(1, self.cols, out)
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Horizontal concatenation of column blocks with equal row counts.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "concat_cols: row mismatch"
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for p in parts {
                out.extend_from_slice(p.row_slice(r));
            }
        }
        Tensor::from_vec(rows, cols, out)
    }

    /// Vertical concatenation of row blocks with equal column counts.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "concat_rows: col mismatch"
        );
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut out = Vec::with_capacity(rows * cols);
        for p in parts {
            out.extend_from_slice(&p.data);
        }
        Tensor::from_vec(rows, cols, out)
    }

    /// Column slice `[.., start..end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let w = end - start;
        let mut out = Vec::with_capacity(self.rows * w);
        for r in 0..self.rows {
            out.extend_from_slice(&self.row_slice(r)[start..end]);
        }
        Tensor::from_vec(self.rows, w, out)
    }

    /// Row gather: `out[i] = self[indices[i]]`.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "gather_rows index {i} >= {}", self.rows);
            out.extend_from_slice(self.row_slice(i));
        }
        Tensor::from_vec(indices.len(), self.cols, out)
    }

    /// Repeats a `1 x m` row `n` times.
    pub fn broadcast_rows(&self, n: usize) -> Tensor {
        assert_eq!(self.rows, 1, "broadcast_rows needs a row vector");
        let mut out = Vec::with_capacity(n * self.cols);
        for _ in 0..n {
            out.extend_from_slice(&self.data);
        }
        Tensor::from_vec(n, self.cols, out)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_slice_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            let inv = 1.0 / sum;
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
        out
    }

    /// Largest absolute entry (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn constructors_and_shape() {
        let z = Tensor::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);
        assert_eq!(Tensor::ones(2, 2).sum(), 4.0);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
        assert_eq!(Tensor::row(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Tensor::col(&[1.0, 2.0]).shape(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).data(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).data(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.mul(&b).data(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = t(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose();
        assert_eq!(at.shape(), (3, 2));
        assert_eq!(at.at(0, 1), 4.0);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn broadcast_bias() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::row(&[10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.mean_rows().data(), &[2.0, 3.0]);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(a.frob_sq(), 30.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn concat_and_slice() {
        let a = t(2, 1, &[1.0, 2.0]);
        let b = t(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
        assert_eq!(c.slice_cols(0, 1), a);
        assert_eq!(c.slice_cols(1, 3), b);

        let d = Tensor::concat_rows(&[&a, &a]);
        assert_eq!(d.shape(), (4, 1));
        assert_eq!(d.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn gather_and_broadcast_rows() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let r = Tensor::row(&[7.0, 8.0]).broadcast_rows(3);
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.row_slice(2), &[7.0, 8.0]);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large-value row must not overflow to NaN.
        assert!(s.all_finite());
        assert!((s.at(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(1, 3, &[1.0, 1.0, 1.0]);
        let b = t(1, 3, &[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn one_by_one_matmul_is_scalar_product() {
        let a = Tensor::scalar(3.0);
        let b = Tensor::scalar(-2.0);
        assert_eq!(a.matmul(&b).item(), -6.0);
    }

    #[test]
    fn empty_slice_cols_is_zero_width() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.slice_cols(1, 1);
        assert_eq!(s.shape(), (2, 0));
        assert!(s.is_empty());
    }

    #[test]
    fn gather_rows_empty_index_list() {
        let a = t(3, 2, &[1.0; 6]);
        let g = a.gather_rows(&[]);
        assert_eq!(g.shape(), (0, 2));
    }

    #[test]
    fn concat_single_part_is_identity() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(Tensor::concat_cols(&[&a]), a);
        assert_eq!(Tensor::concat_rows(&[&a]), a);
    }

    #[test]
    fn mean_of_empty_is_zero_and_max_abs_zero() {
        let e = Tensor::zeros(0, 3);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max_abs(), 0.0);
        assert!(e.all_finite());
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(0, 3);
        let b = Tensor::zeros(3, 4);
        assert_eq!(a.matmul(&b).shape(), (0, 4));
    }

    #[test]
    fn randn_is_seed_deterministic() {
        let mut r1 = Rng::seed_from(4);
        let mut r2 = Rng::seed_from(4);
        assert_eq!(
            Tensor::randn(3, 3, 0.0, 1.0, &mut r1),
            Tensor::randn(3, 3, 0.0, 1.0, &mut r2)
        );
    }
}
