//! Dense, row-major `f32` matrices.
//!
//! The whole reproduction operates on rank-2 tensors `[rows, cols]`; sequences
//! and batches are handled by the layers above (e.g. an LSTM steps over a
//! `Vec<Tensor>`). Keeping the substrate to rank 2 keeps every kernel simple,
//! cache-friendly, and easy to verify, which matters more here than
//! generality: all of the paper's modules (MLP extractors, LSTM encoders,
//! attention pooling, energy heads) are expressible as matrix programs.
//!
//! # Storage
//!
//! A tensor's buffer is either *owned* (a plain `Vec<f32>`, drawn from the
//! per-thread [`crate::pool`] so hot-path results reuse retired capacity) or
//! *shared* (an `Arc<Vec<f32>>`). Shared storage is how parameter leaves
//! avoid the full-tensor clone per forward pass: the `ParamStore` keeps its
//! values shared, so bringing a parameter onto a tape is one refcount bump.
//! Mutation is copy-on-write — `data_mut` on an aliased shared buffer
//! copies first — which preserves the old snapshot-at-`param()` semantics
//! exactly: nodes already on a tape never observe later optimizer updates.

use crate::kernels::{self, Kernel};
use crate::pool;
use crate::rng::Rng;
use std::fmt;
use std::sync::Arc;

#[derive(Debug)]
enum Storage {
    Owned(Vec<f32>),
    Shared(Arc<Vec<f32>>),
}

impl Storage {
    #[inline]
    fn as_slice(&self) -> &[f32] {
        match self {
            Storage::Owned(v) => v,
            Storage::Shared(a) => a,
        }
    }
}

impl Clone for Storage {
    fn clone(&self) -> Self {
        match self {
            // Deep copy through the pool so hot-path clones reuse retired
            // buffers instead of hitting the allocator.
            Storage::Owned(v) => Storage::Owned(pool::alloc_copy(v)),
            // Refcount bump — this is the allocation-free parameter-leaf
            // path.
            Storage::Shared(a) => Storage::Shared(Arc::clone(a)),
        }
    }
}

/// A dense row-major matrix of `f32` values.
#[derive(Clone)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Storage,
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.data.as_slice() == other.data.as_slice()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data.as_slice())?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Creates a tensor from raw row-major data. Panics if the element count
    /// does not match `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self {
            rows,
            cols,
            data: Storage::Owned(data),
        }
    }

    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_vec(rows, cols, pool::alloc_zeroed(rows * cols))
    }

    /// All-ones tensor.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let n = rows * cols;
        let mut data = pool::alloc_empty(n);
        data.resize(n, value);
        Self::from_vec(rows, cols, data)
    }

    /// I.i.d. normal entries.
    pub fn randn(rows: usize, cols: usize, mean: f32, std: f32, rng: &mut Rng) -> Self {
        Self::from_vec(rows, cols, rng.normal_vec(rows * cols, mean, std))
    }

    /// A `1 x n` row vector.
    pub fn row(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// A `n x 1` column vector.
    pub fn col(values: &[f32]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// A scalar wrapped as a `1 x 1` tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable view of the buffer. Copy-on-write: an aliased shared buffer
    /// is copied first, so mutation never leaks into other holders.
    pub fn data_mut(&mut self) -> &mut [f32] {
        match &mut self.data {
            Storage::Owned(v) => v,
            Storage::Shared(a) => Arc::make_mut(a).as_mut_slice(),
        }
    }

    pub fn into_vec(self) -> Vec<f32> {
        match self.data {
            Storage::Owned(v) => v,
            Storage::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| a.as_ref().clone()),
        }
    }

    /// Converts the buffer to shared (`Arc`-backed) storage, making
    /// subsequent clones refcount bumps. The `ParamStore` keeps every value
    /// in this form so parameter leaves are borrowed, not copied.
    pub fn into_shared(self) -> Self {
        match self.data {
            Storage::Owned(v) => Self {
                rows: self.rows,
                cols: self.cols,
                data: Storage::Shared(Arc::new(v)),
            },
            Storage::Shared(_) => self,
        }
    }

    /// True when the buffer is `Arc`-shared (cheap to clone).
    pub fn is_shared(&self) -> bool {
        matches!(self.data, Storage::Shared(_))
    }

    /// Retires this tensor's buffer into the calling thread's
    /// [`pool`] so the next kernel allocation can reuse it. Shared buffers
    /// with other live holders are simply released.
    pub fn recycle(self) {
        match self.data {
            Storage::Owned(v) => pool::recycle_vec(v),
            Storage::Shared(a) => {
                if let Ok(v) = Arc::try_unwrap(a) {
                    pool::recycle_vec(v);
                }
            }
        }
    }

    /// Element access with bounds checks in debug builds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data.as_slice()[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        let idx = r * self.cols + c;
        self.data_mut()[idx] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data.as_slice()[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let (start, end) = (r * self.cols, (r + 1) * self.cols);
        &mut self.data_mut()[start..end]
    }

    /// The single value of a `1 x 1` tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar {self:?}");
        self.data.as_slice()[0]
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let src = self.data.as_slice();
        let mut out = pool::alloc_empty(src.len());
        out.extend(src.iter().map(|&x| f(x)));
        Tensor::from_vec(self.rows, self.cols, out)
    }

    /// Elementwise zip-map against another same-shape tensor.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip_map");
        let a = self.data.as_slice();
        let b = other.data.as_slice();
        let mut out = pool::alloc_empty(a.len());
        out.extend(a.iter().zip(b).map(|(&x, &y)| f(x, y)));
        Tensor::from_vec(self.rows, self.cols, out)
    }

    /// In-place scaled accumulate: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        let b = other.data.as_slice();
        for (a, &b) in self.data_mut().iter_mut().zip(b) {
            *a += alpha * b;
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| alpha * x)
    }

    /// Matrix product `self[n,k] * other[k,m] -> [n,m]`.
    ///
    /// Dispatches to the active GEMM microkernel (see [`crate::kernels`]):
    /// explicit AVX2 when available, the classic autovectorized ikj loop
    /// otherwise. Every kernel honors the same contract: each output
    /// element accumulates its k-terms in ascending order, skipping terms
    /// whose `self` factor is exactly zero, with separate mul and add
    /// roundings — shared with [`Tensor::matmul_nt`] /
    /// [`Tensor::matmul_tn`] and pinned by the golden-regression gate.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_with(other, kernels::active_kernel())
    }

    /// As [`Tensor::matmul`] but forcing a specific kernel family,
    /// bypassing the process-wide dispatch (kernel-equivalence tests and
    /// the micro-bench).
    pub fn matmul_with(&self, other: &Tensor, kernel: Kernel) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dims {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = pool::alloc_zeroed(n * m);
        kernels::gemm_nn(
            kernel,
            self.data.as_slice(),
            other.data.as_slice(),
            &mut out,
            n,
            k,
            m,
        );
        Tensor::from_vec(n, m, out)
    }

    /// Product with a transposed right operand:
    /// `self[n,k] * other[m,k]ᵀ -> [n,m]`, bit-identical to
    /// `self.matmul(&other.transpose())` without recording a transpose on
    /// the tape or allocating a transposed tensor.
    ///
    /// The kernel packs `other`ᵀ into a pooled scratch buffer and then
    /// runs the same NN microkernel as [`Tensor::matmul`]. The dot-product
    /// formulation (row of `self` · row of `other`) avoids the pack but
    /// serializes the f32 reduction — the accumulation-order contract
    /// forbids reassociating it, so it cannot vectorize; re-measured on
    /// the PR-8 batched shapes it runs ~4-6x slower than the pack+NN
    /// path on the gate-projection shapes at batch 8, ~7-10x at batch
    /// 64, and ~1.2x on the skinny rollout shape where packing buys
    /// little (`results/KERNELS_1.txt`, `nt_dot` rows). Packing costs O(k·m)
    /// against the O(n·k·m) product and the scratch comes from (and
    /// returns to) the thread pool, so the hot path stays allocation-free.
    /// Per output element the k-terms accumulate ascending with the same
    /// zero-skip on the `self` factor as [`Tensor::matmul`], matching the
    /// naive composition flop for flop.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        self.matmul_nt_with(other, kernels::active_kernel())
    }

    /// As [`Tensor::matmul_nt`] but forcing a specific kernel family.
    pub fn matmul_nt_with(&self, other: &Tensor, kernel: Kernel) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt: inner dims {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let a_data = self.data.as_slice();
        let b_data = other.data.as_slice();
        let mut out = pool::alloc_zeroed(n * m);
        if k > 0 && m > 0 {
            // Pack on the calling thread: the scratch must be fully
            // written before the (possibly row-split) kernel reads it.
            let mut bt = pool::alloc_zeroed(k * m);
            for (j, b_row) in b_data.chunks_exact(k).enumerate() {
                for (p, &v) in b_row.iter().enumerate() {
                    bt[p * m + j] = v;
                }
            }
            kernels::gemm_nn(kernel, a_data, &bt, &mut out, n, k, m);
            pool::recycle_vec(bt);
        }
        Tensor::from_vec(n, m, out)
    }

    /// Transpose-free product with a transposed left operand:
    /// `self[k,n]ᵀ * other[k,m] -> [n,m]`, bit-identical to
    /// `self.transpose().matmul(other)` without materializing the
    /// transpose.
    ///
    /// The scalar kernel streams the shared dimension in the outer loop
    /// (row `p` of `self` and `other` both read contiguously, each output
    /// row accumulating an axpy); the SIMD kernel register-blocks output
    /// rows and reads `self` down its columns. Either way the per-element
    /// k-order is ascending with the zero-skip on the `self` factor —
    /// identical to the naive composition, term for term.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        self.matmul_tn_with(other, kernels::active_kernel())
    }

    /// As [`Tensor::matmul_tn`] but forcing a specific kernel family.
    pub fn matmul_tn_with(&self, other: &Tensor, kernel: Kernel) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn: inner dims ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = pool::alloc_zeroed(n * m);
        kernels::gemm_tn(
            kernel,
            self.data.as_slice(),
            other.data.as_slice(),
            &mut out,
            k,
            n,
            m,
        );
        Tensor::from_vec(n, m, out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let src = self.data.as_slice();
        let mut out = pool::alloc_zeroed(src.len());
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = src[r * self.cols + c];
            }
        }
        Tensor::from_vec(self.cols, self.rows, out)
    }

    /// Adds a `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "broadcast source must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let bias = row.data.as_slice();
        let mut out = pool::alloc_copy(self.data.as_slice());
        for chunk in out.chunks_mut(self.cols.max(1)) {
            for (o, &b) in chunk.iter_mut().zip(bias) {
                *o += b;
            }
        }
        Tensor::from_vec(self.rows, self.cols, out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.as_slice().iter().sum()
    }

    /// Mean of all elements. Zero for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise mean: `[n, m] -> [1, m]`.
    pub fn mean_rows(&self) -> Tensor {
        assert!(self.rows > 0, "mean_rows on empty tensor");
        let mut out = pool::alloc_zeroed(self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row_slice(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for o in &mut out {
            *o *= inv;
        }
        Tensor::from_vec(1, self.cols, out)
    }

    /// Column-wise sum: `[n, m] -> [1, m]`.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = pool::alloc_zeroed(self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row_slice(r)) {
                *o += x;
            }
        }
        Tensor::from_vec(1, self.cols, out)
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.as_slice().iter().map(|&x| x * x).sum()
    }

    /// Horizontal concatenation of column blocks with equal row counts.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "concat_cols: row mismatch"
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = pool::alloc_empty(rows * cols);
        for r in 0..rows {
            for p in parts {
                out.extend_from_slice(p.row_slice(r));
            }
        }
        Tensor::from_vec(rows, cols, out)
    }

    /// Vertical concatenation of row blocks with equal column counts.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "concat_rows: col mismatch"
        );
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut out = pool::alloc_empty(rows * cols);
        for p in parts {
            out.extend_from_slice(p.data.as_slice());
        }
        Tensor::from_vec(rows, cols, out)
    }

    /// Column slice `[.., start..end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.cols, "slice_cols out of range");
        let w = end - start;
        let mut out = pool::alloc_empty(self.rows * w);
        for r in 0..self.rows {
            out.extend_from_slice(&self.row_slice(r)[start..end]);
        }
        Tensor::from_vec(self.rows, w, out)
    }

    /// Row gather: `out[i] = self[indices[i]]`.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = pool::alloc_empty(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "gather_rows index {i} >= {}", self.rows);
            out.extend_from_slice(self.row_slice(i));
        }
        Tensor::from_vec(indices.len(), self.cols, out)
    }

    /// Repeats a `1 x m` row `n` times.
    pub fn broadcast_rows(&self, n: usize) -> Tensor {
        assert_eq!(self.rows, 1, "broadcast_rows needs a row vector");
        let mut out = pool::alloc_empty(n * self.cols);
        for _ in 0..n {
            out.extend_from_slice(self.data.as_slice());
        }
        Tensor::from_vec(n, self.cols, out)
    }

    /// Reinterprets the row-major buffer under a new shape with the same
    /// element count — a view-style copy, no data movement beyond the copy.
    pub fn reshape(&self, rows: usize, cols: usize) -> Tensor {
        assert_eq!(
            rows * cols,
            self.len(),
            "reshape {rows}x{cols} must conserve {} elements",
            self.len()
        );
        Tensor::from_vec(rows, cols, pool::alloc_copy(self.data.as_slice()))
    }

    /// Sums each consecutive group of `k` rows: `[g*k, m] -> [g, m]`.
    /// Rows within a group accumulate in row order, matching what a
    /// per-group `sum_rows` would produce.
    pub fn sum_row_groups(&self, k: usize) -> Tensor {
        assert!(k > 0, "sum_row_groups needs k > 0");
        assert_eq!(
            self.rows % k,
            0,
            "sum_row_groups: {} rows not divisible by group size {k}",
            self.rows
        );
        let groups = self.rows / k;
        let mut out = pool::alloc_zeroed(groups * self.cols);
        for g in 0..groups {
            let orow = &mut out[g * self.cols..(g + 1) * self.cols];
            for r in g * k..(g + 1) * k {
                for (o, &x) in orow.iter_mut().zip(self.row_slice(r)) {
                    *o += x;
                }
            }
        }
        Tensor::from_vec(groups, self.cols, out)
    }

    /// Repeats every row `k` times consecutively: `[g, m] -> [g*k, m]` —
    /// the adjoint data movement of [`Tensor::sum_row_groups`].
    pub fn repeat_rows_each(&self, k: usize) -> Tensor {
        assert!(k > 0, "repeat_rows_each needs k > 0");
        let mut out = pool::alloc_empty(self.rows * k * self.cols);
        for r in 0..self.rows {
            for _ in 0..k {
                out.extend_from_slice(self.row_slice(r));
            }
        }
        Tensor::from_vec(self.rows * k, self.cols, out)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = pool::alloc_copy(self.data.as_slice());
        for row in out.chunks_mut(self.cols.max(1)) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            let inv = 1.0 / sum;
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
        Tensor::from_vec(self.rows, self.cols, out)
    }

    /// Largest absolute entry (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.as_slice().iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn reshape_preserves_row_major_order() {
        let x = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = x.reshape(3, 2);
        assert_eq!(y.shape(), (3, 2));
        assert_eq!(y.data(), x.data());
        assert_eq!(y.at(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "conserve")]
    fn reshape_rejects_element_count_change() {
        t(2, 3, &[0.0; 6]).reshape(2, 2);
    }

    #[test]
    fn sum_row_groups_sums_consecutive_rows() {
        let x = t(4, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let y = x.sum_row_groups(2);
        assert_eq!(y.shape(), (2, 2));
        assert_eq!(y.data(), &[4.0, 6.0, 12.0, 14.0]);
        // k == rows degenerates to sum_rows.
        assert_eq!(x.sum_row_groups(4).data(), x.sum_rows().data());
    }

    #[test]
    fn repeat_rows_each_is_sum_row_groups_adjoint_movement() {
        let x = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let y = x.repeat_rows_each(3);
        assert_eq!(y.shape(), (6, 2));
        assert_eq!(y.row_slice(0), y.row_slice(2));
        assert_eq!(y.row_slice(3), &[3.0, 4.0]);
    }

    #[test]
    fn constructors_and_shape() {
        let z = Tensor::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);
        assert_eq!(Tensor::ones(2, 2).sum(), 4.0);
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
        assert_eq!(Tensor::row(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Tensor::col(&[1.0, 2.0]).shape(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).data(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).data(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.mul(&b).data(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = t(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_nt_matches_transpose_compose_bitwise() {
        let mut rng = Rng::seed_from(11);
        for &(n, k, m) in &[(1, 1, 1), (2, 3, 4), (7, 5, 9), (4, 130, 70), (3, 8, 150)] {
            let mut a = Tensor::randn(n, k, 0.0, 1.0, &mut rng);
            let b = Tensor::randn(m, k, 0.0, 1.0, &mut rng);
            // Plant exact zeros so the zero-skip path is exercised.
            a.data_mut()[0] = 0.0;
            let fused = a.matmul_nt(&b);
            let naive = a.matmul(&b.transpose());
            assert_eq!(fused.shape(), (n, m));
            let bits = |x: &Tensor| x.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&fused), bits(&naive), "shape ({n},{k},{m})");
        }
    }

    #[test]
    fn matmul_tn_matches_transpose_compose_bitwise() {
        let mut rng = Rng::seed_from(12);
        for &(k, n, m) in &[(1, 1, 1), (3, 2, 4), (5, 7, 9), (130, 4, 70), (8, 3, 150)] {
            let mut a = Tensor::randn(k, n, 0.0, 1.0, &mut rng);
            let b = Tensor::randn(k, m, 0.0, 1.0, &mut rng);
            a.data_mut()[0] = 0.0;
            let fused = a.matmul_tn(&b);
            let naive = a.transpose().matmul(&b);
            assert_eq!(fused.shape(), (n, m));
            let bits = |x: &Tensor| x.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&fused), bits(&naive), "shape ({k},{n},{m})");
        }
    }

    #[test]
    fn matmul_nt_tn_empty_shapes() {
        assert_eq!(
            Tensor::zeros(0, 3).matmul_nt(&Tensor::zeros(4, 3)).shape(),
            (0, 4)
        );
        assert_eq!(
            Tensor::zeros(3, 0).matmul_tn(&Tensor::zeros(3, 4)).shape(),
            (0, 4)
        );
        assert_eq!(
            Tensor::zeros(2, 0).matmul_nt(&Tensor::zeros(5, 0)).shape(),
            (2, 5)
        );
    }

    #[test]
    fn shared_storage_clones_are_refcount_bumps() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]).into_shared();
        assert!(a.is_shared());
        let b = a.clone();
        assert!(b.is_shared());
        // Same underlying buffer.
        assert_eq!(a.data().as_ptr(), b.data().as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn shared_storage_mutation_is_copy_on_write() {
        let a = t(1, 3, &[1.0, 2.0, 3.0]).into_shared();
        let mut b = a.clone();
        b.data_mut()[0] = 99.0;
        assert_eq!(a.data(), &[1.0, 2.0, 3.0], "CoW leaked into the alias");
        assert_eq!(b.data(), &[99.0, 2.0, 3.0]);
    }

    #[test]
    fn shared_and_owned_tensors_compare_by_value() {
        let owned = t(2, 1, &[5.0, 6.0]);
        let shared = owned.clone().into_shared();
        assert_eq!(owned, shared);
        assert_eq!(shared.into_vec(), vec![5.0, 6.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose();
        assert_eq!(at.shape(), (3, 2));
        assert_eq!(at.at(0, 1), 4.0);
        assert_eq!(at.transpose(), a);
    }

    #[test]
    fn broadcast_bias() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::row(&[10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reductions() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.mean_rows().data(), &[2.0, 3.0]);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(a.frob_sq(), 30.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn concat_and_slice() {
        let a = t(2, 1, &[1.0, 2.0]);
        let b = t(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
        assert_eq!(c.slice_cols(0, 1), a);
        assert_eq!(c.slice_cols(1, 3), b);

        let d = Tensor::concat_rows(&[&a, &a]);
        assert_eq!(d.shape(), (4, 1));
        assert_eq!(d.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn gather_and_broadcast_rows() {
        let a = t(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let r = Tensor::row(&[7.0, 8.0]).broadcast_rows(3);
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.row_slice(2), &[7.0, 8.0]);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large-value row must not overflow to NaN.
        assert!(s.all_finite());
        assert!((s.at(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(1, 3, &[1.0, 1.0, 1.0]);
        let b = t(1, 3, &[1.0, 2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn one_by_one_matmul_is_scalar_product() {
        let a = Tensor::scalar(3.0);
        let b = Tensor::scalar(-2.0);
        assert_eq!(a.matmul(&b).item(), -6.0);
    }

    #[test]
    fn empty_slice_cols_is_zero_width() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.slice_cols(1, 1);
        assert_eq!(s.shape(), (2, 0));
        assert!(s.is_empty());
    }

    #[test]
    fn gather_rows_empty_index_list() {
        let a = t(3, 2, &[1.0; 6]);
        let g = a.gather_rows(&[]);
        assert_eq!(g.shape(), (0, 2));
    }

    #[test]
    fn concat_single_part_is_identity() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(Tensor::concat_cols(&[&a]), a);
        assert_eq!(Tensor::concat_rows(&[&a]), a);
    }

    #[test]
    fn mean_of_empty_is_zero_and_max_abs_zero() {
        let e = Tensor::zeros(0, 3);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max_abs(), 0.0);
        assert!(e.all_finite());
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(0, 3);
        let b = Tensor::zeros(3, 4);
        assert_eq!(a.matmul(&b).shape(), (0, 4));
    }

    #[test]
    fn recycled_buffers_are_reused_by_kernels() {
        // Warm the thread pool with a retired buffer, then check a kernel
        // allocation reports a reuse hit (thread-local stats, so this test
        // is isolated from the rest of the suite).
        let before = pool::thread_stats();
        Tensor::zeros(8, 8).recycle();
        let z = Tensor::zeros(8, 8);
        assert_eq!(z.sum(), 0.0);
        let after = pool::thread_stats();
        assert!(
            after.reuse_hits > before.reuse_hits,
            "kernel did not reuse the retired buffer"
        );
    }

    #[test]
    fn randn_is_seed_deterministic() {
        let mut r1 = Rng::seed_from(4);
        let mut r2 = Rng::seed_from(4);
        assert_eq!(
            Tensor::randn(3, 3, 0.0, 1.0, &mut r1),
            Tensor::randn(3, 3, 0.0, 1.0, &mut r2)
        );
    }
}
