//! Gradient-descent optimizers with per-group learning-rate control.
//!
//! The AdapTraj training procedure (Alg. 1) requires three scheduling
//! capabilities beyond a plain optimizer: a per-module learning-rate
//! multiplier (`f_low` / `f_high`), outright freezing of module groups
//! (the domain-specific extractor during aggregator training), and
//! changing the multipliers between training steps. Both optimizers here
//! expose those via [`GroupId`]-keyed schedules.

use crate::param::{GradBuffer, GroupId, ParamStore};
use crate::tensor::Tensor;
use std::collections::{HashMap, HashSet};

/// Shared learning-rate schedule: base rate, per-group multipliers, frozen
/// groups.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    base_lr: f32,
    multipliers: HashMap<u32, f32>,
    frozen: HashSet<u32>,
}

impl Schedule {
    pub fn new(base_lr: f32) -> Self {
        Self {
            base_lr,
            multipliers: HashMap::new(),
            frozen: HashSet::new(),
        }
    }

    pub fn base_lr(&self) -> f32 {
        self.base_lr
    }

    pub fn set_base_lr(&mut self, lr: f32) {
        self.base_lr = lr;
    }

    /// Sets the learning-rate multiplier for a group (default 1.0).
    pub fn set_group_multiplier(&mut self, group: GroupId, mult: f32) {
        self.multipliers.insert(group.0, mult);
    }

    /// Restores the default multiplier (1.0) for every group.
    pub fn clear_multipliers(&mut self) {
        self.multipliers.clear();
    }

    pub fn freeze(&mut self, group: GroupId) {
        self.frozen.insert(group.0);
    }

    pub fn unfreeze(&mut self, group: GroupId) {
        self.frozen.remove(&group.0);
    }

    pub fn unfreeze_all(&mut self) {
        self.frozen.clear();
    }

    pub fn is_frozen(&self, group: GroupId) -> bool {
        self.frozen.contains(&group.0)
    }

    /// Effective learning rate for a group; `None` when frozen.
    pub fn effective_lr(&self, group: GroupId) -> Option<f32> {
        if self.is_frozen(group) {
            return None;
        }
        let mult = self.multipliers.get(&group.0).copied().unwrap_or(1.0);
        Some(self.base_lr * mult)
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    pub schedule: Schedule,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            schedule: Schedule::new(lr),
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update from the accumulated gradients.
    pub fn step(&mut self, store: &mut ParamStore, grads: &GradBuffer) {
        if self.velocity.len() < store.len() {
            self.velocity.resize(store.len(), None);
        }
        for (id, g) in grads.iter() {
            let Some(lr) = self.schedule.effective_lr(store.group(id)) else {
                continue;
            };
            if self.momentum > 0.0 {
                let v = self.velocity[id.index()]
                    .get_or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
                let decayed = v.scale(self.momentum);
                std::mem::replace(v, decayed).recycle();
                v.axpy(1.0, g);
                store.value_mut(id).axpy(-lr, v);
            } else {
                store.value_mut(id).axpy(-lr, g);
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction, per-group learning rates, and
/// optional decoupled weight decay.
#[derive(Debug)]
pub struct Adam {
    pub schedule: Schedule,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: i32,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.0)
    }

    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        Self {
            schedule: Schedule::new(lr),
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps applied so far.
    pub fn steps(&self) -> i32 {
        self.t
    }

    /// Applies one Adam update from the accumulated gradients.
    pub fn step(&mut self, store: &mut ParamStore, grads: &GradBuffer) {
        if self.m.len() < store.len() {
            self.m.resize(store.len(), None);
            self.v.resize(store.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);

        for (id, g) in grads.iter() {
            let Some(lr) = self.schedule.effective_lr(store.group(id)) else {
                continue;
            };
            let idx = id.index();
            let m = self.m[idx].get_or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
            let v = self.v[idx].get_or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));

            let decayed = m.scale(self.beta1);
            std::mem::replace(m, decayed).recycle();
            m.axpy(1.0 - self.beta1, g);
            let next_v = v.zip_map(g, |vv, gg| self.beta2 * vv + (1.0 - self.beta2) * gg * gg);
            std::mem::replace(v, next_v).recycle();

            let eps = self.eps;
            let update = m.zip_map(v, |mm, vv| {
                let m_hat = mm / bc1;
                let v_hat = vv / bc2;
                m_hat / (v_hat.sqrt() + eps)
            });
            let param = store.value_mut(id);
            if self.weight_decay > 0.0 {
                let decay = param.scale(self.weight_decay);
                param.axpy(-lr, &decay);
                decay.recycle();
            }
            param.axpy(-lr, &update);
            update.recycle();
        }
    }
}

/// Convenience: run one backward/step cycle for a scalar loss var. Returns
/// the loss value. Useful in tests and small examples.
pub fn step_once(
    tape: &crate::tape::Tape,
    loss: crate::tape::Var,
    store: &mut ParamStore,
    opt: &mut Adam,
) -> f32 {
    let grads = tape.backward(loss);
    let mut buf = GradBuffer::new();
    buf.absorb(tape, &grads);
    opt.step(store, &buf);
    tape.value(loss).item()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{GroupId, ParamId, ParamStore};
    use crate::tape::Tape;

    fn quadratic_store() -> (ParamStore, ParamId) {
        let mut store = ParamStore::new();
        let id = store.register("x", Tensor::row(&[4.0, -3.0]), GroupId::DEFAULT);
        (store, id)
    }

    /// Loss = sum(x^2); both optimizers should drive x toward 0.
    fn loss_grad(store: &ParamStore, id: ParamId) -> (Tape, crate::tape::Var) {
        let mut tape = Tape::new();
        let x = tape.param(store, id);
        let sq = tape.mul(x, x);
        let l = tape.sum_all(sq);
        (tape, l)
    }

    #[test]
    fn sgd_descends_quadratic() {
        let (mut store, id) = quadratic_store();
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            let (tape, loss) = loss_grad(&store, id);
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            opt.step(&mut store, &buf);
        }
        assert!(store.value(id).max_abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_still_converges() {
        let (mut store, id) = quadratic_store();
        let mut opt = Sgd::new(0.05, 0.9);
        for _ in 0..200 {
            let (tape, loss) = loss_grad(&store, id);
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            opt.step(&mut store, &buf);
        }
        assert!(store.value(id).max_abs() < 1e-2);
    }

    #[test]
    fn adam_descends_quadratic() {
        let (mut store, id) = quadratic_store();
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            let (tape, loss) = loss_grad(&store, id);
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            opt.step(&mut store, &buf);
        }
        assert!(store.value(id).max_abs() < 1e-2, "{:?}", store.value(id));
    }

    #[test]
    fn adam_first_step_matches_hand_computation() {
        // With a constant gradient g, the first Adam step is -lr * g/|g|
        // (bias corrections cancel, eps negligible).
        let mut store = ParamStore::new();
        let id = store.register("x", Tensor::row(&[1.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.1);
        let mut buf = GradBuffer::new();
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let l = tape.scale(x, 5.0); // dl/dx = 5
        let l = tape.sum_all(l);
        let grads = tape.backward(l);
        buf.absorb(&tape, &grads);
        opt.step(&mut store, &buf);
        assert!((store.value(id).data()[0] - (1.0 - 0.1)).abs() < 1e-4);
    }

    #[test]
    fn frozen_group_is_untouched() {
        let mut store = ParamStore::new();
        let free = store.register("free", Tensor::row(&[1.0]), GroupId(0));
        let ice = store.register("ice", Tensor::row(&[1.0]), GroupId(1));
        let mut opt = Adam::new(0.1);
        opt.schedule.freeze(GroupId(1));

        let mut tape = Tape::new();
        let a = tape.param(&store, free);
        let b = tape.param(&store, ice);
        let s = tape.add(a, b);
        let sq = tape.mul(s, s);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        let mut buf = GradBuffer::new();
        buf.absorb(&tape, &grads);
        opt.step(&mut store, &buf);

        assert_eq!(store.value(ice).data(), &[1.0], "frozen param moved");
        assert_ne!(store.value(free).data(), &[1.0], "free param did not move");
    }

    #[test]
    fn group_multiplier_scales_update() {
        let mut store = ParamStore::new();
        let slow = store.register("slow", Tensor::row(&[1.0]), GroupId(0));
        let fast = store.register("fast", Tensor::row(&[1.0]), GroupId(1));
        let mut opt = Sgd::new(0.1, 0.0);
        opt.schedule.set_group_multiplier(GroupId(0), 0.1);
        opt.schedule.set_group_multiplier(GroupId(1), 10.0);

        let mut tape = Tape::new();
        let a = tape.param(&store, slow);
        let b = tape.param(&store, fast);
        let s = tape.add(a, b);
        let loss = tape.sum_all(s); // grad 1 for both
        let grads = tape.backward(loss);
        let mut buf = GradBuffer::new();
        buf.absorb(&tape, &grads);
        opt.step(&mut store, &buf);

        let d_slow = 1.0 - store.value(slow).data()[0];
        let d_fast = 1.0 - store.value(fast).data()[0];
        assert!((d_slow - 0.01).abs() < 1e-6);
        assert!((d_fast - 1.0).abs() < 1e-6);
    }

    #[test]
    fn schedule_effective_lr() {
        let mut s = Schedule::new(0.5);
        assert_eq!(s.effective_lr(GroupId(3)), Some(0.5));
        s.set_group_multiplier(GroupId(3), 0.2);
        assert!((s.effective_lr(GroupId(3)).unwrap() - 0.1).abs() < 1e-7);
        s.freeze(GroupId(3));
        assert_eq!(s.effective_lr(GroupId(3)), None);
        s.unfreeze(GroupId(3));
        assert!(s.effective_lr(GroupId(3)).is_some());
        s.clear_multipliers();
        assert_eq!(s.effective_lr(GroupId(3)), Some(0.5));
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::row(&[10.0]), GroupId::DEFAULT);
        let mut opt = Adam::with_config(0.1, 0.9, 0.999, 1e-8, 0.1);
        // Zero gradient from a loss that ignores w entirely is not absorbed;
        // instead use a tiny gradient so the param is visited.
        let mut tape = Tape::new();
        let x = tape.param(&store, id);
        let l = tape.scale(x, 1e-9);
        let l = tape.sum_all(l);
        let grads = tape.backward(l);
        let mut buf = GradBuffer::new();
        buf.absorb(&tape, &grads);
        let before = store.value(id).data()[0];
        opt.step(&mut store, &buf);
        assert!(store.value(id).data()[0] < before);
    }
}
