//! # adaptraj-tensor
//!
//! Dense `f32` tensors, reverse-mode automatic differentiation, neural
//! network layers, and optimizers — the deep-learning substrate for the
//! AdapTraj (ICDE 2024) reproduction.
//!
//! The paper's experiments assume a PyTorch-class stack; since no mature
//! Rust equivalent is available offline, this crate provides the minimal
//! complete substrate the paper's models need:
//!
//! * [`tensor::Tensor`] — row-major rank-2 tensors with the kernels used by
//!   every model (matmul, broadcasts, reductions, softmax, gathers).
//! * [`tape::Tape`] — an eager autodiff tape with input gradients (needed by
//!   LBEBM's Langevin sampler) and fused losses (scale-invariant MSE for
//!   `L_recon`, cross-entropy for the domain classifier, Frobenius
//!   orthogonality for `L_diff`).
//! * [`nn`] — `Linear`, `Mlp`, and `Lstm` layers over a shared
//!   [`param::ParamStore`].
//! * [`optim`] — SGD and Adam with per-group learning-rate multipliers and
//!   freezing, which the three-step AdapTraj schedule (Alg. 1) requires.
//! * [`rng::Rng`] — deterministic seeded randomness for replayable
//!   experiments.
//!
//! ## Quick example
//!
//! ```
//! use adaptraj_tensor::{
//!     nn::{Activation, Mlp},
//!     optim::Adam,
//!     param::{GradBuffer, GroupId, ParamStore},
//!     rng::Rng,
//!     tape::Tape,
//!     tensor::Tensor,
//! };
//!
//! let mut store = ParamStore::new();
//! let mut rng = Rng::seed_from(0);
//! let mlp = Mlp::new(&mut store, &mut rng, "f", &[2, 8, 1], Activation::Tanh, GroupId::DEFAULT);
//! let mut opt = Adam::new(0.01);
//!
//! let x = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
//! let y = Tensor::from_vec(4, 1, vec![0., 1., 1., 0.]);
//! for _ in 0..10 {
//!     let mut tape = Tape::new();
//!     let xv = tape.constant(x.clone());
//!     let pred = mlp.forward(&store, &mut tape, xv);
//!     let loss = tape.mse_to(pred, &y);
//!     let grads = tape.backward(loss);
//!     let mut buf = GradBuffer::new();
//!     buf.absorb(&tape, &grads);
//!     opt.step(&mut store, &buf);
//! }
//! ```

pub mod kernels;
pub mod nn;
pub mod optim;
pub mod param;
pub mod pool;
pub mod rng;
pub mod serialize;
pub mod tape;
pub mod tensor;

pub use kernels::Kernel;
pub use param::{GradBuffer, GroupId, ParamId, ParamStore};
pub use pool::{BufferPool, PoolStats};
pub use rng::Rng;
pub use tape::{with_pooled, FusedAct, Grads, Tape, Var};
pub use tensor::Tensor;
