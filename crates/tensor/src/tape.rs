//! Reverse-mode automatic differentiation.
//!
//! Eager tape design: each operation computes its value immediately and
//! records enough information to run the chain rule backwards. A fresh
//! [`Tape`] is built per training step (per mini-batch forward pass), which
//! keeps lifetimes trivial and makes memory use proportional to one step.
//!
//! Gradients flow to every node marked as requiring gradients — model
//! parameters, but also plain inputs when requested, which is how the LBEBM
//! backbone obtains `∂E/∂z` for its Langevin sampler.

use crate::param::{ParamId, ParamStore};
use crate::pool;
use crate::tensor::Tensor;
use adaptraj_obs::health;
use adaptraj_obs::profile::{self, OpTimer};
use std::sync::OnceLock;

/// Cached handles into the global metrics registry so the hot backward
/// path pays one atomic add + one histogram lock, not a registry lookup.
struct TapeMetrics {
    backward_calls: adaptraj_obs::CounterHandle,
    tape_nodes: adaptraj_obs::CounterHandle,
    backward_ms: adaptraj_obs::HistogramHandle,
    /// Nodes-per-backward distribution (graph size per step), alongside
    /// the `tape_nodes` counter sum.
    tape_len: adaptraj_obs::HistogramHandle,
    /// Per-backward cost normalized by graph size — the bench harness's
    /// "backward ns/node" regression metric.
    backward_ns_per_node: adaptraj_obs::HistogramHandle,
}

impl TapeMetrics {
    fn observe_backward(&self, nodes: usize, elapsed: std::time::Duration) {
        self.backward_calls.incr();
        self.tape_nodes.add(nodes as u64);
        self.backward_ms.record(elapsed.as_secs_f64() * 1e3);
        self.tape_len.record(nodes as f64);
        if nodes > 0 {
            self.backward_ns_per_node
                .record(elapsed.as_nanos() as f64 / nodes as f64);
        }
    }
}

fn tape_metrics() -> &'static TapeMetrics {
    static METRICS: OnceLock<TapeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = adaptraj_obs::global();
        TapeMetrics {
            backward_calls: reg.counter("tensor.backward_calls"),
            tape_nodes: reg.counter("tensor.tape_nodes_total"),
            backward_ms: reg.histogram("tensor.backward_ms"),
            tape_len: reg.histogram("tensor.tape_len"),
            backward_ns_per_node: reg.histogram("tensor.backward_ns_per_node"),
        }
    })
}

thread_local! {
    /// The calling thread's reusable tape (see [`with_pooled`]).
    static POOLED_TAPE: std::cell::RefCell<Tape> = std::cell::RefCell::new(Tape::new());
}

/// Runs `f` with the calling thread's reusable tape. The tape is reset on
/// entry (defensive: a previous job may have panicked mid-window) and on
/// exit, so each use retires its buffers into the thread's buffer pool and
/// drops the tape's `Arc` references to parameter leaves — letting a
/// following optimizer step mutate `ParamStore` values in place instead of
/// copy-on-writing them. Persistent worker threads therefore replay every
/// window onto warm, already-sized memory.
///
/// Re-entrant calls (a private tape inside a pooled-tape job, e.g. an
/// inner Langevin tape) fall back to a temporary tape that still retires
/// its buffers on exit. Values must be copied out of the tape before `f`
/// returns, as with any tape whose lifetime ends.
pub fn with_pooled<R>(f: impl FnOnce(&mut Tape) -> R) -> R {
    POOLED_TAPE.with(|cell| match cell.try_borrow_mut() {
        Ok(mut tape) => {
            tape.reset();
            let out = f(&mut tape);
            tape.reset();
            out
        }
        Err(_) => {
            let mut tape = Tape::new();
            let out = f(&mut tape);
            tape.reset();
            out
        }
    })
}

/// Activation fused into an [`Op::FusedAffine`] node. Only activations
/// whose derivative is recoverable from the *output* qualify (the fused
/// node stores no pre-activation tensor); GELU stays a composite.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FusedAct {
    #[default]
    Identity,
    Relu,
    LeakyRelu(f32),
    Tanh,
    Sigmoid,
}

impl FusedAct {
    /// Scalar forward — bit-identical to the standalone activation ops.
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            FusedAct::Identity => x,
            FusedAct::Relu => x.max(0.0),
            FusedAct::LeakyRelu(slope) => {
                if x > 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            FusedAct::Tanh => x.tanh(),
            FusedAct::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative mask reconstructed from the activation *output* `y`.
    /// For ReLU/LeakyReLU this is exact because `y > 0 ⇔ x > 0`; for
    /// tanh/sigmoid it is the usual output-form derivative.
    #[inline]
    fn dmask_from_output(self, y: f32) -> f32 {
        match self {
            FusedAct::Identity => 1.0,
            FusedAct::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            FusedAct::LeakyRelu(slope) => {
                if y > 0.0 {
                    1.0
                } else {
                    slope
                }
            }
            FusedAct::Tanh => 1.0 - y * y,
            FusedAct::Sigmoid => y * (1.0 - y),
        }
    }
}

/// Handle to a node on a [`Tape`]. Cheap to copy; only valid for the tape
/// that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    pub fn index(self) -> usize {
        self.0
    }
}

/// Recorded operation. Parents are stored as `Var`s created earlier on the
/// same tape, so reverse iteration is a valid topological order.
#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    MatMul(Var, Var),
    /// `A · Bᵀ` without materializing the transpose.
    MatMulNt(Var, Var),
    /// `Aᵀ · B` without materializing the transpose.
    MatMulTn(Var, Var),
    Transpose(Var),
    AddRowBroadcast(Var, Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    Exp(Var),
    SoftmaxRows(Var),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    SliceCols(Var, usize, usize),
    GatherRows(Var, Vec<usize>),
    BroadcastRows(Var),
    MeanRows(Var),
    SumRows(Var),
    MeanAll(Var),
    SumAll(Var),
    HadamardConst(Var, Tensor),
    /// Row-major reinterpretation under a new shape (element-count
    /// conserving); the backward pass reshapes the gradient back.
    Reshape(Var),
    /// `[g*k, m] -> [g, m]`, summing each consecutive group of `k` rows —
    /// the reduction that collapses per-slot batched scene rows back to
    /// one row per window.
    SumRowGroups(Var, usize),
    SoftmaxCrossEntropy(Var, Vec<usize>),
    GradReverse(Var, f32),
    /// `act(x·W + b)` as one node: matmul, broadcast bias, and activation
    /// fused, with no pre-activation or mask tensor materialized.
    FusedAffine(Var, Var, Var, FusedAct),
    /// One full LSTM recurrence step. The node's value is `[h' | c']`
    /// (`[n, 2·hidden]`); post-activation gate values `[i|f|g|o]` and
    /// `tanh(c')` are cached for the backward pass.
    LstmCell {
        x: Var,
        h: Var,
        c: Var,
        w: Var,
        b: Var,
        /// Post-activation gates `[i|f|g|o]`, `[n, 4·hidden]`.
        gates: Tensor,
        /// `tanh(c')`, `[n, hidden]`.
        c_act: Tensor,
    },
    /// Stand-in for ops whose operand bookkeeping (`Vec<Var>` /
    /// `Vec<usize>`) is only needed by the backward pass: when no operand
    /// requires gradients the op is recorded as this sentinel instead,
    /// skipping the clone. The stored label is the original op's
    /// [`Op::kind`] so profiles stay attributed correctly.
    NoGrad(&'static str),
}

impl Op {
    /// Stable profiler label for this op kind (see `adaptraj_obs::profile`).
    fn kind(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Neg(..) => "neg",
            Op::Scale(..) => "scale",
            Op::AddScalar(..) => "add_scalar",
            Op::MatMul(..) => "matmul",
            Op::MatMulNt(..) => "matmul_nt",
            Op::MatMulTn(..) => "matmul_tn",
            Op::Transpose(..) => "transpose",
            Op::AddRowBroadcast(..) => "add_row_broadcast",
            Op::Relu(..) => "relu",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Tanh(..) => "tanh",
            Op::Sigmoid(..) => "sigmoid",
            Op::Exp(..) => "exp",
            Op::SoftmaxRows(..) => "softmax_rows",
            Op::ConcatCols(..) => "concat_cols",
            Op::ConcatRows(..) => "concat_rows",
            Op::SliceCols(..) => "slice_cols",
            Op::GatherRows(..) => "gather_rows",
            Op::BroadcastRows(..) => "broadcast_rows",
            Op::MeanRows(..) => "mean_rows",
            Op::SumRows(..) => "sum_rows",
            Op::MeanAll(..) => "mean_all",
            Op::SumAll(..) => "sum_all",
            Op::HadamardConst(..) => "hadamard_const",
            Op::Reshape(..) => "reshape",
            Op::SumRowGroups(..) => "sum_row_groups",
            Op::SoftmaxCrossEntropy(..) => "softmax_cross_entropy",
            Op::GradReverse(..) => "grad_reverse",
            Op::FusedAffine(..) => "fused_affine",
            Op::LstmCell { .. } => "lstm_cell",
            Op::NoGrad(kind) => kind,
        }
    }
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    needs_grad: bool,
}

/// Gradients produced by [`Tape::backward`], indexed by node.
#[derive(Debug)]
pub struct Grads {
    by_node: Vec<Option<Tensor>>,
}

impl Grads {
    /// Gradient of the loss w.r.t. `var`, if it participates in the graph
    /// and requires gradients.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.by_node.get(var.0).and_then(|g| g.as_ref())
    }

    /// Like [`Grads::get`] but panics with a useful message when absent.
    pub fn expect(&self, var: Var) -> &Tensor {
        self.get(var)
            .unwrap_or_else(|| panic!("no gradient recorded for node {}", var.0))
    }

    /// Retires every gradient buffer into the calling thread's buffer
    /// pool. Call once the gradients have been absorbed downstream (e.g.
    /// into a `GradBuffer`) so the next backward pass reuses them.
    pub fn recycle(self) {
        for g in self.by_node.into_iter().flatten() {
            g.recycle();
        }
    }
}

/// The autodiff tape. See the module docs for the design.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// `(parameter, node)` pairs for parameters used in this forward pass.
    param_uses: Vec<(ParamId, Var)>,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the tape for reuse across window jobs. Every node's value
    /// buffer (and op-owned tensors such as `hadamard_const` masks) is
    /// retired into the calling thread's buffer pool, so the next forward
    /// pass on this thread allocates from warm, cache-resident memory
    /// instead of the heap; the node and param-use vectors keep their
    /// capacity. Also flushes the thread's pool tallies into the global
    /// metrics registry (`tensor.pool_reuse` & friends) — once per window
    /// instead of once per allocation.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            match node.op {
                Op::HadamardConst(_, mask) => mask.recycle(),
                Op::LstmCell { gates, c_act, .. } => {
                    gates.recycle();
                    c_act.recycle();
                }
                _ => {}
            }
            node.value.recycle();
        }
        self.param_uses.clear();
        pool::flush_thread_metrics();
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    /// The stable profiler label of the op that produced `var` (see
    /// `Op::kind`); `"leaf"` for constants, inputs, and parameters.
    pub fn op_kind(&self, var: Var) -> &'static str {
        self.nodes[var.0].op.kind()
    }

    /// Whether gradients flow into `var` (constants opt out).
    pub fn needs_grad(&self, var: Var) -> bool {
        self.nodes[var.0].needs_grad
    }

    /// The parents of `var` — the operands of the op that produced it, in
    /// operand order; empty for leaves. Every parent was recorded before
    /// its child, so node order is a topological order; `adaptraj-check`
    /// asserts this structural invariant through this accessor.
    pub fn parents(&self, var: Var) -> Vec<Var> {
        match &self.nodes[var.0].op {
            Op::Leaf | Op::NoGrad(_) => Vec::new(),
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::MatMul(a, b)
            | Op::MatMulNt(a, b)
            | Op::MatMulTn(a, b)
            | Op::AddRowBroadcast(a, b) => vec![*a, *b],
            Op::Neg(a)
            | Op::Scale(a, _)
            | Op::AddScalar(a)
            | Op::Transpose(a)
            | Op::Relu(a)
            | Op::LeakyRelu(a, _)
            | Op::Tanh(a)
            | Op::Sigmoid(a)
            | Op::Exp(a)
            | Op::SoftmaxRows(a)
            | Op::SliceCols(a, _, _)
            | Op::GatherRows(a, _)
            | Op::BroadcastRows(a)
            | Op::MeanRows(a)
            | Op::SumRows(a)
            | Op::MeanAll(a)
            | Op::SumAll(a)
            | Op::HadamardConst(a, _)
            | Op::Reshape(a)
            | Op::SumRowGroups(a, _)
            | Op::SoftmaxCrossEntropy(a, _)
            | Op::GradReverse(a, _) => vec![*a],
            Op::ConcatCols(parts) | Op::ConcatRows(parts) => parts.clone(),
            Op::FusedAffine(x, w, b, _) => vec![*x, *w, *b],
            Op::LstmCell { x, h, c, w, b, .. } => vec![*x, *h, *c, *w, *b],
        }
    }

    /// Records a computed node. Every forward op funnels through here with
    /// the [`OpTimer`] it started before computing, making this the single
    /// forward-side profiler choke point: elapsed wall-clock and the bytes
    /// the op freshly allocated attribute to the op's kind and the current
    /// profiling phase. Bytes come from draining the thread's pending
    /// fresh-allocation tally (see `crate::pool`), so pool reuse and
    /// `Arc`-shared parameter leaves count as zero — only genuine heap
    /// allocations show up in profile byte lines. With profiling disabled
    /// the timer is inert and `record_op` returns immediately.
    ///
    /// The health tripwire probes every value here too ([`health::check_tensor`]),
    /// one relaxed atomic load when disabled. An armed tripwire supersedes the
    /// `all_finite` debug assert: non-finite values are then observed and
    /// policed by the configured policy instead of aborting debug builds.
    fn push(&mut self, timer: OpTimer, mut value: Tensor, op: Op, needs_grad: bool) -> Var {
        if health::should_inject() {
            // Fault-injection hook (ADAPTRAJ_HEALTH_INJECT_NAN=<op-index>):
            // poison this op's output so the tripwire→policy→doctor path can
            // be exercised end to end on an otherwise healthy model.
            if let Some(x) = value.data_mut().first_mut() {
                *x = f32::NAN;
            }
        }
        health::check_tensor(op.kind(), value.data());
        debug_assert!(
            health::tripwire_enabled() || value.all_finite(),
            "non-finite value from {op:?}"
        );
        profile::record_op(
            op.kind(),
            profile::Dir::Forward,
            timer,
            pool::drain_pending_fresh_bytes(),
        );
        self.nodes.push(Node {
            value,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    fn any_needs(&self, vs: &[Var]) -> bool {
        vs.iter().any(|&v| self.needs(v))
    }

    /// A constant leaf: gradients do not flow into it.
    pub fn constant(&mut self, value: Tensor) -> Var {
        let t = profile::op_timer();
        self.push(t, value, Op::Leaf, false)
    }

    /// An input leaf that accumulates gradients (e.g. a Langevin latent).
    pub fn input(&mut self, value: Tensor) -> Var {
        let t = profile::op_timer();
        self.push(t, value, Op::Leaf, true)
    }

    /// Brings a stored parameter onto the tape; its gradient can later be
    /// routed back to the store via [`Tape::param_grads`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let t = profile::op_timer();
        let var = self.push(t, store.value(id).clone(), Op::Leaf, true);
        self.param_uses.push((id, var));
        var
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).add(self.value(b));
        let ng = self.any_needs(&[a, b]);
        self.push(t, v, Op::Add(a, b), ng)
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).sub(self.value(b));
        let ng = self.any_needs(&[a, b]);
        self.push(t, v, Op::Sub(a, b), ng)
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).mul(self.value(b));
        let ng = self.any_needs(&[a, b]);
        self.push(t, v, Op::Mul(a, b), ng)
    }

    pub fn neg(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).scale(-1.0);
        let ng = self.needs(a);
        self.push(t, v, Op::Neg(a), ng)
    }

    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).scale(alpha);
        let ng = self.needs(a);
        self.push(t, v, Op::Scale(a, alpha), ng)
    }

    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).map(|x| x + c);
        let ng = self.needs(a);
        self.push(t, v, Op::AddScalar(a), ng)
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).matmul(self.value(b));
        let ng = self.any_needs(&[a, b]);
        self.push(t, v, Op::MatMul(a, b), ng)
    }

    /// `a · bᵀ` as one node — the transpose is never materialized, in the
    /// value or in either gradient.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).matmul_nt(self.value(b));
        let ng = self.any_needs(&[a, b]);
        self.push(t, v, Op::MatMulNt(a, b), ng)
    }

    /// `aᵀ · b` as one node — the transpose is never materialized, in the
    /// value or in either gradient.
    pub fn matmul_tn(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).matmul_tn(self.value(b));
        let ng = self.any_needs(&[a, b]);
        self.push(t, v, Op::MatMulTn(a, b), ng)
    }

    pub fn transpose(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).transpose();
        let ng = self.needs(a);
        self.push(t, v, Op::Transpose(a), ng)
    }

    /// `[n,m] + [1,m]` broadcast (bias addition).
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).add_row_broadcast(self.value(bias));
        let ng = self.any_needs(&[a, bias]);
        self.push(t, v, Op::AddRowBroadcast(a, bias), ng)
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(t, v, Op::Relu(a), ng)
    }

    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).map(|x| if x > 0.0 { x } else { slope * x });
        let ng = self.needs(a);
        self.push(t, v, Op::LeakyRelu(a, slope), ng)
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).map(f32::tanh);
        let ng = self.needs(a);
        self.push(t, v, Op::Tanh(a), ng)
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.needs(a);
        self.push(t, v, Op::Sigmoid(a), ng)
    }

    pub fn exp(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).map(f32::exp);
        let ng = self.needs(a);
        self.push(t, v, Op::Exp(a), ng)
    }

    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).softmax_rows();
        let ng = self.needs(a);
        self.push(t, v, Op::SoftmaxRows(a), ng)
    }

    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let t = profile::op_timer();
        let vals: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_cols(&vals);
        let ng = self.any_needs(parts);
        let op = if ng {
            Op::ConcatCols(parts.to_vec())
        } else {
            Op::NoGrad("concat_cols")
        };
        self.push(t, v, op, ng)
    }

    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let t = profile::op_timer();
        let vals: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_rows(&vals);
        let ng = self.any_needs(parts);
        let op = if ng {
            Op::ConcatRows(parts.to_vec())
        } else {
            Op::NoGrad("concat_rows")
        };
        self.push(t, v, op, ng)
    }

    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).slice_cols(start, end);
        let ng = self.needs(a);
        self.push(t, v, Op::SliceCols(a, start, end), ng)
    }

    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).gather_rows(indices);
        let ng = self.needs(a);
        let op = if ng {
            Op::GatherRows(a, indices.to_vec())
        } else {
            Op::NoGrad("gather_rows")
        };
        self.push(t, v, op, ng)
    }

    /// Repeats a `1 x m` row `n` times.
    pub fn broadcast_rows(&mut self, a: Var, n: usize) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).broadcast_rows(n);
        let ng = self.needs(a);
        self.push(t, v, Op::BroadcastRows(a), ng)
    }

    pub fn mean_rows(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).mean_rows();
        let ng = self.needs(a);
        self.push(t, v, Op::MeanRows(a), ng)
    }

    pub fn sum_rows(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).sum_rows();
        let ng = self.needs(a);
        self.push(t, v, Op::SumRows(a), ng)
    }

    /// Mean over all elements, as a `1 x 1` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = Tensor::scalar(self.value(a).mean());
        let ng = self.needs(a);
        self.push(t, v, Op::MeanAll(a), ng)
    }

    /// Sum over all elements, as a `1 x 1` scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let t = profile::op_timer();
        let v = Tensor::scalar(self.value(a).sum());
        let ng = self.needs(a);
        self.push(t, v, Op::SumAll(a), ng)
    }

    /// Gradient-reversal layer (Ganin & Lempitsky): identity in the
    /// forward pass, `-lambda ·` in the backward pass. The building block
    /// of domain-adversarial training — a classifier downstream of this op
    /// learns to predict the domain while everything upstream learns to
    /// prevent it.
    pub fn grad_reverse(&mut self, a: Var, lambda: f32) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).clone();
        let ng = self.needs(a);
        self.push(t, v, Op::GradReverse(a, lambda), ng)
    }

    /// Elementwise product with a constant mask (dropout, padding masks).
    pub fn hadamard_const(&mut self, a: Var, mask: Tensor) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).mul(&mask);
        let ng = self.needs(a);
        self.push(t, v, Op::HadamardConst(a, mask), ng)
    }

    /// Row-major reinterpretation under a new shape; must conserve the
    /// element count. Backward reshapes the gradient back.
    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).reshape(rows, cols);
        let ng = self.needs(a);
        self.push(t, v, Op::Reshape(a), ng)
    }

    /// Sums each consecutive group of `k` rows: `[g*k, m] -> [g, m]`.
    /// Backward repeats each output row's gradient over its `k` inputs.
    pub fn sum_row_groups(&mut self, a: Var, k: usize) -> Var {
        let t = profile::op_timer();
        let v = self.value(a).sum_row_groups(k);
        let ng = self.needs(a);
        self.push(t, v, Op::SumRowGroups(a, k), ng)
    }

    /// Fused softmax + cross-entropy over class-index targets, averaged over
    /// rows. Numerically stable; returns a `1 x 1` loss.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let t = profile::op_timer();
        let lv = self.value(logits);
        assert_eq!(lv.rows(), targets.len(), "one target class per logits row");
        let probs = lv.softmax_rows();
        let n = targets.len().max(1) as f32;
        let mut loss = 0.0;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < lv.cols(), "target class {t} out of range");
            loss -= probs.at(r, t).max(1e-12).ln();
        }
        let ng = self.needs(logits);
        self.push(
            t,
            Tensor::scalar(loss / n),
            Op::SoftmaxCrossEntropy(logits, targets.to_vec()),
            ng,
        )
    }

    // ---- composite helpers -------------------------------------------------

    /// Mean squared error against a constant target: `mean((a - t)^2)`.
    pub fn mse_to(&mut self, a: Var, target: &Tensor) -> Var {
        let t = self.constant(target.clone());
        let d = self.sub(a, t);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    /// Sum of squared errors against a constant target (the paper's
    /// `L_base`, Eq. 8, uses summed squared L2).
    pub fn sse_to(&mut self, a: Var, target: &Tensor) -> Var {
        let t = self.constant(target.clone());
        let d = self.sub(a, t);
        let sq = self.mul(d, d);
        self.sum_all(sq)
    }

    /// Scale-invariant MSE (Eq. 14): `1/m · ‖d‖² − 1/m² · (Σd)²` per row
    /// block, computed over the whole tensor with `m = element count`.
    pub fn simse_to(&mut self, a: Var, target: &Tensor) -> Var {
        let m = target.len() as f32;
        let t = self.constant(target.clone());
        let d = self.sub(a, t);
        let sq = self.mul(d, d);
        let l2 = self.sum_all(sq);
        let term1 = self.scale(l2, 1.0 / m);
        let s = self.sum_all(d);
        let s2 = self.mul(s, s);
        let term2 = self.scale(s2, 1.0 / (m * m));
        self.sub(term1, term2)
    }

    /// Soft subspace orthogonality (Eq. 20): `‖Aᵀ B‖_F²`. The gram matrix
    /// is one [`Tape::matmul_tn`] node, so no transpose is ever
    /// materialized — forward or backward.
    pub fn frob_sq_of_gram(&mut self, a: Var, b: Var) -> Var {
        let g = self.matmul_tn(a, b);
        let sq = self.mul(g, g);
        self.sum_all(sq)
    }

    /// Affine map `x·W + b` with broadcast bias — one fused node.
    pub fn affine(&mut self, x: Var, w: Var, b: Var) -> Var {
        self.fused_affine(x, w, b, FusedAct::Identity)
    }

    /// `act(x·W + b)` as a single node: the matmul output is biased and
    /// activated in place, so the pre-activation tensor, the bias-broadcast
    /// copy, and the activation output never exist as separate buffers.
    /// Values and gradients are bit-identical to the unfused
    /// matmul → add_row_broadcast → activation composition.
    pub fn fused_affine(&mut self, x: Var, w: Var, b: Var, act: FusedAct) -> Var {
        let t = profile::op_timer();
        let mut v = self.value(x).matmul(self.value(w));
        let bv = self.value(b);
        debug_assert_eq!(bv.rows(), 1, "bias must be a row vector");
        debug_assert_eq!(bv.cols(), v.cols(), "bias width mismatch");
        let cols = v.cols();
        let bias = bv.data();
        for row in v.data_mut().chunks_exact_mut(cols.max(1)) {
            for (o, &bj) in row.iter_mut().zip(bias) {
                *o = act.apply(*o + bj);
            }
        }
        let ng = self.any_needs(&[x, w, b]);
        self.push(t, v, Op::FusedAffine(x, w, b, act), ng)
    }

    /// One LSTM recurrence step as a single node. Gate layout in the fused
    /// projection `W: [in+hidden, 4·hidden]` is `[i | f | g | o]`; the
    /// returned value is `[h' | c']` (`[n, 2·hidden]`), to be split with
    /// [`Tape::slice_cols`]. Values and gradients are bit-identical to the
    /// unfused concat → affine → slice/activate → blend composition, but
    /// the step records one node instead of fifteen.
    pub fn lstm_cell(&mut self, x: Var, h: Var, c: Var, w: Var, b: Var) -> Var {
        let t = profile::op_timer();
        let (xv, hv, cv) = (self.value(x), self.value(h), self.value(c));
        let (wv, bv) = (self.value(w), self.value(b));
        let n = xv.rows();
        let hid = hv.cols();
        assert_eq!(hv.rows(), n, "h batch mismatch");
        assert_eq!(cv.shape(), (n, hid), "c shape mismatch");
        assert_eq!(wv.rows(), xv.cols() + hid, "W height mismatch");
        assert_eq!(wv.cols(), 4 * hid, "W must pack 4 gates");
        assert_eq!(bv.shape(), (1, 4 * hid), "bias shape mismatch");

        let xh = Tensor::concat_cols(&[xv, hv]);
        let mut gates = xh.matmul(wv);
        xh.recycle();
        // Cell candidate gate is tanh; i/f/o are sigmoid. Per-element math
        // and element order match the obvious single branchy loop exactly —
        // the segments exist so the hot loops carry no per-element branch
        // or bounds arithmetic (the transcendental calls themselves are the
        // scalar libm ones the goldens pin).
        let bias = bv.data();
        for row in gates.data_mut().chunks_exact_mut(4 * hid) {
            for (o, &bj) in row[..2 * hid].iter_mut().zip(&bias[..2 * hid]) {
                *o = 1.0 / (1.0 + (-(*o + bj)).exp());
            }
            for (o, &bj) in row[2 * hid..3 * hid]
                .iter_mut()
                .zip(&bias[2 * hid..3 * hid])
            {
                *o = (*o + bj).tanh();
            }
            for (o, &bj) in row[3 * hid..].iter_mut().zip(&bias[3 * hid..]) {
                *o = 1.0 / (1.0 + (-(*o + bj)).exp());
            }
        }

        let mut c_act = Tensor::zeros(n, hid);
        let mut value = Tensor::zeros(n, 2 * hid);
        for r in 0..n {
            let (gi, rest) = gates.row_slice(r).split_at(hid);
            let (gf, rest) = rest.split_at(hid);
            let (gg, go) = rest.split_at(hid);
            let cprev = cv.row_slice(r);
            let carow = c_act.row_slice_mut(r);
            let (vh, vc) = value.row_slice_mut(r).split_at_mut(hid);
            for j in 0..hid {
                let cn = gf[j] * cprev[j] + gi[j] * gg[j];
                carow[j] = cn.tanh();
                vh[j] = go[j] * carow[j];
                vc[j] = cn;
            }
        }

        let ng = self.any_needs(&[x, h, c, w, b]);
        self.push(
            t,
            value,
            Op::LstmCell {
                x,
                h,
                c,
                w,
                b,
                gates,
                c_act,
            },
            ng,
        )
    }

    // ---- backward ----------------------------------------------------------

    /// Runs the chain rule from a scalar root. Panics if the root is not
    /// `1 x 1`.
    pub fn backward(&self, root: Var) -> Grads {
        assert_eq!(
            self.value(root).shape(),
            (1, 1),
            "backward root must be scalar"
        );
        let start = std::time::Instant::now();
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[root.0] = Some(Tensor::scalar(1.0));

        for idx in (0..=root.0).rev() {
            if !self.nodes[idx].needs_grad {
                continue;
            }
            let Some(g) = grads[idx].take() else { continue };
            // Backward-side profiler choke point, mirroring `push`: the
            // whole chain-rule step for this node attributes to its op
            // kind. Inert (one atomic load) when profiling is disabled.
            let t = profile::op_timer();
            self.accumulate_parents(idx, &g, &mut grads);
            profile::record_op(self.nodes[idx].op.kind(), profile::Dir::Backward, t, 0);
            grads[idx] = Some(g);
        }
        tape_metrics().observe_backward(self.nodes.len(), start.elapsed());
        Grads { by_node: grads }
    }

    fn add_grad(&self, grads: &mut [Option<Tensor>], v: Var, delta: Tensor) {
        if !self.nodes[v.0].needs_grad {
            // A delta computed for a no-grad parent still owns a pooled
            // buffer — retire it rather than dropping it on the floor.
            delta.recycle();
            return;
        }
        match &mut grads[v.0] {
            Some(g) => {
                g.axpy(1.0, &delta);
                delta.recycle();
            }
            slot @ None => *slot = Some(delta),
        }
    }

    fn accumulate_parents(&self, idx: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        match &self.nodes[idx].op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.add_grad(grads, *a, g.clone());
                self.add_grad(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                self.add_grad(grads, *a, g.clone());
                self.add_grad(grads, *b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                self.add_grad(grads, *a, g.mul(self.value(*b)));
                self.add_grad(grads, *b, g.mul(self.value(*a)));
            }
            Op::Neg(a) => self.add_grad(grads, *a, g.scale(-1.0)),
            Op::Scale(a, alpha) => self.add_grad(grads, *a, g.scale(*alpha)),
            Op::AddScalar(a) => self.add_grad(grads, *a, g.clone()),
            Op::MatMul(a, b) => {
                // dA = g·Bᵀ, dB = Aᵀ·g via the transpose-free kernels:
                // same per-element accumulation order and zero-skip as the
                // old transpose-then-matmul composition, so gradients are
                // bit-identical with no transpose temporaries.
                let da = g.matmul_nt(self.value(*b));
                let db = self.value(*a).matmul_tn(g);
                self.add_grad(grads, *a, da);
                self.add_grad(grads, *b, db);
            }
            Op::MatMulNt(a, b) => {
                // y = A·Bᵀ: dA = g·B, dB = gᵀ·A.
                let da = g.matmul(self.value(*b));
                let db = g.matmul_tn(self.value(*a));
                self.add_grad(grads, *a, da);
                self.add_grad(grads, *b, db);
            }
            Op::MatMulTn(a, b) => {
                // y = Aᵀ·B: dA = B·gᵀ, dB = A·g.
                let da = self.value(*b).matmul_nt(g);
                let db = self.value(*a).matmul(g);
                self.add_grad(grads, *a, da);
                self.add_grad(grads, *b, db);
            }
            Op::Transpose(a) => self.add_grad(grads, *a, g.transpose()),
            Op::AddRowBroadcast(a, bias) => {
                self.add_grad(grads, *a, g.clone());
                self.add_grad(grads, *bias, g.sum_rows());
            }
            Op::Relu(a) => {
                let mask = self.value(*a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                let dx = g.mul(&mask);
                mask.recycle();
                self.add_grad(grads, *a, dx);
            }
            Op::LeakyRelu(a, slope) => {
                let s = *slope;
                let mask = self.value(*a).map(|x| if x > 0.0 { 1.0 } else { s });
                let dx = g.mul(&mask);
                mask.recycle();
                self.add_grad(grads, *a, dx);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[idx].value;
                let dy = y.map(|t| 1.0 - t * t);
                let dx = g.mul(&dy);
                dy.recycle();
                self.add_grad(grads, *a, dx);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[idx].value;
                let dy = y.map(|s| s * (1.0 - s));
                let dx = g.mul(&dy);
                dy.recycle();
                self.add_grad(grads, *a, dx);
            }
            Op::Exp(a) => {
                let y = &self.nodes[idx].value;
                self.add_grad(grads, *a, g.mul(y));
            }
            Op::SoftmaxRows(a) => {
                // dx = y ⊙ (g − rowdot(g, y))
                let y = &self.nodes[idx].value;
                let mut dx = Tensor::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let yr = y.row_slice(r);
                    let gr = g.row_slice(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                    for c in 0..y.cols() {
                        dx.set(r, c, yr[c] * (gr[c] - dot));
                    }
                }
                self.add_grad(grads, *a, dx);
            }
            Op::ConcatCols(parts) => {
                let mut start = 0;
                for &p in parts {
                    let w = self.value(p).cols();
                    self.add_grad(grads, p, g.slice_cols(start, start + w));
                    start += w;
                }
            }
            Op::ConcatRows(parts) => {
                let mut start = 0;
                for &p in parts {
                    let h = self.value(p).rows();
                    let rows: Vec<usize> = (start..start + h).collect();
                    self.add_grad(grads, p, g.gather_rows(&rows));
                    start += h;
                }
            }
            Op::SliceCols(a, start, end) => {
                let av = self.value(*a);
                let mut dx = Tensor::zeros(av.rows(), av.cols());
                for r in 0..av.rows() {
                    dx.row_slice_mut(r)[*start..*end].copy_from_slice(g.row_slice(r));
                }
                self.add_grad(grads, *a, dx);
            }
            Op::GatherRows(a, indices) => {
                let av = self.value(*a);
                let mut dx = Tensor::zeros(av.rows(), av.cols());
                for (out_r, &src_r) in indices.iter().enumerate() {
                    let gr = g.row_slice(out_r);
                    for (d, &gv) in dx.row_slice_mut(src_r).iter_mut().zip(gr) {
                        *d += gv;
                    }
                }
                self.add_grad(grads, *a, dx);
            }
            Op::BroadcastRows(a) => self.add_grad(grads, *a, g.sum_rows()),
            Op::MeanRows(a) => {
                let n = self.value(*a).rows();
                let scaled = g.scale(1.0 / n as f32);
                let dx = scaled.broadcast_rows(n);
                scaled.recycle();
                self.add_grad(grads, *a, dx);
            }
            Op::SumRows(a) => {
                let n = self.value(*a).rows();
                self.add_grad(grads, *a, g.broadcast_rows(n));
            }
            Op::MeanAll(a) => {
                let av = self.value(*a);
                let val = g.item() / av.len() as f32;
                self.add_grad(grads, *a, Tensor::full(av.rows(), av.cols(), val));
            }
            Op::SumAll(a) => {
                let av = self.value(*a);
                self.add_grad(grads, *a, Tensor::full(av.rows(), av.cols(), g.item()));
            }
            Op::HadamardConst(a, mask) => self.add_grad(grads, *a, g.mul(mask)),
            Op::Reshape(a) => {
                let (r, c) = self.value(*a).shape();
                self.add_grad(grads, *a, g.reshape(r, c));
            }
            Op::SumRowGroups(a, k) => {
                self.add_grad(grads, *a, g.repeat_rows_each(*k));
            }
            Op::GradReverse(a, lambda) => {
                self.add_grad(grads, *a, g.scale(-lambda));
            }
            Op::SoftmaxCrossEntropy(logits, targets) => {
                let lv = self.value(*logits);
                let mut dx = lv.softmax_rows();
                let scale = g.item() / targets.len().max(1) as f32;
                for (r, &t) in targets.iter().enumerate() {
                    let v = dx.at(r, t);
                    dx.set(r, t, v - 1.0);
                }
                let out = dx.scale(scale);
                dx.recycle();
                self.add_grad(grads, *logits, out);
            }
            Op::FusedAffine(x, w, b, act) => {
                // d_pre = g ⊙ act'(y), with the derivative reconstructed
                // from the node's own output; then the three affine
                // gradients exactly as the unfused composition produced
                // them: dx = d_pre·Wᵀ, dW = xᵀ·d_pre, db = Σ_rows d_pre.
                let y = &self.nodes[idx].value;
                let dpre = match act {
                    FusedAct::Identity => g.clone(),
                    a => g.zip_map(y, |gv, yv| gv * a.dmask_from_output(yv)),
                };
                self.add_grad(grads, *x, dpre.matmul_nt(self.value(*w)));
                self.add_grad(grads, *w, self.value(*x).matmul_tn(&dpre));
                self.add_grad(grads, *b, dpre.sum_rows());
                dpre.recycle();
            }
            Op::LstmCell {
                x,
                h,
                c,
                w,
                b,
                gates,
                c_act,
            } => {
                // Incoming g is [dh' | dc'] ([n, 2·hidden]). Walk the cell
                // equations backwards in the exact order (and with the
                // exact expressions) of the unfused graph, producing the
                // post-gate-activation gradient d_pre [n, 4·hidden], then
                // route it through the affine and the input concat.
                let n = c_act.rows();
                let hid = c_act.cols();
                let cv = self.value(*c);
                let mut dpre = Tensor::zeros(n, 4 * hid);
                let mut dc_prev = Tensor::zeros(n, hid);
                for r in 0..n {
                    let (gi, rest) = gates.row_slice(r).split_at(hid);
                    let (gf, rest) = rest.split_at(hid);
                    let (gg, go) = rest.split_at(hid);
                    let carow = c_act.row_slice(r);
                    let cprev = cv.row_slice(r);
                    let (grh, grc) = g.row_slice(r).split_at(hid);
                    let (dpi, rest) = dpre.row_slice_mut(r).split_at_mut(hid);
                    let (dpf, rest) = rest.split_at_mut(hid);
                    let (dpg, dpo) = rest.split_at_mut(hid);
                    let dcp = dc_prev.row_slice_mut(r);
                    for j in 0..hid {
                        let (i_, f_, g_, o_) = (gi[j], gf[j], gg[j], go[j]);
                        let ca = carow[j];
                        let (dh, dc_in) = (grh[j], grc[j]);
                        let do_ = dh * ca;
                        let dca = dh * o_;
                        // dc' = downstream dc + tanh backward, in the same
                        // accumulation order as the unfused graph.
                        let dc = dc_in + dca * (1.0 - ca * ca);
                        dcp[j] = dc * f_;
                        let df = dc * cprev[j];
                        let di = dc * g_;
                        let dg = dc * i_;
                        dpi[j] = di * (i_ * (1.0 - i_));
                        dpf[j] = df * (f_ * (1.0 - f_));
                        dpg[j] = dg * (1.0 - g_ * g_);
                        dpo[j] = do_ * (o_ * (1.0 - o_));
                    }
                }
                self.add_grad(grads, *b, dpre.sum_rows());
                let (xv, hv) = (self.value(*x), self.value(*h));
                let in_dim = xv.cols();
                let dxh = dpre.matmul_nt(self.value(*w));
                let xh = Tensor::concat_cols(&[xv, hv]);
                self.add_grad(grads, *w, xh.matmul_tn(&dpre));
                xh.recycle();
                dpre.recycle();
                self.add_grad(grads, *x, dxh.slice_cols(0, in_dim));
                self.add_grad(grads, *h, dxh.slice_cols(in_dim, in_dim + hid));
                dxh.recycle();
                self.add_grad(grads, *c, dc_prev);
            }
            // Recorded only for nodes with `needs_grad == false`, which the
            // backward loop never visits.
            Op::NoGrad(_) => unreachable!("NoGrad nodes never need gradients"),
        }
    }

    /// Gradients of this pass's parameters, summed over repeated uses,
    /// as `(id, grad)` pairs. Parameters that did not influence the loss are
    /// omitted.
    pub fn param_grads(&self, grads: &Grads) -> Vec<(ParamId, Tensor)> {
        let mut out: Vec<(ParamId, Tensor)> = Vec::with_capacity(self.param_uses.len());
        for &(id, var) in &self.param_uses {
            if let Some(g) = grads.get(var) {
                if let Some((_, acc)) = out.iter_mut().find(|(i, _)| *i == id) {
                    acc.axpy(1.0, g);
                } else {
                    out.push((id, g.clone()));
                }
            }
        }
        out
    }

    /// Like [`Tape::param_grads`] but consumes `grads`, *moving* each
    /// gradient buffer into the result instead of cloning it and retiring
    /// every unclaimed buffer into the thread's pool. Repeated parameter
    /// uses are summed in the same order as `param_grads`, so the values
    /// are bit-identical — this is the allocation-free variant the
    /// training hot path uses.
    pub fn take_param_grads(&self, grads: Grads) -> Vec<(ParamId, Tensor)> {
        let mut by_node = grads.by_node;
        let mut out: Vec<(ParamId, Tensor)> = Vec::with_capacity(self.param_uses.len());
        for &(id, var) in &self.param_uses {
            if let Some(g) = by_node.get_mut(var.0).and_then(Option::take) {
                if let Some((_, acc)) = out.iter_mut().find(|(i, _)| *i == id) {
                    acc.axpy(1.0, &g);
                    g.recycle();
                } else {
                    out.push((id, g));
                }
            }
        }
        for g in by_node.into_iter().flatten() {
            g.recycle();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Central finite-difference check of `d loss / d input` for a scalar
    /// loss built by `f` from a single input tensor.
    fn check_grad(input: Tensor, f: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.input(input.clone());
        let loss = f(&mut tape, x);
        let grads = tape.backward(loss);
        let analytic = grads.expect(x).clone();

        let eps = 1e-2f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;

            let mut tp = Tape::new();
            let xp = tp.input(plus);
            let lp = f(&mut tp, xp);
            let mut tm = Tape::new();
            let xm = tm.input(minus);
            let lm = f(&mut tm, xm);

            let numeric = (tp.value(lp).item() - tm.value(lm).item()) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn rand_t(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        Tensor::randn(rows, cols, 0.0, 1.0, &mut rng)
    }

    #[test]
    fn grad_of_simple_product() {
        // loss = sum(x * x) -> d/dx = 2x
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(&[1.0, -2.0, 3.0]));
        let sq = tape.mul(x, x);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        assert_eq!(grads.expect(x).data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn grad_matmul_chain_fd() {
        let w = rand_t(3, 2, 1);
        check_grad(
            rand_t(2, 3, 2),
            move |t, x| {
                let wv = t.constant(w.clone());
                let y = t.matmul(x, wv);
                let sq = t.mul(y, y);
                t.mean_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_activations_fd() {
        check_grad(
            rand_t(2, 4, 3),
            |t, x| {
                let a = t.tanh(x);
                let b = t.sigmoid(a);
                let c = t.relu(b);
                let d = t.leaky_relu(c, 0.1);
                t.sum_all(d)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_exp_fd() {
        check_grad(
            rand_t(2, 3, 17),
            |t, x| {
                let e = t.exp(x);
                t.mean_all(e)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_softmax_fd() {
        let target = rand_t(2, 4, 5);
        check_grad(
            rand_t(2, 4, 4),
            move |t, x| {
                let s = t.softmax_rows(x);
                t.mse_to(s, &target)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_concat_slice_fd() {
        check_grad(
            rand_t(2, 4, 6),
            |t, x| {
                let left = t.slice_cols(x, 0, 2);
                let right = t.slice_cols(x, 2, 4);
                let swapped = t.concat_cols(&[right, left]);
                let prod = t.mul(swapped, swapped);
                t.sum_all(prod)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_concat_rows_gather_fd() {
        check_grad(
            rand_t(3, 2, 7),
            |t, x| {
                let top = t.gather_rows(x, &[0, 1]);
                let again = t.gather_rows(x, &[2, 0]);
                let stacked = t.concat_rows(&[top, again]);
                let sq = t.mul(stacked, stacked);
                t.mean_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_broadcast_and_reduce_fd() {
        check_grad(
            rand_t(1, 3, 8),
            |t, x| {
                let wide = t.broadcast_rows(x, 4);
                let m = t.mean_rows(wide);
                let s = t.sum_rows(m);
                let sq = t.mul(s, s);
                t.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_bias_broadcast_fd() {
        let x = rand_t(3, 2, 9);
        check_grad(
            rand_t(1, 2, 10),
            move |t, b| {
                let xv = t.constant(x.clone());
                let y = t.add_row_broadcast(xv, b);
                let sq = t.mul(y, y);
                t.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_cross_entropy_fd() {
        check_grad(
            rand_t(3, 4, 11),
            |t, x| t.softmax_cross_entropy(x, &[1, 3, 0]),
            2e-2,
        );
    }

    #[test]
    fn grad_simse_fd() {
        let target = rand_t(2, 4, 13);
        check_grad(rand_t(2, 4, 12), move |t, x| t.simse_to(x, &target), 2e-2);
    }

    #[test]
    fn grad_frob_orthogonality_fd() {
        let b = rand_t(3, 2, 15);
        check_grad(
            rand_t(3, 2, 14),
            move |t, x| {
                let bv = t.constant(b.clone());
                t.frob_sq_of_gram(x, bv)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_matmul_nt_fd_both_slots() {
        let other = rand_t(4, 3, 21);
        check_grad(
            rand_t(2, 3, 20),
            {
                let other = other.clone();
                move |t, x| {
                    let o = t.constant(other.clone());
                    let y = t.matmul_nt(x, o);
                    let sq = t.mul(y, y);
                    t.mean_all(sq)
                }
            },
            1e-2,
        );
        let left = rand_t(2, 3, 22);
        check_grad(
            other,
            move |t, x| {
                let l = t.constant(left.clone());
                let y = t.matmul_nt(l, x);
                let sq = t.mul(y, y);
                t.mean_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_tn_fd_both_slots() {
        let other = rand_t(3, 4, 24);
        check_grad(
            rand_t(3, 2, 23),
            {
                let other = other.clone();
                move |t, x| {
                    let o = t.constant(other.clone());
                    let y = t.matmul_tn(x, o);
                    let sq = t.mul(y, y);
                    t.mean_all(sq)
                }
            },
            1e-2,
        );
        let left = rand_t(3, 2, 25);
        check_grad(
            other,
            move |t, x| {
                let l = t.constant(left.clone());
                let y = t.matmul_tn(l, x);
                let sq = t.mul(y, y);
                t.mean_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn matmul_nt_tn_ops_match_transpose_compositions_bitwise() {
        let a = rand_t(3, 5, 26);
        let b = rand_t(4, 5, 27);
        let mut tape = Tape::new();
        let (av, bv) = (tape.input(a.clone()), tape.input(b.clone()));
        let fused = tape.matmul_nt(av, bv);
        let bt = tape.transpose(bv);
        let naive = tape.matmul(av, bt);
        assert_eq!(tape.value(fused), tape.value(naive));

        let c = rand_t(5, 3, 28);
        let d = rand_t(5, 4, 29);
        let cv = tape.input(c);
        let dv = tape.constant(d);
        let fused_tn = tape.matmul_tn(cv, dv);
        let ct = tape.transpose(cv);
        let naive_tn = tape.matmul(ct, dv);
        assert_eq!(tape.value(fused_tn), tape.value(naive_tn));
    }

    #[test]
    fn fused_affine_matches_unfused_composition_bitwise() {
        // Every fusable activation: value and all three gradients must be
        // bit-for-bit what the matmul → add_row_broadcast → activation
        // composition produces — the contract that keeps goldens stable.
        for act in [
            FusedAct::Identity,
            FusedAct::Relu,
            FusedAct::LeakyRelu(0.01),
            FusedAct::Tanh,
            FusedAct::Sigmoid,
        ] {
            let x = rand_t(4, 3, 60);
            let w = rand_t(3, 5, 61);
            let b = rand_t(1, 5, 62);

            let mut t1 = Tape::new();
            let (xv, wv, bv) = (
                t1.input(x.clone()),
                t1.input(w.clone()),
                t1.input(b.clone()),
            );
            let y1 = t1.fused_affine(xv, wv, bv, act);
            let s1 = t1.mul(y1, y1);
            let l1 = t1.sum_all(s1);
            let g1 = t1.backward(l1);

            let mut t2 = Tape::new();
            let (xu, wu, bu) = (t2.input(x), t2.input(w), t2.input(b));
            let mm = t2.matmul(xu, wu);
            let pre = t2.add_row_broadcast(mm, bu);
            let y2 = match act {
                FusedAct::Identity => pre,
                FusedAct::Relu => t2.relu(pre),
                FusedAct::LeakyRelu(s) => t2.leaky_relu(pre, s),
                FusedAct::Tanh => t2.tanh(pre),
                FusedAct::Sigmoid => t2.sigmoid(pre),
            };
            let s2 = t2.mul(y2, y2);
            let l2 = t2.sum_all(s2);
            let g2 = t2.backward(l2);

            assert_eq!(t1.value(y1), t2.value(y2), "{act:?} value drifted");
            for (fused, unfused, name) in [(xv, xu, "dx"), (wv, wu, "dw"), (bv, bu, "db")] {
                assert_eq!(
                    g1.expect(fused),
                    g2.expect(unfused),
                    "{act:?} {name} drifted"
                );
            }
        }
    }

    #[test]
    fn lstm_cell_matches_unfused_step_bitwise() {
        // One fused node vs the fifteen-node composition: h', c', and all
        // five input gradients must be bit-identical.
        let (n, in_dim, hid) = (3, 2, 4);
        let x = rand_t(n, in_dim, 63);
        let h0 = rand_t(n, hid, 64);
        let c0 = rand_t(n, hid, 65);
        let w = rand_t(in_dim + hid, 4 * hid, 66);
        let b = rand_t(1, 4 * hid, 67);

        let mut t1 = Tape::new();
        let xv = t1.input(x.clone());
        let hv = t1.input(h0.clone());
        let cv = t1.input(c0.clone());
        let wv = t1.input(w.clone());
        let bv = t1.input(b.clone());
        let hc = t1.lstm_cell(xv, hv, cv, wv, bv);
        let h1 = t1.slice_cols(hc, 0, hid);
        let c1 = t1.slice_cols(hc, hid, 2 * hid);
        let sq_h = t1.mul(h1, h1);
        let sq_c = t1.mul(c1, c1);
        let lh = t1.sum_all(sq_h);
        let lc = t1.sum_all(sq_c);
        let l1 = t1.add(lh, lc);
        let g1 = t1.backward(l1);

        let mut t2 = Tape::new();
        let xu = t2.input(x);
        let hu = t2.input(h0);
        let cu = t2.input(c0);
        let wu = t2.input(w);
        let bu = t2.input(b);
        let xh = t2.concat_cols(&[xu, hu]);
        let mm = t2.matmul(xh, wu);
        let gates = t2.add_row_broadcast(mm, bu);
        let i_gate = t2.slice_cols(gates, 0, hid);
        let f_gate = t2.slice_cols(gates, hid, 2 * hid);
        let g_gate = t2.slice_cols(gates, 2 * hid, 3 * hid);
        let o_gate = t2.slice_cols(gates, 3 * hid, 4 * hid);
        let i = t2.sigmoid(i_gate);
        let f = t2.sigmoid(f_gate);
        let g = t2.tanh(g_gate);
        let o = t2.sigmoid(o_gate);
        let fc = t2.mul(f, cu);
        let ig = t2.mul(i, g);
        let c2 = t2.add(fc, ig);
        let c_act = t2.tanh(c2);
        let h2 = t2.mul(o, c_act);
        let sq_h = t2.mul(h2, h2);
        let sq_c = t2.mul(c2, c2);
        let lh = t2.sum_all(sq_h);
        let lc = t2.sum_all(sq_c);
        let l2 = t2.add(lh, lc);
        let g2 = t2.backward(l2);

        assert_eq!(t1.value(h1), t2.value(h2), "h' drifted");
        assert_eq!(t1.value(c1), t2.value(c2), "c' drifted");
        for (fused, unfused, name) in [
            (xv, xu, "dx"),
            (hv, hu, "dh"),
            (cv, cu, "dc"),
            (wv, wu, "dw"),
            (bv, bu, "db"),
        ] {
            assert_eq!(g1.expect(fused), g2.expect(unfused), "{name} drifted");
        }
    }

    #[test]
    fn no_grad_concat_and_gather_store_sentinel_ops() {
        let mut tape = Tape::new();
        let c1 = tape.constant(Tensor::row(&[1.0, 2.0]));
        let c2 = tape.constant(Tensor::row(&[3.0]));
        let cat = tape.concat_cols(&[c1, c2]);
        let stack = tape.concat_rows(&[c1, c1]);
        let gath = tape.gather_rows(stack, &[1, 0]);
        // Values are unaffected; the ops just drop their operand lists.
        assert_eq!(tape.value(cat).data(), &[1.0, 2.0, 3.0]);
        assert_eq!(tape.value(gath).data(), &[1.0, 2.0, 1.0, 2.0]);
        // Profiler labels keep the original kind; parents are dropped.
        assert_eq!(tape.op_kind(cat), "concat_cols");
        assert_eq!(tape.op_kind(stack), "concat_rows");
        assert_eq!(tape.op_kind(gath), "gather_rows");
        assert!(!tape.needs_grad(cat));
        assert!(tape.parents(cat).is_empty());
        assert!(tape.parents(gath).is_empty());

        // With a grad-requiring operand the real op (and its parents) are
        // recorded as before.
        let x = tape.input(Tensor::row(&[4.0]));
        let live = tape.concat_cols(&[c1, x]);
        assert_eq!(tape.parents(live), vec![c1, x]);
        let s = tape.sum_all(live);
        let grads = tape.backward(s);
        assert_eq!(grads.expect(x).data(), &[1.0]);
    }

    #[test]
    fn reset_clears_nodes_and_recycles_buffers() {
        let pool_before = crate::pool::thread_stats();
        let mut tape = Tape::new();
        let x = tape.input(rand_t(16, 16, 30));
        let m = tape.matmul(x, x);
        let masked = tape.hadamard_const(m, Tensor::ones(16, 16));
        let loss = tape.mean_all(masked);
        let first = tape.value(loss).item();
        tape.backward(loss).recycle();

        tape.reset();
        assert!(tape.is_empty());
        assert!(
            crate::pool::thread_free_buffers() > 0,
            "reset retired no buffers into the pool"
        );

        // Same computation on the reused tape: identical result, with the
        // kernels now drawing from the pool.
        let x = tape.input(rand_t(16, 16, 30));
        let m = tape.matmul(x, x);
        let masked = tape.hadamard_const(m, Tensor::ones(16, 16));
        let loss = tape.mean_all(masked);
        assert_eq!(tape.value(loss).item().to_bits(), first.to_bits());
        let pool_after = crate::pool::thread_stats();
        assert!(
            pool_after.reuse_hits > pool_before.reuse_hits,
            "second pass did not reuse pooled buffers"
        );
    }

    #[test]
    fn grad_transpose_fd() {
        check_grad(
            rand_t(2, 3, 16),
            |t, x| {
                let xt = t.transpose(x);
                let prod = t.matmul(x, xt);
                t.sum_all(prod)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_reshape_fd() {
        let c = rand_t(3, 2, 40);
        check_grad(
            rand_t(2, 3, 41),
            move |t, x| {
                let r = t.reshape(x, 3, 2);
                let cv = t.constant(c.clone());
                let y = t.mul(r, cv);
                t.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_sum_row_groups_fd() {
        let c = rand_t(2, 3, 42);
        check_grad(
            rand_t(6, 3, 43),
            move |t, x| {
                let s = t.sum_row_groups(x, 3);
                let cv = t.constant(c.clone());
                let y = t.mul(s, cv);
                let sq = t.mul(y, y);
                t.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn sum_row_groups_matches_per_group_sum_rows_bitwise() {
        // The batched reduction must produce exactly what per-window
        // `sum_rows` over each group produces — the accumulation order
        // that keeps batched and per-window losses comparable.
        let x = rand_t(6, 4, 44);
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let grouped = tape.sum_row_groups(xv, 2);
        for g in 0..3 {
            let rows = tape.gather_rows(xv, &[2 * g, 2 * g + 1]);
            let summed = tape.sum_rows(rows);
            assert_eq!(
                tape.value(grouped).row_slice(g),
                tape.value(summed).data(),
                "group {g} drifted"
            );
        }
    }

    #[test]
    fn grad_hadamard_const_masks_flow() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(&[1.0, 2.0, 3.0]));
        let masked = tape.hadamard_const(x, Tensor::row(&[1.0, 0.0, 2.0]));
        let loss = tape.sum_all(masked);
        let grads = tape.backward(loss);
        assert_eq!(grads.expect(x).data(), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut tape = Tape::new();
        let c = tape.constant(Tensor::row(&[1.0, 2.0]));
        let x = tape.input(Tensor::row(&[3.0, 4.0]));
        let y = tape.mul(c, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert!(grads.get(c).is_none());
        assert_eq!(grads.expect(x).data(), &[1.0, 2.0]);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // loss = sum(x + x) -> d/dx = 2
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(&[5.0]));
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.expect(x).data(), &[2.0]);
    }

    #[test]
    fn cross_entropy_matches_uniform_logits() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros(2, 4));
        let loss = tape.softmax_cross_entropy(x, &[0, 2]);
        assert!((tape.value(loss).item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn simse_is_shift_insensitive_direction() {
        // A constant-offset error has lower SIMSE than an equal-magnitude
        // sign-alternating error (the "same direction" credit of Eq. 14).
        let target = Tensor::row(&[0.0, 0.0, 0.0, 0.0]);
        let mut t1 = Tape::new();
        let same = t1.input(Tensor::row(&[0.5, 0.5, 0.5, 0.5]));
        let l_same = t1.simse_to(same, &target);
        let mut t2 = Tape::new();
        let alt = t2.input(Tensor::row(&[0.5, -0.5, 0.5, -0.5]));
        let l_alt = t2.simse_to(alt, &target);
        assert!(t1.value(l_same).item() < t2.value(l_alt).item());
    }

    #[test]
    fn grad_reverse_forward_is_identity() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(&[1.5, -2.5]));
        let r = tape.grad_reverse(x, 0.7);
        assert_eq!(tape.value(r).data(), &[1.5, -2.5]);
        let s = tape.sum_all(r);
        let grads = tape.backward(s);
        assert_eq!(grads.expect(x).data(), &[-0.7, -0.7]);
    }

    #[test]
    fn unused_branches_get_no_gradient() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(&[1.0]));
        let y = tape.input(Tensor::row(&[2.0]));
        let _dead = tape.mul(x, y); // never reaches the loss
        let live = tape.scale(x, 2.0);
        let loss = tape.sum_all(live);
        let grads = tape.backward(loss);
        assert_eq!(grads.expect(x).data(), &[2.0]);
        assert!(grads.get(y).is_none(), "dead branch leaked gradient");
    }

    #[test]
    fn second_backward_pass_is_independent() {
        // Two backward calls on the same tape must not accumulate into
        // each other.
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(&[3.0]));
        let sq = tape.mul(x, x);
        let loss = tape.sum_all(sq);
        let g1 = tape.backward(loss);
        let g2 = tape.backward(loss);
        assert_eq!(g1.expect(x).data(), g2.expect(x).data());
    }

    #[test]
    #[should_panic(expected = "must be scalar")]
    fn backward_rejects_non_scalar_root() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(&[1.0, 2.0]));
        tape.backward(x);
    }

    #[test]
    fn backward_records_tape_metrics() {
        // Snapshot/delta keeps the assertions order-independent: the
        // global registry accumulates across every test in this binary.
        let before = adaptraj_obs::global().snapshot();
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(&[1.0, 2.0]));
        let sq = tape.mul(x, x);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        let delta = adaptraj_obs::global().snapshot().since(&before);
        assert!(delta.counter("tensor.backward_calls") >= 1);
        // x, x*x, sum -> three nodes on this tape's backward pass.
        assert!(delta.counter("tensor.tape_nodes_total") >= 3);
        assert!(delta.hist_count("tensor.backward_ms") >= 1);
        // Graph size lands in the distribution, not just the counter sum.
        assert!(delta.hist_count("tensor.tape_len") >= 1);
        assert!(delta.hist_count("tensor.backward_ns_per_node") >= 1);
        assert!(
            adaptraj_obs::global()
                .histogram("tensor.tape_len")
                .snapshot()
                .max
                >= 3.0
        );
    }

    #[test]
    fn profiler_attributes_tape_ops_by_kind_and_phase() {
        use adaptraj_obs::profile;
        profile::set_enabled(true);
        let snapshot = {
            let _phase = profile::phase("tape_test");
            let mut tape = Tape::new();
            let x = tape.input(Tensor::row(&[1.0, 2.0, 3.0]));
            let w = tape.constant(Tensor::col(&[1.0, 0.5, 2.0]));
            let y = tape.matmul(x, w);
            let sq = tape.mul(y, y);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            profile::snapshot().under("tape_test")
        };
        profile::set_enabled(false);

        let ops = snapshot.by_op();
        let get = |kind: &str| ops.iter().find(|r| r.kind == kind).cloned();
        let mm = get("matmul").expect("matmul profiled");
        assert_eq!(mm.fwd_calls, 1);
        assert_eq!(mm.bwd_calls, 1);
        // matmul result is 1x1 -> 4 bytes allocated forward.
        assert_eq!(mm.bytes, 4);
        let leaf = get("leaf").expect("leaves profiled");
        assert_eq!(leaf.fwd_calls, 2);
        // Leaves have no parents: the backward visit for `x` still counts.
        assert!(get("mul").unwrap().bwd_calls >= 1);

        let phases = snapshot.by_phase();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].phase, "tape_test");
        assert!(phases[0].fwd_ns > 0 && phases[0].bwd_ns > 0);
    }
}
