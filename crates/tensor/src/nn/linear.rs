//! Fully-connected layer.

use super::init::xavier_std;
use crate::param::{GroupId, ParamId, ParamStore};
use crate::rng::Rng;
use crate::tape::{FusedAct, Tape, Var};
use crate::tensor::Tensor;

/// `y = x·W + b` with `W: [in, out]`, `b: [1, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers weights in `store` under `group` with Xavier init.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        group: GroupId,
    ) -> Self {
        let std = xavier_std(in_dim, out_dim);
        let w = store.register(
            format!("{name}.w"),
            Tensor::randn(in_dim, out_dim, 0.0, std, rng),
            group,
        );
        let b = store.register(format!("{name}.b"), Tensor::zeros(1, out_dim), group);
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter handles `(w, b)`.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }

    /// Applies the affine map to `x: [n, in] -> [n, out]`.
    pub fn forward(&self, store: &ParamStore, tape: &mut Tape, x: Var) -> Var {
        self.forward_act(store, tape, x, FusedAct::Identity)
    }

    /// Applies `act(x·W + b)` as one fused tape node.
    pub fn forward_act(&self, store: &ParamStore, tape: &mut Tape, x: Var, act: FusedAct) -> Var {
        debug_assert_eq!(
            tape.value(x).cols(),
            self.in_dim,
            "Linear input width mismatch"
        );
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.fused_affine(x, w, b, act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::param::GradBuffer;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let lin = Linear::new(&mut store, &mut rng, "l", 3, 5, GroupId::DEFAULT);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(2, 3));
        let y = lin.forward(&store, &mut tape, x);
        // Zero input ⇒ output equals bias (zero-initialized).
        assert_eq!(tape.value(y).shape(), (2, 5));
        assert_eq!(tape.value(y).sum(), 0.0);
    }

    #[test]
    fn learns_identity_map() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let lin = Linear::new(&mut store, &mut rng, "l", 2, 2, GroupId::DEFAULT);
        let mut opt = Adam::new(0.05);
        let data = Tensor::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 0.5]);
        let mut last = f32::MAX;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let x = tape.constant(data.clone());
            let y = lin.forward(&store, &mut tape, x);
            let loss = tape.mse_to(y, &data);
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            opt.step(&mut store, &buf);
            last = tape.value(loss).item();
        }
        assert!(last < 1e-3, "loss {last}");
    }
}
