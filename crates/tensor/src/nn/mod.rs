//! Neural-network layers built on the autodiff tape.
//!
//! Layers are thin: they own [`ParamId`](crate::param::ParamId)s registered
//! in a shared [`ParamStore`](crate::param::ParamStore) and implement
//! `forward(&self, &ParamStore, &mut Tape, Var) -> Var`. Keeping parameters
//! out of the layer structs lets one store back several cooperating modules
//! (backbone + extractors + aggregator) with unified optimization and
//! per-group scheduling.

mod attention;
mod init;
mod linear;
mod lstm;
mod mlp;

pub use attention::{positional_encoding, TransformerEncoder};
pub use init::{kaiming_std, xavier_std};
pub use linear::Linear;
pub use lstm::{Lstm, LstmCell, LstmState};
pub use mlp::{Activation, Mlp};
