//! Multi-layer perceptron.

use super::linear::Linear;
use crate::param::{GroupId, ParamStore};
use crate::rng::Rng;
use crate::tape::{FusedAct, Tape, Var};

/// Hidden-layer nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    #[default]
    Relu,
    LeakyRelu,
    Tanh,
    Sigmoid,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// No nonlinearity (linear stack — used for pure projections).
    Identity,
}

impl Activation {
    fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu => tape.leaky_relu(x, 0.01),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Gelu => {
                // 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))
                let x2 = tape.mul(x, x);
                let x3 = tape.mul(x2, x);
                let inner = tape.scale(x3, 0.044715);
                let inner = tape.add(x, inner);
                let scaled = tape.scale(inner, 0.797_884_6); // √(2/π)
                let t = tape.tanh(scaled);
                let one_plus = tape.add_scalar(t, 1.0);
                let half_x = tape.scale(x, 0.5);
                tape.mul(half_x, one_plus)
            }
            Activation::Identity => x,
        }
    }

    /// The fused-affine form of this activation, when one exists. GELU's
    /// derivative is not recoverable from its output, so it stays a
    /// composite of elementwise ops.
    fn fused(self) -> Option<FusedAct> {
        match self {
            Activation::Relu => Some(FusedAct::Relu),
            Activation::LeakyRelu => Some(FusedAct::LeakyRelu(0.01)),
            Activation::Tanh => Some(FusedAct::Tanh),
            Activation::Sigmoid => Some(FusedAct::Sigmoid),
            Activation::Identity => Some(FusedAct::Identity),
            Activation::Gelu => None,
        }
    }
}

/// A stack of [`Linear`] layers with a shared hidden activation. The final
/// layer is linear unless `activate_output` is set.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    activate_output: bool,
}

impl Mlp {
    /// Builds an MLP along `dims` (e.g. `[in, hidden, out]` gives two
    /// layers). Panics if fewer than two dims are given.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        dims: &[usize],
        activation: Activation,
        group: GroupId,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.{i}"), w[0], w[1], group))
            .collect();
        Self {
            layers,
            activation,
            activate_output: false,
        }
    }

    /// Applies the hidden activation after the final layer too.
    pub fn with_output_activation(mut self) -> Self {
        self.activate_output = true;
        self
    }

    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass `[n, in] -> [n, out]`. Activated layers record a
    /// single fused affine+activation node when the activation supports it.
    pub fn forward(&self, store: &ParamStore, tape: &mut Tape, x: Var) -> Var {
        let last = self.layers.len() - 1;
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            let activated = i < last || self.activate_output;
            h = match self.activation.fused() {
                Some(act) if activated => layer.forward_act(store, tape, h, act),
                _ => {
                    let y = layer.forward(store, tape, h);
                    if activated {
                        self.activation.apply(tape, y)
                    } else {
                        y
                    }
                }
            };
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::param::GradBuffer;
    use crate::tensor::Tensor;

    #[test]
    fn shapes_through_stack() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            "m",
            &[4, 8, 8, 2],
            Activation::Relu,
            GroupId::DEFAULT,
        );
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!((mlp.in_dim(), mlp.out_dim()), (4, 2));
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(5, 4));
        let y = mlp.forward(&store, &mut tape, x);
        assert_eq!(tape.value(y).shape(), (5, 2));
    }

    #[test]
    fn learns_xor() {
        // Classic nonlinear sanity check: a linear model cannot fit XOR.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            "xor",
            &[2, 16, 1],
            Activation::Tanh,
            GroupId::DEFAULT,
        );
        let x = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let y = Tensor::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::MAX;
        for _ in 0..800 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let pred = mlp.forward(&store, &mut tape, xv);
            let loss = tape.mse_to(pred, &y);
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            opt.step(&mut store, &buf);
            last = tape.value(loss).item();
        }
        assert!(last < 0.01, "XOR loss {last}");
    }

    #[test]
    fn gelu_matches_reference_values() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::row(&[-2.0, -1.0, 0.0, 1.0, 2.0]));
        let y = Activation::Gelu.apply(&mut tape, x);
        let v = tape.value(y).data().to_vec();
        // Reference GELU(tanh approx) values.
        let expected = [-0.0454, -0.1588, 0.0, 0.8412, 1.9546];
        for (got, want) in v.iter().zip(expected) {
            assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
        // Gradient flows (finite, nonzero away from deep negatives).
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert!(g.expect(x).all_finite());
    }

    #[test]
    fn output_activation_bounds_range() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(5);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            "m",
            &[3, 4],
            Activation::Sigmoid,
            GroupId::DEFAULT,
        )
        .with_output_activation();
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::randn(10, 3, 0.0, 5.0, &mut rng));
        let y = mlp.forward(&store, &mut tape, x);
        assert!(tape
            .value(y)
            .data()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }
}
