//! Weight-initialization scales.

/// Xavier/Glorot standard deviation: `sqrt(2 / (fan_in + fan_out))`.
/// Suited to tanh/sigmoid layers (LSTM gates, fusion heads).
pub fn xavier_std(fan_in: usize, fan_out: usize) -> f32 {
    (2.0 / (fan_in + fan_out) as f32).sqrt()
}

/// Kaiming/He standard deviation: `sqrt(2 / fan_in)`. Suited to ReLU MLPs.
pub fn kaiming_std(fan_in: usize) -> f32 {
    (2.0 / fan_in as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_shrink_with_width() {
        assert!(xavier_std(256, 256) < xavier_std(16, 16));
        assert!(kaiming_std(256) < kaiming_std(16));
    }

    #[test]
    fn known_values() {
        assert!((xavier_std(8, 8) - 0.35355338).abs() < 1e-6);
        assert!((kaiming_std(8) - 0.5).abs() < 1e-6);
    }
}
