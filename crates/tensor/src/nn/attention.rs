//! Single-head self-attention blocks — the Transformer alternative for
//! the individual-mobility encoder (paper Sec. II-C cites Transformer
//! encoders as a drop-in for the LSTM).
//!
//! Operates on one sequence at a time (`[T, d]` — timesteps as rows).
//! Kept deliberately small: single head, residual connections, a
//! position-wise feed-forward, and sinusoidal positional encodings; no
//! layer norm (sequences here are 8 steps and the surrounding model keeps
//! activations bounded).

use super::linear::Linear;
use super::mlp::{Activation, Mlp};
use crate::param::{GroupId, ParamStore};
use crate::rng::Rng;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Sinusoidal positional encoding `[len, dim]`.
pub fn positional_encoding(len: usize, dim: usize) -> Tensor {
    let mut pe = Tensor::zeros(len, dim);
    for t in 0..len {
        for i in 0..dim {
            let rate = 1.0 / 10_000f32.powf((2 * (i / 2)) as f32 / dim as f32);
            let angle = t as f32 * rate;
            pe.set(t, i, if i % 2 == 0 { angle.sin() } else { angle.cos() });
        }
    }
    pe
}

/// One pre-activation Transformer block: self-attention + residual,
/// feed-forward + residual.
#[derive(Debug, Clone)]
struct Block {
    w_q: Linear,
    w_k: Linear,
    w_v: Linear,
    w_o: Linear,
    ff: Mlp,
    dim: usize,
}

impl Block {
    fn new(store: &mut ParamStore, rng: &mut Rng, name: &str, dim: usize, group: GroupId) -> Self {
        Self {
            w_q: Linear::new(store, rng, &format!("{name}.wq"), dim, dim, group),
            w_k: Linear::new(store, rng, &format!("{name}.wk"), dim, dim, group),
            w_v: Linear::new(store, rng, &format!("{name}.wv"), dim, dim, group),
            w_o: Linear::new(store, rng, &format!("{name}.wo"), dim, dim, group),
            ff: Mlp::new(
                store,
                rng,
                &format!("{name}.ff"),
                &[dim, 2 * dim, dim],
                Activation::Relu,
                group,
            ),
            dim,
        }
    }

    fn forward(&self, store: &ParamStore, tape: &mut Tape, x: Var) -> Var {
        let q = self.w_q.forward(store, tape, x);
        let k = self.w_k.forward(store, tape, x);
        let v = self.w_v.forward(store, tape, x);
        let kt = tape.transpose(k);
        let scores = tape.matmul(q, kt);
        let scaled = tape.scale(scores, 1.0 / (self.dim as f32).sqrt());
        let attn = tape.softmax_rows(scaled);
        let ctx = tape.matmul(attn, v);
        let proj = self.w_o.forward(store, tape, ctx);
        let x = tape.add(x, proj); // residual 1
        let ff = self.ff.forward(store, tape, x);
        tape.add(x, ff) // residual 2
    }
}

/// A small Transformer sequence encoder: input projection + positional
/// encoding + `depth` blocks; the last timestep's representation is the
/// sequence encoding (mirrors taking the LSTM's final hidden state).
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    input: Linear,
    blocks: Vec<Block>,
    hidden: usize,
}

impl TransformerEncoder {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        hidden: usize,
        depth: usize,
        group: GroupId,
    ) -> Self {
        assert!(depth >= 1, "need at least one block");
        let input = Linear::new(store, rng, &format!("{name}.in"), in_dim, hidden, group);
        let blocks = (0..depth)
            .map(|i| Block::new(store, rng, &format!("{name}.b{i}"), hidden, group))
            .collect();
        Self {
            input,
            blocks,
            hidden,
        }
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Encodes one sequence `[T, in] -> [1, hidden]` (last-step readout).
    pub fn encode_sequence(&self, store: &ParamStore, tape: &mut Tape, seq: Var) -> Var {
        let t_len = tape.value(seq).rows();
        let mut h = self.input.forward(store, tape, seq);
        let pe = tape.constant(positional_encoding(t_len, self.hidden));
        h = tape.add(h, pe);
        for block in &self.blocks {
            h = block.forward(store, tape, h);
        }
        // Bound the readout so downstream modules see LSTM-like ranges.
        let h = tape.tanh(h);
        tape.gather_rows(h, &[t_len - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::param::GradBuffer;

    #[test]
    fn positional_encoding_shape_and_range() {
        let pe = positional_encoding(8, 16);
        assert_eq!(pe.shape(), (8, 16));
        assert!(pe.data().iter().all(|v| (-1.0..=1.0).contains(v)));
        // Different timesteps get different encodings.
        assert_ne!(pe.row_slice(0), pe.row_slice(5));
    }

    #[test]
    fn encode_sequence_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "t", 4, 16, 2, GroupId::DEFAULT);
        let mut tape = Tape::new();
        let seq = tape.constant(Tensor::randn(8, 4, 0.0, 1.0, &mut rng));
        let h = enc.encode_sequence(&store, &mut tape, seq);
        assert_eq!(tape.value(h).shape(), (1, 16));
        assert!(tape.value(h).max_abs() <= 1.0);
    }

    #[test]
    fn order_sensitivity_via_positional_encoding() {
        // Same multiset of steps, different order ⇒ different encoding.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "t", 2, 8, 1, GroupId::DEFAULT);
        let fwd = Tensor::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let rev = Tensor::from_vec(4, 2, vec![3.0, 0.0, 2.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        let mut tape = Tape::new();
        let a = tape.constant(fwd);
        let b = tape.constant(rev);
        let ha = enc.encode_sequence(&store, &mut tape, a);
        let hb = enc.encode_sequence(&store, &mut tape, b);
        assert_ne!(tape.value(ha).data(), tape.value(hb).data());
    }

    #[test]
    fn learns_sequence_mean_regression() {
        // Predict the mean of a scalar sequence from the encoding — checks
        // gradients flow through attention, residuals, and FF.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let enc = TransformerEncoder::new(&mut store, &mut rng, "t", 1, 8, 1, GroupId::DEFAULT);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 1, GroupId::DEFAULT);
        let mut opt = Adam::new(0.01);
        let mut last = f32::MAX;
        for it in 0..400 {
            let mut data_rng = Rng::seed_from(it % 8);
            let vals: Vec<f32> = (0..6).map(|_| data_rng.uniform(-1.0, 1.0)).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 6.0;
            let mut tape = Tape::new();
            let seq = tape.constant(Tensor::col(&vals));
            let h = enc.encode_sequence(&store, &mut tape, seq);
            let pred = head.forward(&store, &mut tape, h);
            let loss = tape.mse_to(pred, &Tensor::scalar(mean));
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            opt.step(&mut store, &buf);
            last = tape.value(loss).item();
        }
        assert!(last < 0.02, "regression loss {last}");
    }
}
