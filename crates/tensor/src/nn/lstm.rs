//! Long short-term memory recurrence.
//!
//! The individual-mobility encoder and the rollout decoder of the backbone
//! (Sec. II-C of the paper) are LSTMs. The cell follows the standard
//! formulation with a fused gate projection: one `[in+hidden, 4·hidden]`
//! matmul per step, sliced into input/forget/cell/output gates.

use super::init::xavier_std;
use crate::param::{GroupId, ParamId, ParamStore};
use crate::rng::Rng;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Hidden and cell state handles for a batch of sequences.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    pub h: Var,
    pub c: Var,
}

/// A single LSTM cell (one recurrence step).
#[derive(Debug, Clone)]
pub struct LstmCell {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl LstmCell {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        hidden: usize,
        group: GroupId,
    ) -> Self {
        let std = xavier_std(in_dim + hidden, hidden);
        let w = store.register(
            format!("{name}.w"),
            Tensor::randn(in_dim + hidden, 4 * hidden, 0.0, std, rng),
            group,
        );
        // Forget-gate bias initialized to 1.0 (standard trick: remember by
        // default early in training); other gates at 0.
        let mut bias = Tensor::zeros(1, 4 * hidden);
        for i in hidden..2 * hidden {
            bias.set(0, i, 1.0);
        }
        let b = store.register(format!("{name}.b"), bias, group);
        Self {
            w,
            b,
            in_dim,
            hidden,
        }
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// A zeroed state for a batch of `n` sequences.
    pub fn zero_state(&self, tape: &mut Tape, n: usize) -> LstmState {
        LstmState {
            h: tape.constant(Tensor::zeros(n, self.hidden)),
            c: tape.constant(Tensor::zeros(n, self.hidden)),
        }
    }

    /// One step: consumes `x: [n, in]` and the previous state, produces the
    /// next state. Gate layout in the fused projection: `[i | f | g | o]`.
    /// The whole recurrence is one [`Tape::lstm_cell`] node (plus the two
    /// state slices), not the fifteen-node elementwise composition.
    pub fn step(&self, store: &ParamStore, tape: &mut Tape, x: Var, state: LstmState) -> LstmState {
        debug_assert_eq!(tape.value(x).cols(), self.in_dim, "LSTM input width");
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let hc = tape.lstm_cell(x, state.h, state.c, w, b);
        let h = self.hidden;
        LstmState {
            h: tape.slice_cols(hc, 0, h),
            c: tape.slice_cols(hc, h, 2 * h),
        }
    }
}

/// An unrolled LSTM over a sequence of per-step inputs.
#[derive(Debug, Clone)]
pub struct Lstm {
    cell: LstmCell,
}

impl Lstm {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        hidden: usize,
        group: GroupId,
    ) -> Self {
        Self {
            cell: LstmCell::new(store, rng, name, in_dim, hidden, group),
        }
    }

    pub fn cell(&self) -> &LstmCell {
        &self.cell
    }

    pub fn hidden(&self) -> usize {
        self.cell.hidden
    }

    /// Runs the cell over `steps` (each `[n, in]`), returning every hidden
    /// state plus the final state. Panics on an empty sequence.
    pub fn forward(
        &self,
        store: &ParamStore,
        tape: &mut Tape,
        steps: &[Var],
    ) -> (Vec<Var>, LstmState) {
        assert!(!steps.is_empty(), "LSTM over an empty sequence");
        let n = tape.value(steps[0]).rows();
        let mut state = self.cell.zero_state(tape, n);
        let mut hs = Vec::with_capacity(steps.len());
        for &x in steps {
            state = self.cell.step(store, tape, x, state);
            hs.push(state.h);
        }
        (hs, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::param::GradBuffer;

    #[test]
    fn step_shapes() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(0);
        let cell = LstmCell::new(&mut store, &mut rng, "c", 3, 6, GroupId::DEFAULT);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::zeros(4, 3));
        let s0 = cell.zero_state(&mut tape, 4);
        let s1 = cell.step(&store, &mut tape, x, s0);
        assert_eq!(tape.value(s1.h).shape(), (4, 6));
        assert_eq!(tape.value(s1.c).shape(), (4, 6));
    }

    #[test]
    fn zero_input_zero_state_gives_bounded_output() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let lstm = Lstm::new(&mut store, &mut rng, "l", 2, 4, GroupId::DEFAULT);
        let mut tape = Tape::new();
        let steps: Vec<Var> = (0..5)
            .map(|_| tape.constant(Tensor::randn(3, 2, 0.0, 10.0, &mut rng)))
            .collect();
        let (hs, last) = lstm.forward(&store, &mut tape, &steps);
        assert_eq!(hs.len(), 5);
        // h = o * tanh(c) is bounded in (-1, 1).
        assert!(tape.value(last.h).max_abs() < 1.0);
    }

    #[test]
    fn gradients_flow_through_time_fd() {
        // Finite-difference check through a 3-step unroll w.r.t. the first
        // input, exercising the full gate backward path.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let cell = LstmCell::new(&mut store, &mut rng, "c", 2, 3, GroupId::DEFAULT);
        let x0 = Tensor::randn(1, 2, 0.0, 1.0, &mut rng);
        let x_rest: Vec<Tensor> = (0..2)
            .map(|_| Tensor::randn(1, 2, 0.0, 1.0, &mut rng))
            .collect();

        let run = |x0v: Tensor| -> (f32, Option<Tensor>) {
            let mut tape = Tape::new();
            let x = tape.input(x0v);
            let mut state = cell.zero_state(&mut tape, 1);
            state = cell.step(&store, &mut tape, x, state);
            for xr in &x_rest {
                let xv = tape.constant(xr.clone());
                state = cell.step(&store, &mut tape, xv, state);
            }
            let sq = tape.mul(state.h, state.h);
            let loss = tape.sum_all(sq);
            let grads = tape.backward(loss);
            (tape.value(loss).item(), grads.get(x).cloned())
        };

        let (_, g) = run(x0.clone());
        let g = g.expect("input grad");
        let eps = 1e-2;
        for i in 0..x0.len() {
            let mut p = x0.clone();
            p.data_mut()[i] += eps;
            let mut m = x0.clone();
            m.data_mut()[i] -= eps;
            let numeric = (run(p).0 - run(m).0) / (2.0 * eps);
            let a = g.data()[i];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "BPTT grad mismatch at {i}: {a} vs {numeric}"
            );
        }
    }

    #[test]
    fn learns_to_memorize_first_token() {
        // Task: output at the end equals the first input's first feature.
        // Requires carrying information through the cell state.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(7);
        let lstm = Lstm::new(&mut store, &mut rng, "mem", 1, 8, GroupId::DEFAULT);
        let head = super::super::Linear::new(&mut store, &mut rng, "head", 8, 1, GroupId::DEFAULT);
        let mut opt = Adam::new(0.02);
        let mut last = f32::MAX;
        for it in 0..600 {
            let mut data_rng = Rng::seed_from(it % 16);
            let first: Vec<f32> = (0..4).map(|_| data_rng.uniform(-1.0, 1.0)).collect();
            let mut tape = Tape::new();
            let mut steps = Vec::new();
            steps.push(tape.constant(Tensor::col(&first)));
            for _ in 0..3 {
                steps.push(tape.constant(Tensor::zeros(4, 1)));
            }
            let (_, state) = lstm.forward(&store, &mut tape, &steps);
            let pred = head.forward(&store, &mut tape, state.h);
            let target = Tensor::col(&first);
            let loss = tape.mse_to(pred, &target);
            let grads = tape.backward(loss);
            let mut buf = GradBuffer::new();
            buf.absorb(&tape, &grads);
            opt.step(&mut store, &buf);
            last = tape.value(loss).item();
        }
        assert!(last < 0.02, "memorization loss {last}");
    }
}
