//! Parameter storage shared across forward passes.
//!
//! A [`ParamStore`] owns the persistent state of a model: each parameter is
//! a named tensor assigned to a *group*. Groups are the unit at which the
//! AdapTraj training schedule (Alg. 1 of the paper) manipulates learning:
//! step 2 trains the aggregator group at `lr × f_high` while every other
//! group runs at `lr × f_low`, and the domain-specific extractor group is
//! frozen outright. Optimizers consume gradients via a [`GradBuffer`], which
//! lets several tapes (e.g. one per scene) accumulate into a single step.

use crate::tape::{Grads, Tape};
use crate::tensor::Tensor;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    pub fn index(self) -> usize {
        self.0
    }
}

/// Label partitioning parameters for per-group learning-rate control and
/// freezing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Default group for parameters without special scheduling needs.
    pub const DEFAULT: GroupId = GroupId(0);
}

#[derive(Debug, Clone)]
struct ParamEntry {
    name: String,
    value: Tensor,
    group: GroupId,
}

/// Owns all trainable tensors of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle. The value is held in
    /// shared (`Arc`-backed) storage so bringing it onto a tape
    /// ([`Tape::param`]) is a refcount bump, not a full clone; optimizer
    /// updates go through copy-on-write and mutate in place once no tape
    /// holds a reference.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor, group: GroupId) -> ParamId {
        self.entries.push(ParamEntry {
            name: name.into(),
            value: value.into_shared(),
            group,
        });
        ParamId(self.entries.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    pub fn group(&self, id: ParamId) -> GroupId {
        self.entries[id.0].group
    }

    /// Iterates over all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Handles of every parameter in `group`.
    pub fn ids_in_group(&self, group: GroupId) -> Vec<ParamId> {
        self.ids().filter(|&id| self.group(id) == group).collect()
    }

    /// Deep copy of all parameter values (for checkpoint/restore in tests
    /// and for the freezing invariants).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.entries.iter().map(|e| e.value.clone()).collect()
    }

    /// Restores a snapshot previously taken with [`ParamStore::snapshot`].
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(snapshot.len(), self.entries.len(), "snapshot size mismatch");
        for (e, s) in self.entries.iter_mut().zip(snapshot) {
            assert_eq!(e.value.shape(), s.shape(), "snapshot shape mismatch");
            e.value = s.clone();
        }
    }
}

/// Accumulates parameter gradients across one or more tapes before an
/// optimizer step.
#[derive(Debug, Default)]
pub struct GradBuffer {
    slots: Vec<Option<Tensor>>,
}

impl GradBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, None);
        }
    }

    /// Adds the parameter gradients recorded by `tape` (after a backward
    /// pass producing `grads`).
    pub fn absorb(&mut self, tape: &Tape, grads: &Grads) {
        for (id, g) in tape.param_grads(grads) {
            self.ensure(id.index() + 1);
            match &mut self.slots[id.index()] {
                Some(acc) => acc.axpy(1.0, &g),
                slot @ None => *slot = Some(g),
            }
        }
    }

    /// Adds the parameter gradients scaled by `alpha` (e.g. `1/batch`).
    pub fn absorb_scaled(&mut self, tape: &Tape, grads: &Grads, alpha: f32) {
        for (id, g) in tape.param_grads(grads) {
            self.ensure(id.index() + 1);
            match &mut self.slots[id.index()] {
                Some(acc) => acc.axpy(alpha, &g),
                slot @ None => *slot = Some(g.scale(alpha)),
            }
        }
    }

    /// Adds pre-extracted `(id, grad)` pairs scaled by `alpha`. The
    /// worker-pool executor ships `tape.param_grads(..)` results across
    /// threads and reduces them here in dispatch order, so the sum is
    /// bit-identical to the sequential `absorb_scaled` loop.
    pub fn absorb_pairs_scaled(&mut self, pairs: &[(ParamId, Tensor)], alpha: f32) {
        for (id, g) in pairs {
            self.ensure(id.index() + 1);
            match &mut self.slots[id.index()] {
                Some(acc) => acc.axpy(alpha, g),
                slot @ None => *slot = Some(g.scale(alpha)),
            }
        }
    }

    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.slots.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Clears all accumulated gradients, keeping capacity. Dropped
    /// gradient buffers retire into the calling thread's pool.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            if let Some(g) = s.take() {
                g.recycle();
            }
        }
    }

    /// Retires every accumulated gradient buffer into the calling
    /// thread's buffer pool. Call once the optimizer step has consumed
    /// the buffer so the next batch's gradients reuse the storage.
    pub fn recycle(self) {
        for g in self.slots.into_iter().flatten() {
            g.recycle();
        }
    }

    /// Global L2 norm over all accumulated gradients.
    pub fn global_norm(&self) -> f32 {
        self.slots
            .iter()
            .flatten()
            .map(Tensor::frob_sq)
            .sum::<f32>()
            .sqrt()
    }

    /// In-place global-norm clipping: if the global norm exceeds
    /// `max_norm`, every gradient is rescaled so the norm equals it.
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in self.slots.iter_mut().flatten() {
                let scaled = g.scale(s);
                std::mem::replace(g, scaled).recycle();
            }
        }
        norm
    }

    /// Accumulates another buffer scaled by `alpha`: `self += alpha * other`.
    /// Used to combine per-group gradient buffers with data-dependent
    /// weights (e.g. the V-REx risk-variance penalty in CausalMotion).
    pub fn scaled_add(&mut self, other: &GradBuffer, alpha: f32) {
        self.ensure(other.slots.len());
        for (i, g) in other.slots.iter().enumerate() {
            if let Some(g) = g {
                match &mut self.slots[i] {
                    Some(acc) => acc.axpy(alpha, g),
                    slot @ None => *slot = Some(g.scale(alpha)),
                }
            }
        }
    }

    /// Iterates `(id, grad)` pairs for present gradients.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|g| (ParamId(i), g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(n: usize) -> (ParamStore, Vec<ParamId>) {
        let mut store = ParamStore::new();
        let ids = (0..n)
            .map(|i| {
                store.register(
                    format!("p{i}"),
                    Tensor::full(1, 2, i as f32),
                    GroupId(i as u32 % 2),
                )
            })
            .collect();
        (store, ids)
    }

    #[test]
    fn register_and_lookup() {
        let (store, ids) = store_with(3);
        assert_eq!(store.len(), 3);
        assert_eq!(store.num_scalars(), 6);
        assert_eq!(store.name(ids[1]), "p1");
        assert_eq!(store.group(ids[1]), GroupId(1));
        assert_eq!(store.value(ids[2]).data(), &[2.0, 2.0]);
        assert_eq!(store.ids_in_group(GroupId(0)), vec![ids[0], ids[2]]);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let (mut store, ids) = store_with(2);
        let snap = store.snapshot();
        store.value_mut(ids[0]).data_mut()[0] = 99.0;
        assert_eq!(store.value(ids[0]).data()[0], 99.0);
        store.restore(&snap);
        assert_eq!(store.value(ids[0]).data()[0], 0.0);
    }

    #[test]
    fn grad_buffer_accumulates_across_tapes() {
        let (store, ids) = store_with(1);
        let mut buf = GradBuffer::new();
        for _ in 0..2 {
            let mut tape = Tape::new();
            let p = tape.param(&store, ids[0]);
            let loss = tape.sum_all(p);
            let grads = tape.backward(loss);
            buf.absorb(&tape, &grads);
        }
        assert_eq!(buf.get(ids[0]).unwrap().data(), &[2.0, 2.0]);
        buf.clear();
        assert!(buf.get(ids[0]).is_none());
    }

    #[test]
    fn repeated_param_use_in_one_tape_sums() {
        let (store, ids) = store_with(1);
        let mut tape = Tape::new();
        let p1 = tape.param(&store, ids[0]);
        let p2 = tape.param(&store, ids[0]);
        let s = tape.add(p1, p2);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        let mut buf = GradBuffer::new();
        buf.absorb(&tape, &grads);
        assert_eq!(buf.get(ids[0]).unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn absorb_pairs_matches_absorb_scaled_bitwise() {
        let (store, ids) = store_with(2);
        let run = |via_pairs: bool| -> Vec<Vec<f32>> {
            let mut buf = GradBuffer::new();
            for k in 0..3 {
                let mut tape = Tape::new();
                let p0 = tape.param(&store, ids[0]);
                let p1 = tape.param(&store, ids[1]);
                let s = tape.add(p0, p1);
                let scaled = tape.scale(s, 1.0 + k as f32 * 0.3);
                let loss = tape.sum_all(scaled);
                let grads = tape.backward(loss);
                if via_pairs {
                    let pairs = tape.param_grads(&grads);
                    buf.absorb_pairs_scaled(&pairs, 1.0 / 3.0);
                } else {
                    buf.absorb_scaled(&tape, &grads, 1.0 / 3.0);
                }
            }
            ids.iter()
                .map(|&id| buf.get(id).unwrap().data().to_vec())
                .collect()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn param_store_is_read_shareable_across_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ParamStore>();
        let (store, ids) = store_with(1);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    assert_eq!(store.value(ids[0]).data(), &[0.0, 0.0]);
                });
            }
        });
    }

    #[test]
    fn clip_global_norm_rescales() {
        let (store, ids) = store_with(1);
        let mut tape = Tape::new();
        let p = tape.param(&store, ids[0]);
        let scaled = tape.scale(p, 3.0);
        let loss = tape.sum_all(scaled);
        let grads = tape.backward(loss);
        let mut buf = GradBuffer::new();
        buf.absorb(&tape, &grads); // grad = [3, 3], norm = 3*sqrt(2)
        let pre = buf.clip_global_norm(1.0);
        assert!((pre - 3.0 * 2.0f32.sqrt()).abs() < 1e-5);
        assert!((buf.global_norm() - 1.0).abs() < 1e-5);
    }
}
