//! Per-thread scratch-buffer pooling for tensor storage.
//!
//! Every owned tensor allocation in this crate funnels through the helpers
//! here. Each thread keeps a [`BufferPool`] of retired `Vec<f32>` buffers
//! (returned by [`Tape::reset`](crate::tape::Tape::reset) and
//! [`recycle_vec`]), segregated into power-of-two capacity classes:
//! fresh allocations round their capacity up to the class size, so a
//! retired buffer lands back in exactly the class that future requests of
//! the same shape hit, and both `take` and `give` are O(1) bucket
//! operations (no scanning, no first-fit waste where a small request
//! consumes a large buffer). An allocation request falls back to a fresh
//! heap allocation only when its class — and every larger one — is empty.
//! In steady state — one persistent worker thread running one pooled tape
//! per window, where successive windows repeat the same tensor shapes —
//! the forward/backward hot path recycles the previous window's buffers
//! instead of touching the allocator.
//!
//! Accounting happens at two levels:
//!
//! - **Per-thread tallies** ([`thread_stats`]): reuse hits, bytes served
//!   from the pool, and bytes freshly allocated, kept in plain
//!   thread-local cells so the hot path never takes a lock. Tests read
//!   these directly (each libtest test runs on its own thread, so the
//!   numbers are isolated per test).
//! - **Global metrics** (`tensor.pool_reuse`, `tensor.bytes_reused`,
//!   `tensor.bytes_allocated` in the `adaptraj-obs` registry): flushed
//!   from the thread tallies by [`flush_thread_metrics`], which
//!   `Tape::reset` calls once per window so per-allocation cost stays a
//!   couple of thread-local adds.
//!
//! The tape's forward profiler reads [`drain_pending_fresh_bytes`] at each
//! node push, so profile byte lines count only *fresh* allocations — a
//! buffer served from the pool (or a leaf borrowed from the `ParamStore`)
//! is no longer double-counted as newly allocated memory.

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

/// Number of power-of-two capacity classes (class `b` holds buffers of
/// capacity `[2^b, 2^(b+1))`; the top class also absorbs anything larger).
const BUCKETS: usize = 31;

/// Keep at most this many retired buffers per capacity class; beyond it,
/// retired buffers are dropped to bound steady-state memory. One window's
/// tape can retire upwards of a thousand buffers of the same small class
/// (per-timestep constants and their gradients), and every buffer dropped
/// here is a guaranteed pool miss — a fresh heap allocation — on the next
/// window, so the budget errs large: 2048 buffers of the biggest common
/// hot-path class (~4 KB) is ~8 MB per worker thread, a fraction of one
/// training batch.
const MAX_FREE_PER_BUCKET: usize = 2048;

/// Class a request of `len` elements is served from: the smallest class
/// whose buffers are all guaranteed to hold `len`.
fn request_class(len: usize) -> usize {
    (len.max(1).next_power_of_two().trailing_zeros() as usize).min(BUCKETS - 1)
}

/// Class a retired buffer of capacity `cap >= 1` is stored in:
/// `floor(log2(cap))`, so every buffer in class `b` has capacity `>= 2^b`.
fn storage_class(cap: usize) -> usize {
    ((usize::BITS - 1 - cap.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Cumulative allocation statistics of one thread's pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocation requests served from the free list.
    pub reuse_hits: u64,
    /// Bytes of those requests (requested length × 4).
    pub bytes_reused: u64,
    /// Bytes served by fresh heap allocations.
    pub bytes_allocated: u64,
}

/// Size-class buckets of retired `Vec<f32>` scratch buffers.
#[derive(Debug)]
pub struct BufferPool {
    free: [Vec<Vec<f32>>; BUCKETS],
    stats: PoolStats,
    /// Stats not yet flushed to the global metrics registry.
    unflushed: PoolStats,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    pub fn new() -> Self {
        Self {
            free: std::array::from_fn(|_| Vec::new()),
            stats: PoolStats::default(),
            unflushed: PoolStats::default(),
        }
    }

    /// Number of buffers currently retired into the pool.
    pub fn free_buffers(&self) -> usize {
        self.free.iter().map(Vec::len).sum()
    }

    /// Total `f32` capacity currently retained in the pool.
    pub fn free_capacity(&self) -> usize {
        self.free
            .iter()
            .flat_map(|bucket| bucket.iter().map(Vec::capacity))
            .sum()
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    fn note(&mut self, reused: bool, bytes: u64) {
        if reused {
            self.stats.reuse_hits += 1;
            self.stats.bytes_reused += bytes;
            self.unflushed.reuse_hits += 1;
            self.unflushed.bytes_reused += bytes;
        } else {
            self.stats.bytes_allocated += bytes;
            self.unflushed.bytes_allocated += bytes;
        }
    }

    /// Pops a retired buffer with capacity ≥ `len`, if any: the request's
    /// own class first (newest first — the most recently retired buffer
    /// is the most likely to be cache-warm), then any larger class. As a
    /// last resort the class below is scanned: buffers that entered the
    /// pool from outside (`recycle_vec` on a caller-built `Vec`) can have
    /// a non-rounded capacity that lands one class under the request yet
    /// still fits. Pool-allocated buffers never need that scan.
    fn pop_with_capacity(&mut self, len: usize) -> Option<Vec<f32>> {
        let class = request_class(len);
        for bucket in &mut self.free[class..] {
            // The class invariant guarantees the capacity except in the
            // top (clamped) bucket, so check the candidate rather than
            // assume.
            if bucket.last().is_some_and(|b| b.capacity() >= len) {
                return bucket.pop();
            }
        }
        if class > 0 {
            let below = &mut self.free[class - 1];
            if let Some(idx) = below.iter().rposition(|b| b.capacity() >= len) {
                return Some(below.swap_remove(idx));
            }
        }
        None
    }

    /// A zero-filled buffer of exactly `len` elements. Fresh allocations
    /// round their capacity up to the class size, so the buffer re-enters
    /// its exact class when retired.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let bytes = (len * std::mem::size_of::<f32>()) as u64;
        match self.pop_with_capacity(len) {
            Some(mut buf) => {
                self.note(true, bytes);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.note(false, bytes);
                let mut buf = Vec::with_capacity(len.max(1).next_power_of_two());
                buf.resize(len, 0.0);
                buf
            }
        }
    }

    /// An empty buffer with capacity ≥ `cap`, ready for `extend`/`push`.
    pub fn take_empty(&mut self, cap: usize) -> Vec<f32> {
        let bytes = (cap * std::mem::size_of::<f32>()) as u64;
        match self.pop_with_capacity(cap) {
            Some(mut buf) => {
                self.note(true, bytes);
                buf.clear();
                buf
            }
            None => {
                self.note(false, bytes);
                Vec::with_capacity(cap.max(1).next_power_of_two())
            }
        }
    }

    /// Retires a buffer into its capacity class. No-ops on zero-capacity
    /// buffers and when the class is full.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let bucket = &mut self.free[storage_class(buf.capacity())];
        if bucket.len() < MAX_FREE_PER_BUCKET {
            bucket.push(buf);
        }
    }
}

thread_local! {
    static TL_POOL: RefCell<BufferPool> = RefCell::new(BufferPool::new());
    /// Fresh bytes allocated since the tape last drained — the forward
    /// profiler's per-op allocation attribution.
    static PENDING_FRESH: Cell<u64> = const { Cell::new(0) };
}

struct PoolMetrics {
    reuse: adaptraj_obs::CounterHandle,
    bytes_reused: adaptraj_obs::CounterHandle,
    bytes_allocated: adaptraj_obs::CounterHandle,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = adaptraj_obs::global();
        PoolMetrics {
            reuse: reg.counter("tensor.pool_reuse"),
            bytes_reused: reg.counter("tensor.bytes_reused"),
            bytes_allocated: reg.counter("tensor.bytes_allocated"),
        }
    })
}

/// A zero-filled buffer of `len` elements from the calling thread's pool.
pub(crate) fn alloc_zeroed(len: usize) -> Vec<f32> {
    TL_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let before = pool.stats.bytes_allocated;
        let buf = pool.take_zeroed(len);
        let fresh = pool.stats.bytes_allocated - before;
        if fresh > 0 {
            PENDING_FRESH.with(|c| c.set(c.get() + fresh));
        }
        buf
    })
}

/// An empty buffer with capacity ≥ `cap` from the calling thread's pool.
pub(crate) fn alloc_empty(cap: usize) -> Vec<f32> {
    TL_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let before = pool.stats.bytes_allocated;
        let buf = pool.take_empty(cap);
        let fresh = pool.stats.bytes_allocated - before;
        if fresh > 0 {
            PENDING_FRESH.with(|c| c.set(c.get() + fresh));
        }
        buf
    })
}

/// A pooled copy of `src`.
pub(crate) fn alloc_copy(src: &[f32]) -> Vec<f32> {
    let mut buf = alloc_empty(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Retires a buffer into the calling thread's pool.
pub fn recycle_vec(buf: Vec<f32>) {
    TL_POOL.with(|p| p.borrow_mut().give(buf));
}

/// Fresh bytes allocated on this thread since the last drain. The tape
/// calls this once per recorded node so profile byte lines attribute only
/// genuinely fresh allocations to each op.
pub(crate) fn drain_pending_fresh_bytes() -> u64 {
    PENDING_FRESH.with(|c| c.replace(0))
}

/// Cumulative stats of the calling thread's pool.
pub fn thread_stats() -> PoolStats {
    TL_POOL.with(|p| p.borrow().stats())
}

/// Buffers currently retained by the calling thread's pool.
pub fn thread_free_buffers() -> usize {
    TL_POOL.with(|p| p.borrow().free_buffers())
}

/// Flushes this thread's unflushed tallies into the global metrics
/// registry (`tensor.pool_reuse` / `tensor.bytes_reused` /
/// `tensor.bytes_allocated`). Called by `Tape::reset` once per window.
pub fn flush_thread_metrics() {
    TL_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let u = std::mem::take(&mut pool.unflushed);
        if u == PoolStats::default() {
            return;
        }
        let m = pool_metrics();
        m.reuse.add(u.reuse_hits);
        m.bytes_reused.add(u.bytes_reused);
        m.bytes_allocated.add(u.bytes_allocated);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocation_when_pool_is_empty() {
        let mut pool = BufferPool::new();
        let buf = pool.take_zeroed(8);
        assert_eq!(buf.len(), 8);
        assert!(buf.iter().all(|&x| x == 0.0));
        let s = pool.stats();
        assert_eq!(s.reuse_hits, 0);
        assert_eq!(s.bytes_allocated, 32);
        assert_eq!(s.bytes_reused, 0);
    }

    #[test]
    fn retired_buffer_is_reused_and_zeroed() {
        let mut pool = BufferPool::new();
        let mut buf = pool.take_zeroed(16);
        buf.iter_mut().for_each(|x| *x = 7.0);
        let ptr = buf.as_ptr();
        pool.give(buf);
        assert_eq!(pool.free_buffers(), 1);

        let again = pool.take_zeroed(10);
        assert_eq!(again.as_ptr(), ptr, "capacity not retained across reuse");
        assert_eq!(again.len(), 10);
        assert!(again.iter().all(|&x| x == 0.0), "stale values leaked");
        let s = pool.stats();
        assert_eq!(s.reuse_hits, 1);
        assert_eq!(s.bytes_reused, 40);
    }

    #[test]
    fn undersized_buffers_are_skipped() {
        let mut pool = BufferPool::new();
        pool.give(vec![0.0; 4]);
        let buf = pool.take_zeroed(64);
        assert_eq!(buf.len(), 64);
        assert_eq!(pool.stats().reuse_hits, 0, "4-slot buffer cannot serve 64");
        assert_eq!(pool.free_buffers(), 1, "small buffer stays pooled");
    }

    #[test]
    fn take_empty_keeps_capacity_but_clears_length() {
        let mut pool = BufferPool::new();
        pool.give(vec![3.0; 32]);
        let buf = pool.take_empty(20);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 32);
        assert_eq!(pool.stats().reuse_hits, 1);
    }

    #[test]
    fn capacity_classes_are_bounded() {
        let mut pool = BufferPool::new();
        for _ in 0..(MAX_FREE_PER_BUCKET + 100) {
            pool.give(vec![0.0; 2]);
        }
        assert_eq!(pool.free_buffers(), MAX_FREE_PER_BUCKET);
        // A different capacity class has its own budget.
        pool.give(vec![0.0; 64]);
        assert_eq!(pool.free_buffers(), MAX_FREE_PER_BUCKET + 1);
    }

    #[test]
    fn request_is_served_from_its_own_class_before_larger_ones() {
        let mut pool = BufferPool::new();
        pool.give(vec![0.0; 1024]);
        pool.give(vec![0.0; 16]);
        // A 10-element request must take the 16-slot buffer, not burn the
        // 1024-slot one.
        let buf = pool.take_zeroed(10);
        assert!(buf.capacity() < 1024);
        assert_eq!(pool.free_capacity(), 1024);
    }

    #[test]
    fn fresh_allocations_round_capacity_to_the_class_size() {
        let mut pool = BufferPool::new();
        // 600 rounds to 1024, so retire + re-request of the same odd
        // length is a guaranteed class hit.
        let buf = pool.take_zeroed(600);
        assert_eq!(buf.capacity(), 1024);
        pool.give(buf);
        let again = pool.take_zeroed(600);
        assert_eq!(again.len(), 600);
        assert_eq!(pool.stats().reuse_hits, 1);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut pool = BufferPool::new();
        pool.give(Vec::new());
        assert_eq!(pool.free_buffers(), 0);
    }
}
