//! Per-thread scratch-buffer pooling for tensor storage.
//!
//! Every owned tensor allocation in this crate funnels through the helpers
//! here. Each thread keeps a [`BufferPool`] free-list of retired
//! `Vec<f32>` buffers (returned by [`Tape::reset`](crate::tape::Tape::reset)
//! and [`recycle_vec`]); an allocation request is served from the free list
//! when a buffer with enough capacity is available and falls back to a
//! fresh heap allocation otherwise. In steady state — one persistent
//! worker thread running one pooled tape per window — the forward/backward
//! hot path recycles the previous window's buffers instead of touching the
//! allocator.
//!
//! Accounting happens at two levels:
//!
//! - **Per-thread tallies** ([`thread_stats`]): reuse hits, bytes served
//!   from the pool, and bytes freshly allocated, kept in plain
//!   thread-local cells so the hot path never takes a lock. Tests read
//!   these directly (each libtest test runs on its own thread, so the
//!   numbers are isolated per test).
//! - **Global metrics** (`tensor.pool_reuse`, `tensor.bytes_reused`,
//!   `tensor.bytes_allocated` in the `adaptraj-obs` registry): flushed
//!   from the thread tallies by [`flush_thread_metrics`], which
//!   `Tape::reset` calls once per window so per-allocation cost stays a
//!   couple of thread-local adds.
//!
//! The tape's forward profiler reads [`drain_pending_fresh_bytes`] at each
//! node push, so profile byte lines count only *fresh* allocations — a
//! buffer served from the pool (or a leaf borrowed from the `ParamStore`)
//! is no longer double-counted as newly allocated memory.

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

/// Keep at most this many retired buffers per thread; beyond it, retired
/// buffers are dropped to bound steady-state memory.
const MAX_FREE: usize = 512;

/// Cumulative allocation statistics of one thread's pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocation requests served from the free list.
    pub reuse_hits: u64,
    /// Bytes of those requests (requested length × 4).
    pub bytes_reused: u64,
    /// Bytes served by fresh heap allocations.
    pub bytes_allocated: u64,
}

/// A free-list of retired `Vec<f32>` scratch buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
    stats: PoolStats,
    /// Stats not yet flushed to the global metrics registry.
    unflushed: PoolStats,
}

impl BufferPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Total `f32` capacity currently retained on the free list.
    pub fn free_capacity(&self) -> usize {
        self.free.iter().map(Vec::capacity).sum()
    }

    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    fn note(&mut self, reused: bool, bytes: u64) {
        if reused {
            self.stats.reuse_hits += 1;
            self.stats.bytes_reused += bytes;
            self.unflushed.reuse_hits += 1;
            self.unflushed.bytes_reused += bytes;
        } else {
            self.stats.bytes_allocated += bytes;
            self.unflushed.bytes_allocated += bytes;
        }
    }

    /// Pops a retired buffer with capacity ≥ `len`, if any (newest first —
    /// the most recently retired buffer is the most likely to be
    /// cache-warm).
    fn pop_with_capacity(&mut self, len: usize) -> Option<Vec<f32>> {
        let idx = self.free.iter().rposition(|b| b.capacity() >= len)?;
        Some(self.free.swap_remove(idx))
    }

    /// A zero-filled buffer of exactly `len` elements.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let bytes = (len * std::mem::size_of::<f32>()) as u64;
        match self.pop_with_capacity(len) {
            Some(mut buf) => {
                self.note(true, bytes);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.note(false, bytes);
                vec![0.0; len]
            }
        }
    }

    /// An empty buffer with capacity ≥ `cap`, ready for `extend`/`push`.
    pub fn take_empty(&mut self, cap: usize) -> Vec<f32> {
        let bytes = (cap * std::mem::size_of::<f32>()) as u64;
        match self.pop_with_capacity(cap) {
            Some(mut buf) => {
                self.note(true, bytes);
                buf.clear();
                buf
            }
            None => {
                self.note(false, bytes);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Retires a buffer into the free list. No-ops on zero-capacity
    /// buffers and when the list is full.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && self.free.len() < MAX_FREE {
            self.free.push(buf);
        }
    }
}

thread_local! {
    static TL_POOL: RefCell<BufferPool> = RefCell::new(BufferPool::new());
    /// Fresh bytes allocated since the tape last drained — the forward
    /// profiler's per-op allocation attribution.
    static PENDING_FRESH: Cell<u64> = const { Cell::new(0) };
}

struct PoolMetrics {
    reuse: adaptraj_obs::CounterHandle,
    bytes_reused: adaptraj_obs::CounterHandle,
    bytes_allocated: adaptraj_obs::CounterHandle,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = adaptraj_obs::global();
        PoolMetrics {
            reuse: reg.counter("tensor.pool_reuse"),
            bytes_reused: reg.counter("tensor.bytes_reused"),
            bytes_allocated: reg.counter("tensor.bytes_allocated"),
        }
    })
}

/// A zero-filled buffer of `len` elements from the calling thread's pool.
pub(crate) fn alloc_zeroed(len: usize) -> Vec<f32> {
    TL_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let before = pool.stats.bytes_allocated;
        let buf = pool.take_zeroed(len);
        let fresh = pool.stats.bytes_allocated - before;
        if fresh > 0 {
            PENDING_FRESH.with(|c| c.set(c.get() + fresh));
        }
        buf
    })
}

/// An empty buffer with capacity ≥ `cap` from the calling thread's pool.
pub(crate) fn alloc_empty(cap: usize) -> Vec<f32> {
    TL_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let before = pool.stats.bytes_allocated;
        let buf = pool.take_empty(cap);
        let fresh = pool.stats.bytes_allocated - before;
        if fresh > 0 {
            PENDING_FRESH.with(|c| c.set(c.get() + fresh));
        }
        buf
    })
}

/// A pooled copy of `src`.
pub(crate) fn alloc_copy(src: &[f32]) -> Vec<f32> {
    let mut buf = alloc_empty(src.len());
    buf.extend_from_slice(src);
    buf
}

/// Retires a buffer into the calling thread's pool.
pub fn recycle_vec(buf: Vec<f32>) {
    TL_POOL.with(|p| p.borrow_mut().give(buf));
}

/// Fresh bytes allocated on this thread since the last drain. The tape
/// calls this once per recorded node so profile byte lines attribute only
/// genuinely fresh allocations to each op.
pub(crate) fn drain_pending_fresh_bytes() -> u64 {
    PENDING_FRESH.with(|c| c.replace(0))
}

/// Cumulative stats of the calling thread's pool.
pub fn thread_stats() -> PoolStats {
    TL_POOL.with(|p| p.borrow().stats())
}

/// Buffers currently retained by the calling thread's pool.
pub fn thread_free_buffers() -> usize {
    TL_POOL.with(|p| p.borrow().free_buffers())
}

/// Flushes this thread's unflushed tallies into the global metrics
/// registry (`tensor.pool_reuse` / `tensor.bytes_reused` /
/// `tensor.bytes_allocated`). Called by `Tape::reset` once per window.
pub fn flush_thread_metrics() {
    TL_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let u = std::mem::take(&mut pool.unflushed);
        if u == PoolStats::default() {
            return;
        }
        let m = pool_metrics();
        m.reuse.add(u.reuse_hits);
        m.bytes_reused.add(u.bytes_reused);
        m.bytes_allocated.add(u.bytes_allocated);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocation_when_pool_is_empty() {
        let mut pool = BufferPool::new();
        let buf = pool.take_zeroed(8);
        assert_eq!(buf.len(), 8);
        assert!(buf.iter().all(|&x| x == 0.0));
        let s = pool.stats();
        assert_eq!(s.reuse_hits, 0);
        assert_eq!(s.bytes_allocated, 32);
        assert_eq!(s.bytes_reused, 0);
    }

    #[test]
    fn retired_buffer_is_reused_and_zeroed() {
        let mut pool = BufferPool::new();
        let mut buf = pool.take_zeroed(16);
        buf.iter_mut().for_each(|x| *x = 7.0);
        let ptr = buf.as_ptr();
        pool.give(buf);
        assert_eq!(pool.free_buffers(), 1);

        let again = pool.take_zeroed(10);
        assert_eq!(again.as_ptr(), ptr, "capacity not retained across reuse");
        assert_eq!(again.len(), 10);
        assert!(again.iter().all(|&x| x == 0.0), "stale values leaked");
        let s = pool.stats();
        assert_eq!(s.reuse_hits, 1);
        assert_eq!(s.bytes_reused, 40);
    }

    #[test]
    fn undersized_buffers_are_skipped() {
        let mut pool = BufferPool::new();
        pool.give(vec![0.0; 4]);
        let buf = pool.take_zeroed(64);
        assert_eq!(buf.len(), 64);
        assert_eq!(pool.stats().reuse_hits, 0, "4-slot buffer cannot serve 64");
        assert_eq!(pool.free_buffers(), 1, "small buffer stays pooled");
    }

    #[test]
    fn take_empty_keeps_capacity_but_clears_length() {
        let mut pool = BufferPool::new();
        pool.give(vec![3.0; 32]);
        let buf = pool.take_empty(20);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 32);
        assert_eq!(pool.stats().reuse_hits, 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = BufferPool::new();
        for _ in 0..(MAX_FREE + 100) {
            pool.give(vec![0.0; 2]);
        }
        assert_eq!(pool.free_buffers(), MAX_FREE);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut pool = BufferPool::new();
        pool.give(Vec::new());
        assert_eq!(pool.free_buffers(), 0);
    }
}
