//! Seeded random number generation.
//!
//! A self-contained xoshiro256++ generator (Blackman & Vigna) seeded
//! through SplitMix64, with the sampling primitives the rest of the
//! workspace needs (normal deviates via the Box–Muller transform,
//! Bernoulli draws, permutations) behind a stable, deterministic-by-seed
//! API. Every stochastic component in the reproduction (weight init, data
//! synthesis, latent sampling, domain-label masking) draws from an
//! explicitly seeded `Rng` so experiments replay bit-for-bit. No external
//! crates: the workspace must build with no registry access.

/// Core xoshiro256++ state. 256 bits, period 2^256 − 1; all-zero state is
/// impossible after SplitMix64 expansion.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

/// SplitMix64 step — the recommended seed expander for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Deterministic random source used throughout the workspace.
#[derive(Debug)]
pub struct Rng {
    inner: Xoshiro256,
    /// Cached second deviate from the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams on every platform.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: Xoshiro256::from_seed(seed),
            spare_normal: None,
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        // 24 high bits -> all f32 values in [0, 1) are representable.
        (self.inner.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample in `[lo, hi)`. `lo` must be `<= hi`; when they are
    /// equal the point value is returned.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.unit()
    }

    /// Standard normal sample via Box–Muller (polar form avoided to keep the
    /// stream consumption per call predictable: exactly two uniforms per
    /// pair of deviates).
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Guard against ln(0).
        let u1 = self.unit().max(f32::MIN_POSITIVE);
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        debug_assert!(std >= 0.0, "negative std {std}");
        mean + std * self.standard_normal()
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f32) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Lemire's multiply-shift bounded sampler; the bias for any
        // realistic n (≪ 2^64) is far below observable.
        ((self.inner.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// Vector of `n` standard-normal samples.
    pub fn normal_vec(&mut self, n: usize, mean: f32, std: f32) -> Vec<f32> {
        (0..n).map(|_| self.normal(mean, std)).collect()
    }

    /// Forks a child generator with an independent stream derived from this
    /// one. Useful for giving each worker/scene its own stream while keeping
    /// the parent deterministic.
    pub fn fork(&mut self) -> Rng {
        let seed = self.inner.next_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seed_from(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4, "streams should differ, {same} collisions");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(7);
        for _ in 0..1000 {
            let x = rng.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::seed_from(11);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn below_covers_range() {
        let mut rng = Rng::seed_from(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut rng = Rng::seed_from(9);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(5);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = Rng::seed_from(123);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let collisions = (0..64).filter(|_| c1.unit() == c2.unit()).count();
        assert!(collisions < 4);
    }
}
