//! GEMM microkernels and runtime dispatch for the three matmul kernels.
//!
//! Every forward/backward in the workspace bottoms out in the three
//! ikj/axpy kernels (`matmul` NN, `matmul_nt`, `matmul_tn` — see
//! [`crate::tensor::Tensor`]). Until PR 10 they relied entirely on LLVM's
//! autovectorizer at the x86-64 baseline feature level (SSE2). This module
//! adds explicit `std::arch` AVX2 microkernels with runtime dispatch, plus
//! an intra-op row-partitioning hook so large batched GEMMs can split
//! across helper threads (installed by `adaptraj-exec::intra_op`).
//!
//! # The accumulation-order contract
//!
//! All kernels in this module honor the contract pinned by the
//! golden-regression gate: *each output element accumulates its k-terms in
//! ascending order, skipping terms whose left-operand factor is exactly
//! zero, with separate mul and add roundings*. The default SIMD path
//! vectorizes across the m (output-column) axis only — 8 output elements
//! advance through the same ascending-k sequence in lockstep, and IEEE-754
//! `vmulps`/`vaddps` are lane-wise identical to scalar `*`/`+` — so its
//! results are **bit-identical** to the scalar kernel for every input,
//! including non-finite values. Register blocking (4 output rows × up to 32
//! output columns held in ymm accumulators across the whole k loop) changes
//! only *when* partial sums touch memory, never the per-element operation
//! sequence.
//!
//! The opt-in FMA variant (`ADAPTRAJ_KERNEL=fma`) fuses each mul+add into
//! one correctly-rounded `vfmadd` and is therefore allowed to produce
//! different (ulp-level, typically *more* accurate) bits. It is excluded
//! from the golden gate; finite-difference gradient checks cover it
//! (`crates/check/tests/kernel_fma.rs`).
//!
//! Intra-op threading partitions **output rows**: each output element is
//! still computed start-to-finish by exactly one thread in the same order,
//! so row splits preserve bit-identity for free, at any thread count.
//!
//! # Dispatch
//!
//! The kernel is chosen once per process (cached in an atomic):
//!
//! - `ADAPTRAJ_FORCE_SCALAR=1` forces the scalar path (tier-1 CI runs a
//!   full forced-scalar pass to pin scalar/SIMD agreement end to end).
//! - `ADAPTRAJ_KERNEL=scalar|simd|fma` selects explicitly; `simd`/`fma`
//!   fall back to scalar (with a tracing warning) when the CPU lacks
//!   AVX2/FMA.
//! - Otherwise: AVX2 detected → `simd`, else `scalar`. FMA is never chosen
//!   automatically — it changes bits, so it must be opted into.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Which microkernel family services the matmul entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The PR-5 autovectorized loops, bit-for-bit the historical kernels.
    Scalar,
    /// Explicit AVX2, mul+add (separate roundings) — bit-identical to
    /// `Scalar` by the lane-wise IEEE argument above.
    Simd,
    /// Explicit AVX2+FMA — fused rounding, ulp-level different results.
    /// Opt-in only; never selected by auto-detection.
    Fma,
}

impl Kernel {
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Simd => "simd",
            Kernel::Fma => "fma",
        }
    }
}

const KERNEL_UNSET: u8 = u8::MAX;
static ACTIVE_KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNSET);

fn kernel_from_u8(v: u8) -> Kernel {
    match v {
        0 => Kernel::Scalar,
        1 => Kernel::Simd,
        _ => Kernel::Fma,
    }
}

fn kernel_to_u8(k: Kernel) -> u8 {
    match k {
        Kernel::Scalar => 0,
        Kernel::Simd => 1,
        Kernel::Fma => 2,
    }
}

/// True when this build/CPU can run the AVX2 paths.
pub fn simd_available() -> bool {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        false
    }
}

/// True when the FMA variant can run (AVX2 + FMA).
pub fn fma_available() -> bool {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        false
    }
}

/// Resolves an `ADAPTRAJ_KERNEL` / `ADAPTRAJ_FORCE_SCALAR` request against
/// CPU capabilities. Pure so the env parsing is unit-testable; `None`
/// requests auto-detection.
pub fn resolve_kernel(
    force_scalar: bool,
    requested: Option<&str>,
    simd_ok: bool,
    fma_ok: bool,
) -> Result<Kernel, String> {
    if force_scalar {
        return Ok(Kernel::Scalar);
    }
    match requested {
        None | Some("") => Ok(if simd_ok {
            Kernel::Simd
        } else {
            Kernel::Scalar
        }),
        Some("scalar") => Ok(Kernel::Scalar),
        Some("simd") => {
            if simd_ok {
                Ok(Kernel::Simd)
            } else {
                Err("ADAPTRAJ_KERNEL=simd requested but AVX2 is unavailable; using scalar".into())
            }
        }
        Some("fma") => {
            if fma_ok {
                Ok(Kernel::Fma)
            } else {
                Err(
                    "ADAPTRAJ_KERNEL=fma requested but AVX2+FMA is unavailable; using scalar"
                        .into(),
                )
            }
        }
        Some(other) => Err(format!(
            "unknown ADAPTRAJ_KERNEL='{other}' (expected scalar|simd|fma); using auto-detection"
        )),
    }
}

fn init_kernel_from_env() -> Kernel {
    let force_scalar = std::env::var("ADAPTRAJ_FORCE_SCALAR")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let requested = std::env::var("ADAPTRAJ_KERNEL").ok();
    let k = match resolve_kernel(
        force_scalar,
        requested.as_deref(),
        simd_available(),
        fma_available(),
    ) {
        Ok(k) => k,
        Err(msg) => {
            adaptraj_obs::obs_warn!("tensor.kernels", "{msg}");
            if msg.contains("unknown") && simd_available() {
                Kernel::Simd
            } else {
                Kernel::Scalar
            }
        }
    };
    ACTIVE_KERNEL.store(kernel_to_u8(k), Ordering::Relaxed);
    k
}

/// The kernel servicing `Tensor::matmul` / `matmul_nt` / `matmul_tn`.
/// Resolved from the environment + CPU on first use and cached.
pub fn active_kernel() -> Kernel {
    match ACTIVE_KERNEL.load(Ordering::Relaxed) {
        KERNEL_UNSET => init_kernel_from_env(),
        v => kernel_from_u8(v),
    }
}

/// Overrides the process-wide kernel (micro-bench / test hook). Returns
/// the previously active kernel. Requesting an unavailable family falls
/// back to `Scalar`.
pub fn set_active_kernel(k: Kernel) -> Kernel {
    let prev = active_kernel();
    let k = match k {
        Kernel::Simd if !simd_available() => Kernel::Scalar,
        Kernel::Fma if !fma_available() => Kernel::Scalar,
        other => other,
    };
    ACTIVE_KERNEL.store(kernel_to_u8(k), Ordering::Relaxed);
    prev
}

// ---- intra-op row partitioning ------------------------------------------

/// A scoped parallel-for over output-row ranges. Implementations MUST
/// invoke `body` on disjoint `[start, end)` ranges that exactly cover
/// `[0, rows)` (any order, any concurrency) and return only after every
/// range completed. `adaptraj-exec::intra_op` installs one backed by
/// scoped helper threads.
pub type ParallelRows = dyn Fn(usize, &(dyn Fn(usize, usize) + Sync)) + Send + Sync;

static PARALLEL_ROWS: RwLock<Option<Arc<ParallelRows>>> = RwLock::new(None);
/// Fast-path flag mirroring `PARALLEL_ROWS.is_some()` so the common
/// (uninstalled) case costs one relaxed load per GEMM, not a lock.
static PARALLEL_INSTALLED: AtomicU8 = AtomicU8::new(0);

/// Installs (or, with `None`, removes) the intra-op row splitter.
pub fn set_parallel_rows(hook: Option<Arc<ParallelRows>>) {
    let mut slot = PARALLEL_ROWS.write().unwrap_or_else(|p| p.into_inner());
    PARALLEL_INSTALLED.store(u8::from(hook.is_some()), Ordering::Release);
    *slot = hook;
}

/// True when an intra-op splitter is installed (bench-config reporting).
pub fn parallel_rows_installed() -> bool {
    PARALLEL_INSTALLED.load(Ordering::Acquire) != 0
}

/// The one tunable place for the split threshold: a GEMM is eligible for
/// intra-op splitting when its flop count `2·n·k·m` is at least this.
/// Sized so the split only triggers where the scoped-thread setup cost
/// (tens of µs) is well under 10% of the kernel time. Overridable via
/// `ADAPTRAJ_INTRA_OP_MIN_FLOPS`; recorded in the bench JSON config.
pub const DEFAULT_SPLIT_MIN_FLOPS: usize = 4_000_000;

const SPLIT_UNSET: usize = usize::MAX;
static SPLIT_MIN_FLOPS: AtomicUsize = AtomicUsize::new(SPLIT_UNSET);

/// Minimum `2·n·k·m` before a GEMM row-splits across intra-op threads.
pub fn split_min_flops() -> usize {
    match SPLIT_MIN_FLOPS.load(Ordering::Relaxed) {
        SPLIT_UNSET => {
            let v = std::env::var("ADAPTRAJ_INTRA_OP_MIN_FLOPS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(DEFAULT_SPLIT_MIN_FLOPS);
            SPLIT_MIN_FLOPS.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

/// Overrides the split threshold (tests / micro-bench).
pub fn set_split_min_flops(v: usize) {
    SPLIT_MIN_FLOPS.store(v, Ordering::Relaxed);
}

/// Runs `body` over `[0, rows)`, splitting across the installed intra-op
/// hook when the GEMM is large enough. `body(start, end)` must be safe to
/// run concurrently on disjoint ranges.
fn for_rows(rows: usize, flops: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if rows > 1 && flops >= split_min_flops() && parallel_rows_installed() {
        let hook = PARALLEL_ROWS
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(hook) = hook {
            hook(rows, body);
            return;
        }
    }
    body(0, rows);
}

/// Shared-pointer wrapper so a `&mut [f32]` output buffer can be carved
/// into disjoint row ranges across the intra-op threads.
#[derive(Clone, Copy)]
struct OutPtr(*mut f32);
// SAFETY: every user writes only the `[start*m, end*m)` range handed to it
// by `for_rows`, and the splitter contract guarantees ranges are disjoint.
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

impl OutPtr {
    /// Reborrows output rows `[r0, r1)` of an `m`-column matrix.
    ///
    /// SAFETY: the caller must be the only holder of this row range (the
    /// splitter disjointness contract) and the range must lie within the
    /// allocation the pointer was taken from, which must outlive `'a`.
    unsafe fn rows_mut<'a>(self, r0: usize, r1: usize, m: usize) -> &'a mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(r0 * m), (r1 - r0) * m)
    }
}

// ---- kernel entry points -------------------------------------------------

/// `out[n,m] += a[n,k] · b[k,m]` with `out` zero-initialized by the
/// caller. Row-major everywhere.
pub fn gemm_nn(
    kernel: Kernel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    n: usize,
    k: usize,
    m: usize,
) {
    debug_assert_eq!(a.len(), n * k);
    debug_assert_eq!(b.len(), k * m);
    debug_assert_eq!(out.len(), n * m);
    let p = OutPtr(out.as_mut_ptr());
    for_rows(n, 2 * n * k * m, &|r0, r1| {
        // SAFETY: disjoint row ranges per the splitter contract.
        let rows = unsafe { p.rows_mut(r0, r1, m) };
        run_rows(kernel, a, k, 1, b, rows, r0, r1, k, m);
    });
}

/// `out[n,m] += a[k,n]ᵀ · b[k,m]` — the TN product, a read with stride `n`
/// down `a`'s columns. Same contract as [`gemm_nn`].
pub fn gemm_tn(
    kernel: Kernel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    m: usize,
) {
    debug_assert_eq!(a.len(), k * n);
    debug_assert_eq!(b.len(), k * m);
    debug_assert_eq!(out.len(), n * m);
    let p = OutPtr(out.as_mut_ptr());
    for_rows(n, 2 * n * k * m, &|r0, r1| {
        // SAFETY: disjoint row ranges per the splitter contract.
        let rows = unsafe { p.rows_mut(r0, r1, m) };
        run_rows(kernel, a, 1, n, b, rows, r0, r1, k, m);
    });
}

/// Computes output rows `[r0, r1)` into `rows` (the sub-slice for exactly
/// that range). `a` is addressed as `a[i*as0 + p*as1]`: `(k, 1)` for the
/// NN product, `(1, n)` for TN — the only difference between the two.
#[allow(clippy::too_many_arguments)]
fn run_rows(
    kernel: Kernel,
    a: &[f32],
    as0: usize,
    as1: usize,
    b: &[f32],
    rows: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    m: usize,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    match kernel {
        // SAFETY: dispatch guarantees the features are present.
        Kernel::Simd => return unsafe { gemm_rows_avx2(a, as0, as1, b, rows, r0, r1, k, m) },
        Kernel::Fma => return unsafe { gemm_rows_fma(a, as0, as1, b, rows, r0, r1, k, m) },
        Kernel::Scalar => {}
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    let _ = kernel;
    if as1 == 1 {
        scalar_rows_nn(a, b, rows, r0, r1, k, m);
    } else {
        scalar_rows_tn(a, as1, b, rows, r0, r1, k, m);
    }
}

/// The historical ikj loop (`Tensor::matmul` pre-PR-10), restricted to a
/// row range. Per output element: k ascending, skip on `a == 0.0`,
/// separate mul+add into the memory accumulator — the reference the SIMD
/// paths must match bit for bit.
fn scalar_rows_nn(
    a: &[f32],
    b: &[f32],
    rows: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    m: usize,
) {
    for i in r0..r1 {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut rows[(i - r0) * m..(i - r0 + 1) * m];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * m..(p + 1) * m];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// The historical p-outer TN loop (`Tensor::matmul_tn` pre-PR-10): both
/// `a` row `p` and `b` row `p` stream contiguously; each output row in
/// `[r0, r1)` accumulates an axpy of `b`'s row. Identical per-element
/// term order to [`scalar_rows_nn`] (k ascending, zero-skip, separate
/// mul+add), just a different loop nest.
#[allow(clippy::too_many_arguments)]
fn scalar_rows_tn(
    a: &[f32],
    n: usize,
    b: &[f32],
    rows: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    m: usize,
) {
    for p in 0..k {
        let a_row = &a[p * n + r0..p * n + r1];
        let b_row = &b[p * m..(p + 1) * m];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut rows[i * m..(i + 1) * m];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Generates the AVX2 microkernel body twice: once with separate
/// mul+add (`Simd`, bit-identical to scalar) and once with fused
/// multiply-add (`Fma`, fused rounding). Structure:
///
/// - 4 output rows × 2 ymm (16 columns) register block in the main loop:
///   accumulators live in registers across the entire ascending-k sweep,
///   b-row loads are shared by the 4 rows, and the zero-skip is applied
///   per (row, k) exactly like the scalar kernel;
/// - 1 row × up to 4 ymm (32 columns) for leftover rows;
/// - 8-wide then scalar column tails, each with a private accumulator that
///   performs the same op sequence as the scalar loop.
macro_rules! gemm_rows_simd {
    ($name:ident, $features:literal, $madd:expr) => {
        #[target_feature(enable = $features)]
        #[allow(clippy::too_many_arguments)]
        pub(super) unsafe fn $name(
            a: &[f32],
            as0: usize,
            as1: usize,
            b: &[f32],
            rows: &mut [f32],
            r0: usize,
            r1: usize,
            k: usize,
            m: usize,
        ) {
            // madd(acc, a, b): acc ⊕ a·b — separate or fused rounding.
            let madd = $madd;

            let bp = b.as_ptr();
            let ap = a.as_ptr();
            let op = rows.as_mut_ptr();
            let mut i = r0;
            // ---- 4-row register block over 16-column panels ----
            while i + 4 <= r1 {
                let arow = |r: usize, p: usize| *ap.add((i + r) * as0 + p * as1);
                let orow = |r: usize| op.add((i + r - r0) * m);
                let mut j = 0;
                while j + 16 <= m {
                    let mut c00 = _mm256_setzero_ps();
                    let mut c01 = _mm256_setzero_ps();
                    let mut c10 = _mm256_setzero_ps();
                    let mut c11 = _mm256_setzero_ps();
                    let mut c20 = _mm256_setzero_ps();
                    let mut c21 = _mm256_setzero_ps();
                    let mut c30 = _mm256_setzero_ps();
                    let mut c31 = _mm256_setzero_ps();
                    for p in 0..k {
                        let b0 = _mm256_loadu_ps(bp.add(p * m + j));
                        let b1 = _mm256_loadu_ps(bp.add(p * m + j + 8));
                        let a0 = arow(0, p);
                        if a0 != 0.0 {
                            let v = _mm256_set1_ps(a0);
                            c00 = madd(c00, v, b0);
                            c01 = madd(c01, v, b1);
                        }
                        let a1 = arow(1, p);
                        if a1 != 0.0 {
                            let v = _mm256_set1_ps(a1);
                            c10 = madd(c10, v, b0);
                            c11 = madd(c11, v, b1);
                        }
                        let a2 = arow(2, p);
                        if a2 != 0.0 {
                            let v = _mm256_set1_ps(a2);
                            c20 = madd(c20, v, b0);
                            c21 = madd(c21, v, b1);
                        }
                        let a3 = arow(3, p);
                        if a3 != 0.0 {
                            let v = _mm256_set1_ps(a3);
                            c30 = madd(c30, v, b0);
                            c31 = madd(c31, v, b1);
                        }
                    }
                    _mm256_storeu_ps(orow(0).add(j), c00);
                    _mm256_storeu_ps(orow(0).add(j + 8), c01);
                    _mm256_storeu_ps(orow(1).add(j), c10);
                    _mm256_storeu_ps(orow(1).add(j + 8), c11);
                    _mm256_storeu_ps(orow(2).add(j), c20);
                    _mm256_storeu_ps(orow(2).add(j + 8), c21);
                    _mm256_storeu_ps(orow(3).add(j), c30);
                    _mm256_storeu_ps(orow(3).add(j + 8), c31);
                    j += 16;
                }
                // 8-wide panel shared by the 4 rows.
                while j + 8 <= m {
                    let mut c0 = _mm256_setzero_ps();
                    let mut c1 = _mm256_setzero_ps();
                    let mut c2 = _mm256_setzero_ps();
                    let mut c3 = _mm256_setzero_ps();
                    for p in 0..k {
                        let b0 = _mm256_loadu_ps(bp.add(p * m + j));
                        let a0 = arow(0, p);
                        if a0 != 0.0 {
                            c0 = madd(c0, _mm256_set1_ps(a0), b0);
                        }
                        let a1 = arow(1, p);
                        if a1 != 0.0 {
                            c1 = madd(c1, _mm256_set1_ps(a1), b0);
                        }
                        let a2 = arow(2, p);
                        if a2 != 0.0 {
                            c2 = madd(c2, _mm256_set1_ps(a2), b0);
                        }
                        let a3 = arow(3, p);
                        if a3 != 0.0 {
                            c3 = madd(c3, _mm256_set1_ps(a3), b0);
                        }
                    }
                    _mm256_storeu_ps(orow(0).add(j), c0);
                    _mm256_storeu_ps(orow(1).add(j), c1);
                    _mm256_storeu_ps(orow(2).add(j), c2);
                    _mm256_storeu_ps(orow(3).add(j), c3);
                    j += 8;
                }
                // Scalar column tail, 4 rows.
                while j < m {
                    for r in 0..4 {
                        let mut acc = 0.0f32;
                        for p in 0..k {
                            let av = arow(r, p);
                            if av == 0.0 {
                                continue;
                            }
                            acc += av * *bp.add(p * m + j);
                        }
                        *orow(r).add(j) = acc;
                    }
                    j += 1;
                }
                i += 4;
            }
            // ---- leftover rows, one at a time ----
            while i < r1 {
                let aval = |p: usize| *ap.add(i * as0 + p * as1);
                let out_row = op.add((i - r0) * m);
                let mut j = 0;
                while j + 32 <= m {
                    let mut c0 = _mm256_setzero_ps();
                    let mut c1 = _mm256_setzero_ps();
                    let mut c2 = _mm256_setzero_ps();
                    let mut c3 = _mm256_setzero_ps();
                    for p in 0..k {
                        let av = aval(p);
                        if av == 0.0 {
                            continue;
                        }
                        let v = _mm256_set1_ps(av);
                        let bj = bp.add(p * m + j);
                        c0 = madd(c0, v, _mm256_loadu_ps(bj));
                        c1 = madd(c1, v, _mm256_loadu_ps(bj.add(8)));
                        c2 = madd(c2, v, _mm256_loadu_ps(bj.add(16)));
                        c3 = madd(c3, v, _mm256_loadu_ps(bj.add(24)));
                    }
                    _mm256_storeu_ps(out_row.add(j), c0);
                    _mm256_storeu_ps(out_row.add(j + 8), c1);
                    _mm256_storeu_ps(out_row.add(j + 16), c2);
                    _mm256_storeu_ps(out_row.add(j + 24), c3);
                    j += 32;
                }
                while j + 8 <= m {
                    let mut c0 = _mm256_setzero_ps();
                    for p in 0..k {
                        let av = aval(p);
                        if av == 0.0 {
                            continue;
                        }
                        c0 = madd(c0, _mm256_set1_ps(av), _mm256_loadu_ps(bp.add(p * m + j)));
                    }
                    _mm256_storeu_ps(out_row.add(j), c0);
                    j += 8;
                }
                while j < m {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        let av = aval(p);
                        if av == 0.0 {
                            continue;
                        }
                        acc += av * *bp.add(p * m + j);
                    }
                    *out_row.add(j) = acc;
                    j += 1;
                }
                i += 1;
            }
        }
    };
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod simd_impls {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    gemm_rows_simd!(gemm_rows_avx2, "avx2", |acc, a, b| _mm256_add_ps(
        acc,
        _mm256_mul_ps(a, b)
    ));
    gemm_rows_simd!(gemm_rows_fma, "avx2,fma", |acc, a, b| _mm256_fmadd_ps(
        a, b, acc
    ));
}
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
use simd_impls::{gemm_rows_avx2, gemm_rows_fma};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::tensor::Tensor;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn resolve_kernel_env_matrix() {
        use Kernel::*;
        assert_eq!(resolve_kernel(true, Some("fma"), true, true), Ok(Scalar));
        assert_eq!(resolve_kernel(false, None, true, true), Ok(Simd));
        assert_eq!(resolve_kernel(false, None, false, false), Ok(Scalar));
        assert_eq!(
            resolve_kernel(false, Some("scalar"), true, true),
            Ok(Scalar)
        );
        assert_eq!(resolve_kernel(false, Some("simd"), true, false), Ok(Simd));
        assert_eq!(resolve_kernel(false, Some("fma"), true, true), Ok(Fma));
        assert!(resolve_kernel(false, Some("fma"), true, false).is_err());
        assert!(resolve_kernel(false, Some("simd"), false, false).is_err());
        assert!(resolve_kernel(false, Some("avx9000"), true, true).is_err());
    }

    #[test]
    fn simd_paths_match_scalar_bitwise_on_awkward_shapes() {
        if !simd_available() {
            return;
        }
        let mut rng = Rng::seed_from(99);
        // Shapes chosen to hit every panel: 4-row blocks, leftover rows,
        // 32/16/8-wide column panels, scalar tails, k=0, m=0, n=1.
        for &(n, k, m) in &[
            (1usize, 1usize, 1usize),
            (1, 7, 3),
            (4, 16, 16),
            (5, 48, 128),
            (9, 80, 33),
            (3, 2, 70),
            (6, 5, 8),
            (2, 0, 4),
            (0, 3, 4),
            (4, 3, 0),
            (13, 31, 37),
        ] {
            let mut a = Tensor::randn(n, k, 0.0, 1.0, &mut rng);
            let b = Tensor::randn(k, m, 0.0, 1.0, &mut rng);
            // Plant exact zeros so the zero-skip contract is exercised.
            for (idx, v) in a.data_mut().iter_mut().enumerate() {
                if idx % 3 == 0 {
                    *v = 0.0;
                }
            }
            let scalar_nn = a.matmul_with(&b, Kernel::Scalar);
            let simd_nn = a.matmul_with(&b, Kernel::Simd);
            assert_eq!(bits(&scalar_nn), bits(&simd_nn), "NN ({n},{k},{m})");

            let at = a.transpose();
            let scalar_tn = at.matmul_tn_with(&b, Kernel::Scalar);
            let simd_tn = at.matmul_tn_with(&b, Kernel::Simd);
            assert_eq!(bits(&scalar_tn), bits(&simd_tn), "TN ({n},{k},{m})");
            assert_eq!(bits(&scalar_nn), bits(&scalar_tn), "NN vs TN ({n},{k},{m})");

            let bt = b.transpose();
            let scalar_nt = a.matmul_nt_with(&bt, Kernel::Scalar);
            let simd_nt = a.matmul_nt_with(&bt, Kernel::Simd);
            assert_eq!(bits(&scalar_nt), bits(&simd_nt), "NT ({n},{k},{m})");
        }
    }

    #[test]
    fn fma_matches_scalar_within_ulp_tolerance() {
        if !fma_available() {
            return;
        }
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(6, 40, 0.0, 1.0, &mut rng);
        let b = Tensor::randn(40, 24, 0.0, 1.0, &mut rng);
        let scalar = a.matmul_with(&b, Kernel::Scalar);
        let fma = a.matmul_with(&b, Kernel::Fma);
        for (s, f) in scalar.data().iter().zip(fma.data()) {
            let denom = s.abs().max(1.0);
            assert!(
                (s - f).abs() / denom < 1e-5,
                "fma drifted beyond rounding: {s} vs {f}"
            );
        }
    }

    #[test]
    fn row_split_is_bitwise_invariant() {
        // A hand-rolled splitter (3 uneven chunks on the calling thread)
        // must reproduce the unsplit result exactly — the property the
        // exec intra-op hook relies on.
        let mut rng = Rng::seed_from(17);
        let a = Tensor::randn(10, 48, 0.0, 1.0, &mut rng);
        let b = Tensor::randn(48, 64, 0.0, 1.0, &mut rng);
        let unsplit = a.matmul(&b);
        set_parallel_rows(Some(Arc::new(
            |rows, body: &(dyn Fn(usize, usize) + Sync)| {
                let cut1 = rows / 3;
                let cut2 = 2 * rows / 3;
                body(0, cut1);
                body(cut1, cut2);
                body(cut2, rows);
            },
        )));
        let prev_min = split_min_flops();
        set_split_min_flops(0);
        let split = a.matmul(&b);
        let split_tn = a.transpose().matmul_tn(&b);
        set_split_min_flops(prev_min);
        set_parallel_rows(None);
        assert_eq!(bits(&unsplit), bits(&split));
        assert_eq!(bits(&unsplit), bits(&split_tn));
    }

    #[test]
    fn split_threshold_gates_small_gemms() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        set_parallel_rows(Some(Arc::new(
            |rows, body: &(dyn Fn(usize, usize) + Sync)| {
                CALLS.fetch_add(1, Ordering::Relaxed);
                body(0, rows);
            },
        )));
        let prev_min = split_min_flops();
        set_split_min_flops(1_000_000_000);
        let a = Tensor::ones(4, 4);
        let _ = a.matmul(&a); // far below threshold: hook must not fire
        let below = CALLS.load(Ordering::Relaxed);
        set_split_min_flops(1);
        let _ = a.matmul(&a);
        let above = CALLS.load(Ordering::Relaxed);
        set_split_min_flops(prev_min);
        set_parallel_rows(None);
        assert_eq!(below, 0, "hook fired below the flop threshold");
        assert_eq!(above, 1, "hook did not fire above the flop threshold");
    }
}
