//! Property-based tests of the tensor kernels and autodiff engine.
//!
//! Compiled only with `--features proptest-tests` (requires the registry
//! `proptest` crate; see Cargo.toml — the default build must stay offline).
#![cfg(feature = "proptest-tests")]

use adaptraj_tensor::{Rng, Tape, Tensor};
use proptest::prelude::*;

/// Strategy: a tensor with the given shape and bounded entries.
fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in tensor(3, 4), b in tensor(3, 4)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn matmul_distributes_over_add(a in tensor(2, 3), b in tensor(3, 2), c in tensor(3, 2)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involution(a in tensor(4, 5)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_identity(a in tensor(2, 3), b in tensor(3, 4)) {
        // (AB)^T = B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor(3, 6)) {
        let s = a.softmax_rows();
        for r in 0..3 {
            let row = s.row_slice(r);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_slice_round_trip(a in tensor(3, 2), b in tensor(3, 5)) {
        let c = Tensor::concat_cols(&[&a, &b]);
        prop_assert_eq!(c.slice_cols(0, 2), a);
        prop_assert_eq!(c.slice_cols(2, 7), b);
    }

    #[test]
    fn mean_rows_matches_manual(a in tensor(4, 3)) {
        let m = a.mean_rows();
        for c in 0..3 {
            let manual: f32 = (0..4).map(|r| a.at(r, c)).sum::<f32>() / 4.0;
            prop_assert!((m.at(0, c) - manual).abs() < 1e-5);
        }
    }

    #[test]
    fn simse_bounded_by_mse(pred in tensor(2, 6), target in tensor(2, 6)) {
        // SIMSE = MSE - (mean error)^2 <= MSE, and >= 0.
        let mut tape = Tape::new();
        let p = tape.input(pred.clone());
        let simse = tape.simse_to(p, &target);
        let simse_v = tape.value(simse).item();
        let mse = pred.sub(&target).frob_sq() / 12.0;
        prop_assert!(simse_v <= mse + 1e-4, "simse {simse_v} > mse {mse}");
        prop_assert!(simse_v >= -1e-4, "simse negative: {simse_v}");
    }

    /// The central autodiff property: for a random composite graph, the
    /// analytic input gradient matches central finite differences.
    #[test]
    fn composite_graph_gradcheck(x in tensor(2, 3), seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let w = Tensor::randn(3, 3, 0.0, 1.0, &mut rng);
        let build = |tape: &mut Tape, xv: adaptraj_tensor::Var| {
            let wv = tape.constant(w.clone());
            let h = tape.matmul(xv, wv);
            let h = tape.tanh(h);
            let s = tape.sigmoid(h);
            let m = tape.mul(h, s);
            tape.mean_all(m)
        };
        let mut tape = Tape::new();
        let xv = tape.input(x.clone());
        let loss = build(&mut tape, xv);
        let grads = tape.backward(loss);
        let g = grads.expect(xv).clone();

        let eps = 1e-2f32;
        for i in 0..x.len() {
            let mut plus = x.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x.clone();
            minus.data_mut()[i] -= eps;
            let mut tp = Tape::new();
            let vp = tp.input(plus);
            let lp = build(&mut tp, vp);
            let mut tm = Tape::new();
            let vm = tm.input(minus);
            let lm = build(&mut tm, vm);
            let numeric = (tp.value(lp).item() - tm.value(lm).item()) / (2.0 * eps);
            prop_assert!(
                (g.data()[i] - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "grad mismatch at {}: {} vs {}", i, g.data()[i], numeric
            );
        }
    }

    #[test]
    fn grad_reverse_negates_gradient(x in tensor(1, 4), lambda in 0.1f32..2.0) {
        let mut t1 = Tape::new();
        let a = t1.input(x.clone());
        let s = t1.sum_all(a);
        let g_plain = t1.backward(s).expect(a).clone();

        let mut t2 = Tape::new();
        let b = t2.input(x.clone());
        let r = t2.grad_reverse(b, lambda);
        // Forward must be the identity.
        prop_assert_eq!(t2.value(r).data(), x.data());
        let s2 = t2.sum_all(r);
        let g_rev = t2.backward(s2).expect(b).clone();
        for (p, n) in g_plain.data().iter().zip(g_rev.data()) {
            prop_assert!((n + lambda * p).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_rows_preserves_content(a in tensor(5, 3), idx in proptest::collection::vec(0usize..5, 1..8)) {
        let g = a.gather_rows(&idx);
        prop_assert_eq!(g.rows(), idx.len());
        for (out_r, &src) in idx.iter().enumerate() {
            prop_assert_eq!(g.row_slice(out_r), a.row_slice(src));
        }
    }
}
