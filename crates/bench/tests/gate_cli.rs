//! Regression tests pinning `bench_gate`'s behavior on malformed input:
//! a one-line schema error on stderr and exit code 2 — never a panic.

use std::path::PathBuf;
use std::process::Command;

fn bench_gate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
}

fn write_tmp(name: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adaptraj_gate_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path
}

const GOOD_DOC: &str = "{\"schema\":\"adaptraj-bench/v1\",\"created_unix\":1,\
     \"workloads\":[{\"name\":\"w\",\"windows_per_sec\":100.0,\
     \"backward_ns_per_node\":500.0,\"infer_p50_ms\":2.0,\"infer_p99_ms\":5.0}]}";

fn assert_schema_error(out: std::process::Output, needle: &str) {
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "stderr missing '{needle}': {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "gate panicked instead of reporting: {stderr}"
    );
    // One-line diagnosis, not a backtrace.
    assert_eq!(stderr.trim_end().lines().count(), 1, "stderr: {stderr}");
}

#[test]
fn malformed_baseline_is_a_one_line_error() {
    let bad = write_tmp("malformed.json", "{\"schema\":\"adaptraj-bench/v1\",");
    let good = write_tmp("good.json", GOOD_DOC);
    let out = bench_gate()
        .args([
            "--baseline",
            bad.to_str().unwrap(),
            "--candidate",
            good.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_schema_error(out, "bench_gate: baseline");
}

#[test]
fn wrong_schema_version_is_a_one_line_error() {
    let good = write_tmp("good2.json", GOOD_DOC);
    let wrong = write_tmp(
        "wrong_schema.json",
        "{\"schema\":\"adaptraj-bench/v999\",\"created_unix\":1,\"workloads\":[]}",
    );
    let out = bench_gate()
        .args([
            "--baseline",
            good.to_str().unwrap(),
            "--candidate",
            wrong.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_schema_error(out, "bench_gate: candidate");
}

#[test]
fn missing_file_is_a_one_line_error() {
    let good = write_tmp("good3.json", GOOD_DOC);
    let out = bench_gate()
        .args([
            "--baseline",
            "/nonexistent/BENCH.json",
            "--candidate",
            good.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_schema_error(out, "bench_gate: baseline");
}
