//! Calibration utility: trains a handful of representative cells at the
//! smoke scale and prints their errors and timings. Used during
//! development to sanity-check hyperparameter changes before a full
//! table run; kept as a fast end-to-end probe of the experiment stack.
//!
//! ```sh
//! cargo run --release -p adaptraj-bench --example tuning_probe
//! ```

use adaptraj_bench::{build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{leave_one_out, run_cell, BackboneKind, CellSpec, MethodKind};

fn main() {
    let datasets = build_datasets(Scale::Smoke);
    let cfg = Scale::Smoke.runner();
    for (backbone, method) in [
        (BackboneKind::PecNet, MethodKind::Vanilla),
        (BackboneKind::PecNet, MethodKind::AdapTraj),
        (BackboneKind::Lbebm, MethodKind::Vanilla),
        (BackboneKind::Lbebm, MethodKind::AdapTraj),
    ] {
        let spec = CellSpec {
            backbone,
            method,
            sources: leave_one_out(DomainId::Sdd),
            target: DomainId::Sdd,
        };
        let res = run_cell(&spec, &datasets, &cfg);
        println!(
            "{:40} ADE/FDE {}  train {:.1}s  infer {:.5}s/traj",
            spec.label(),
            res.eval,
            res.train_time_s,
            res.infer_time_s
        );
    }
}
