//! Closed-loop serving load workload (`bench --load`): starts an
//! in-process `adaptraj-serve` instance on an ephemeral port and sweeps
//! client concurrency over real sockets, recording per-level latency
//! percentiles, achieved qps, and the saturation qps (the best achieved
//! qps across the sweep — the closed-loop throughput ceiling for this
//! model/worker/batch-window configuration).
//!
//! Closed loop means each client thread sends its next request only
//! after the previous response arrives, so the offered load adapts to
//! the server instead of overrunning it: no 503s during measurement
//! (the admission queue is sized above the client count), and achieved
//! qps saturates instead of collapsing. Latency percentiles follow the
//! same support rule as the eval workload
//! ([`pctl_supported`](crate::perf::pctl_supported)): p999 is NaN (JSON
//! `null`) unless a level collected at least 1000 samples.

use crate::perf::{pctl, pctl_supported};
use adaptraj_data::dataset::synthesize_domain;
use adaptraj_data::dataset::SynthesisConfig;
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::TrajWindow;
use adaptraj_eval::{build_predictor, BackboneKind, CellSpec, MethodKind, RunnerConfig};
use adaptraj_models::TrainerConfig;
use adaptraj_obs::json::{Arr, Obj};
use adaptraj_serve::codec;
use adaptraj_serve::{PredictServer, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Scale knobs for the load sweep.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Client-concurrency levels to sweep.
    pub clients: Vec<usize>,
    /// Closed-loop requests issued per client per level.
    pub requests_per_client: usize,
    /// Model-execution worker threads for the server.
    pub workers: usize,
    /// Micro-batcher coalescing window (µs).
    pub batch_window_us: u64,
    /// Seed for model init, scene selection, and request seeds.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: vec![1, 2, 4, 8],
            requests_per_client: 64,
            workers: 2,
            batch_window_us: 2000,
            seed: 7,
        }
    }
}

/// Measured numbers for one concurrency level.
#[derive(Debug, Clone)]
pub struct LoadLevel {
    pub clients: usize,
    /// Requests completed (all of them — a failed request fails the run).
    pub requests: u64,
    /// Achieved closed-loop throughput over the level's wall-clock.
    pub qps: f64,
    pub p50_ms: f64,
    /// NaN unless the level collected >= 100 samples.
    pub p99_ms: f64,
    /// NaN unless the level collected >= 1000 samples.
    pub p999_ms: f64,
}

impl LoadLevel {
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("clients", self.clients as u64)
            .u64("requests", self.requests)
            .f64("qps", self.qps)
            .f64("p50_ms", self.p50_ms)
            .f64("p99_ms", self.p99_ms)
            .f64("p999_ms", self.p999_ms)
            .finish()
    }
}

/// The full sweep result, embedded as the bench document's `load` key.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub config: LoadConfig,
    pub levels: Vec<LoadLevel>,
    /// Best achieved qps across the sweep.
    pub saturation_qps: f64,
}

impl LoadReport {
    pub fn to_json(&self) -> String {
        let mut levels = Arr::new();
        for l in &self.levels {
            levels = levels.push_raw(&l.to_json());
        }
        let config = Obj::new()
            .raw("clients", &{
                let mut a = Arr::new();
                for &c in &self.config.clients {
                    a = a.push_raw(&c.to_string());
                }
                a.finish()
            })
            .u64(
                "requests_per_client",
                self.config.requests_per_client as u64,
            )
            .u64("workers", self.config.workers as u64)
            .u64("batch_window_us", self.config.batch_window_us)
            .u64("seed", self.config.seed)
            .finish();
        Obj::new()
            .raw("config", &config)
            .raw("levels", &levels.finish())
            .f64("saturation_qps", self.saturation_qps)
            .finish()
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "clients", "requests", "qps", "p50 ms", "p99 ms", "p999 ms"
        ));
        for l in &self.levels {
            out.push_str(&format!(
                "{:<10} {:>10} {:>10.1} {:>10.3} {:>10.3} {:>10.3}\n",
                l.clients, l.requests, l.qps, l.p50_ms, l.p99_ms, l.p999_ms
            ));
        }
        out.push_str(&format!("saturation qps: {:.1}\n", self.saturation_qps));
        out
    }
}

/// One closed-loop request over a fresh connection; returns latency (ms).
/// Any non-200 fails the workload loudly — the queue is sized so the
/// closed loop never trips admission control.
fn request(addr: &str, body: &str) -> f64 {
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("load client connect");
    let req = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: load\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("load client send");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("load client read");
    assert!(
        response.starts_with("HTTP/1.1 200 "),
        "load request failed: {:.200}",
        response
    );
    t0.elapsed().as_secs_f64() * 1e3
}

/// Builds a small fixed-seed model for serving. One quick epoch on a few
/// windows: the forward-pass cost (which is what load latency measures)
/// is identical to a fully trained model's.
fn quick_model(cfg: &LoadConfig) -> (Box<dyn adaptraj_models::Predictor>, Vec<TrajWindow>) {
    let synth = SynthesisConfig {
        scenes: 3,
        seed: cfg.seed,
        ..SynthesisConfig::default()
    };
    let train_ds = synthesize_domain(DomainId::EthUcy, &synth);
    let target_ds = synthesize_domain(DomainId::Sdd, &synth);
    let spec = CellSpec {
        backbone: BackboneKind::PecNet,
        method: MethodKind::Vanilla,
        sources: vec![DomainId::EthUcy],
        target: DomainId::Sdd,
    };
    let runner = RunnerConfig {
        trainer: TrainerConfig {
            epochs: 1,
            max_train_windows: 32,
            seed: cfg.seed,
            patience: 0,
            ..TrainerConfig::default()
        },
        ..RunnerConfig::default()
    };
    let mut predictor = build_predictor(&spec, &runner);
    predictor.fit(&train_ds.train);
    let scenes: Vec<TrajWindow> = target_ds.test.into_iter().take(16).collect();
    assert!(!scenes.is_empty(), "load workload synthesized no scenes");
    (predictor, scenes)
}

/// Runs the sweep. Panics on any failed request (the bench must not
/// silently produce numbers from a half-broken server).
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let (predictor, scenes) = quick_model(cfg);
    let max_clients = cfg.clients.iter().copied().max().unwrap_or(1);
    let server = PredictServer::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: cfg.workers,
            batch_window_us: cfg.batch_window_us,
            // Closed loop: at most `max_clients` requests are ever in
            // flight, so this cap guarantees no 503 during measurement.
            queue_cap: max_clients * 2 + 8,
            deadline_ms: 30_000,
            ..ServeConfig::default()
        },
        predictor,
        None,
        None,
    )
    .expect("load server start");
    let addr = server.local_addr().to_string();

    // Pre-encode one request body per scene; clients cycle through them.
    let bodies: Vec<String> = scenes
        .iter()
        .enumerate()
        .map(|(i, w)| codec::encode_request(w, cfg.seed.wrapping_add(i as u64), 1))
        .collect();

    let mut levels = Vec::new();
    for &n in &cfg.clients {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..n)
            .map(|c| {
                let addr = addr.clone();
                let bodies = bodies.clone();
                let reqs = cfg.requests_per_client;
                std::thread::spawn(move || {
                    let mut lat = Vec::with_capacity(reqs);
                    for i in 0..reqs {
                        let body = &bodies[(c + i * n) % bodies.len()];
                        lat.push(request(&addr, body));
                    }
                    lat
                })
            })
            .collect();
        let mut latencies: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client panicked"))
            .collect();
        let wall_s = t0.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        levels.push(LoadLevel {
            clients: n,
            requests: latencies.len() as u64,
            qps: latencies.len() as f64 / wall_s,
            p50_ms: pctl(&latencies, 0.50),
            p99_ms: pctl_supported(&latencies, 0.99),
            p999_ms: pctl_supported(&latencies, 0.999),
        });
    }
    server.stop();

    let saturation_qps = levels.iter().map(|l| l.qps).fold(f64::NAN, f64::max);
    LoadReport {
        config: cfg.clone(),
        levels,
        saturation_qps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_sane_numbers_and_json() {
        let cfg = LoadConfig {
            clients: vec![1, 2],
            requests_per_client: 4,
            workers: 1,
            batch_window_us: 200,
            seed: 11,
        };
        let report = run_load(&cfg);
        assert_eq!(report.levels.len(), 2);
        for l in &report.levels {
            assert_eq!(l.requests, (l.clients * 4) as u64);
            assert!(l.qps > 0.0);
            assert!(l.p50_ms > 0.0);
            // 4 and 8 samples cannot support p99/p999.
            assert!(l.p99_ms.is_nan() && l.p999_ms.is_nan());
        }
        assert!(report.saturation_qps > 0.0);
        let json = report.to_json();
        let v = adaptraj_obs::json::Value::parse(&json).expect("load json parses");
        assert!(v.get("saturation_qps").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(v.get("levels").unwrap().as_array().unwrap().len(), 2);
        // Unsupported percentiles serialize as null, not a bogus number.
        let lvl0 = &v.get("levels").unwrap().as_array().unwrap()[0];
        assert!(lvl0.get("p999_ms").unwrap().as_f64().is_none());
    }
}
