//! Reproduces **Fig. 3**: AdapTraj performance (both backbones) as the
//! number of source domains grows from 1 to 3, target SDD. The paper's
//! point: with AdapTraj, *more* sources now help (negative transfer is
//! mitigated — contrast with Table III).

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{run_cell, BackboneKind, CellSpec, MethodKind, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Fig. 3: AdapTraj vs number of source domains (target SDD)",
        scale,
    );
    let datasets = build_datasets(scale);
    let cfg = scale.runner();

    let source_sets: [Vec<DomainId>; 3] = [
        vec![DomainId::EthUcy],
        vec![DomainId::EthUcy, DomainId::LCas],
        vec![DomainId::EthUcy, DomainId::LCas, DomainId::Syi],
    ];

    let mut table = TextTable::new(&["#Sources", "PECNet-AdapTraj", "LBEBM-AdapTraj"]);
    for (n, sources) in source_sets.iter().enumerate() {
        let mut row = vec![format!("{}", n + 1)];
        for backbone in BackboneKind::ALL {
            let spec = CellSpec {
                backbone,
                method: MethodKind::AdapTraj,
                sources: sources.clone(),
                target: DomainId::Sdd,
            };
            eprintln!("[run] {}", spec.label());
            let res = run_cell(&spec, &datasets, &cfg);
            row.push(res.eval.to_string());
        }
        // Column order in the table header is PECNet then LBEBM; ALL is
        // [PecNet, Lbebm], so the pushes line up.
        table.push_row(row);
    }
    println!("{table}");
    println!(
        "Expected shape (paper Fig. 3): errors *decrease* (or hold) as sources\n\
         are added — AdapTraj turns extra domains into signal, not noise."
    );
}
