//! Reproduces **Table VII**: the ablation study — removing the
//! domain-specific or domain-invariant feature family from AdapTraj,
//! sources {ETH&UCY, L-CAS, SYI}, target SDD.

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{run_cell, BackboneKind, CellSpec, MethodKind, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Table VII: ablation (sources ETH&UCY+L-CAS+SYI, target SDD)",
        scale,
    );
    let datasets = build_datasets(scale);
    let cfg = scale.runner();
    let sources = vec![DomainId::EthUcy, DomainId::LCas, DomainId::Syi];

    let mut table = TextTable::new(&["Backbone", "Variant", "ADE", "FDE"]);
    for backbone in BackboneKind::ALL {
        for method in [
            MethodKind::AdapTrajNoSpecific,
            MethodKind::AdapTrajNoInvariant,
            MethodKind::AdapTraj,
        ] {
            let spec = CellSpec {
                backbone,
                method,
                sources: sources.clone(),
                target: DomainId::Sdd,
            };
            eprintln!("[run] {}", spec.label());
            let res = run_cell(&spec, &datasets, &cfg);
            let variant = match method {
                MethodKind::AdapTraj => "ours",
                m => m.name(),
            };
            table.push_row(vec![
                backbone.name().to_string(),
                variant.to_string(),
                format!("{:.3}", res.eval.ade),
                format!("{:.3}", res.eval.fde),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Expected shape (paper Tab. VII): the full framework ('ours') beats\n\
         both ablations on both backbones."
    );
}
