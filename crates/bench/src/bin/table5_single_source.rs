//! Reproduces **Table V**: single-source domain generalization — each of
//! ETH&UCY / L-CAS / SYI as the sole source, evaluated on SDD, plus row
//! averages.

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{run_cell, BackboneKind, CellSpec, MethodKind, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Table V: single-source domain generalization (target SDD)",
        scale,
    );
    let datasets = build_datasets(scale);
    let cfg = scale.runner();

    let sources = [DomainId::EthUcy, DomainId::LCas, DomainId::Syi];
    let mut table = TextTable::new(&["Backbone", "Method", "ETH&UCY", "L-CAS", "SYI", "Average"]);

    for backbone in BackboneKind::ALL {
        for method in MethodKind::COMPARED {
            let mut row = vec![backbone.name().to_string(), method.name().to_string()];
            let (mut ade_sum, mut fde_sum) = (0.0f32, 0.0f32);
            for source in sources {
                let spec = CellSpec {
                    backbone,
                    method,
                    sources: vec![source],
                    target: DomainId::Sdd,
                };
                eprintln!("[run] {}", spec.label());
                let res = run_cell(&spec, &datasets, &cfg);
                ade_sum += res.eval.ade;
                fde_sum += res.eval.fde;
                row.push(res.eval.to_string());
            }
            row.push(format!(
                "{:.3}/{:.3}",
                ade_sum / sources.len() as f32,
                fde_sum / sources.len() as f32
            ));
            table.push_row(row);
        }
    }
    println!("{table}");
    println!(
        "Expected shape (paper Tab. V): AdapTraj has the best averages even\n\
         in the single-source setting."
    );
}
