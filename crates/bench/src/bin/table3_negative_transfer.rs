//! Reproduces **Table III**: the negative-transfer phenomenon — the
//! single-source generalization methods (Counter, CausalMotion) get
//! *worse* on the unseen SDD domain as more source domains are pooled
//! (Sec. II-B.2).

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{run_cell, BackboneKind, CellSpec, MethodKind, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Table III: negative transfer (target SDD)", scale);
    let datasets = build_datasets(scale);
    let cfg = scale.runner();

    let source_sets: [Vec<DomainId>; 3] = [
        vec![DomainId::EthUcy],
        vec![DomainId::EthUcy, DomainId::LCas],
        vec![DomainId::EthUcy, DomainId::LCas, DomainId::Syi],
    ];

    let mut table = TextTable::new(&["Source Domains", "Counter", "CausalMotion"]);
    for sources in &source_sets {
        let label: Vec<&str> = sources.iter().map(|d| d.name()).collect();
        let mut row = vec![label.join(", ")];
        for method in [MethodKind::Counter, MethodKind::CausalMotion] {
            let spec = CellSpec {
                backbone: BackboneKind::PecNet,
                method,
                sources: sources.clone(),
                target: DomainId::Sdd,
            };
            eprintln!("[run] {}", spec.label());
            let res = run_cell(&spec, &datasets, &cfg);
            row.push(res.eval.to_string());
        }
        table.push_row(row);
    }
    println!("{table}");
    println!(
        "Expected shape (paper Tab. III): errors *increase* down each column —\n\
         more source domains hurt these methods (negative transfer)."
    );
}
