//! Supplementary harness: paired-bootstrap comparison of two learning
//! methods on identical test windows. Resolves orderings that single-run
//! tables leave ambiguous (see the methodology notes in EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p adaptraj-bench --bin compare_methods -- \
//!     --scale smoke [--target sdd] [--seeds 2]
//! ```

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::stats::paired_bootstrap;
use adaptraj_eval::{
    ade, build_predictor, fde, leave_one_out, runner::pooled_train, runner::target_test,
    BackboneKind, CellSpec, MethodKind, TextTable,
};
use adaptraj_tensor::Rng;

fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let scale = Scale::from_args();
    let target = match arg_value("--target").as_deref() {
        Some("eth_ucy") => DomainId::EthUcy,
        Some("l_cas") => DomainId::LCas,
        Some("syi") => DomainId::Syi,
        _ => DomainId::Sdd,
    };
    let n_seeds: u64 = arg_value("--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    banner(
        &format!(
            "Paired comparison: vanilla vs AdapTraj (target {})",
            target.name()
        ),
        scale,
    );
    let datasets = build_datasets(scale);
    let cfg = scale.runner();
    let sources = leave_one_out(target);

    let mut table = TextTable::new(&[
        "Backbone",
        "mean ADE diff (AdapTraj − vanilla)",
        "95% CI",
        "resolved?",
    ]);
    for backbone in BackboneKind::ALL {
        // Per-window errors pooled across training seeds; both methods see
        // the same windows and the same evaluation seeds.
        let mut errs_vanilla: Vec<f32> = Vec::new();
        let mut errs_adaptraj: Vec<f32> = Vec::new();
        for seed in 1..=n_seeds {
            for (method, out) in [
                (MethodKind::Vanilla, &mut errs_vanilla),
                (MethodKind::AdapTraj, &mut errs_adaptraj),
            ] {
                let spec = CellSpec {
                    backbone,
                    method,
                    sources: sources.clone(),
                    target,
                };
                eprintln!("[run] seed {seed} {}", spec.label());
                let mut run_cfg = cfg.clone();
                run_cfg.trainer.seed = seed;
                let train = pooled_train(&spec, &datasets);
                let test = target_test(&spec, &datasets, cfg.eval_cap);
                let mut predictor = build_predictor(&spec, &run_cfg);
                predictor.fit(&train);
                let mut rng = Rng::seed_from(cfg.eval_seed + seed);
                for w in &test {
                    // Best-of-k per window, k matching the tables.
                    let mut best = f32::INFINITY;
                    for _ in 0..cfg.samples_k {
                        let p = predictor.predict(w, &mut rng);
                        best = best.min(ade(&p, &w.fut));
                        let _ = fde(&p, &w.fut);
                    }
                    out.push(best);
                }
            }
        }
        let r = paired_bootstrap(&errs_adaptraj, &errs_vanilla, 2000, 0.95, 99);
        table.push_row(vec![
            backbone.name().to_string(),
            format!("{:+.4}", r.mean_diff),
            format!("[{:+.4}, {:+.4}]", r.ci_low, r.ci_high),
            if r.significant() {
                "yes"
            } else {
                "no (within noise)"
            }
            .to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Negative mean favors AdapTraj. 'Resolved' means the 95% bootstrap\n\
         interval over paired per-window differences excludes zero."
    );
}
