//! Reproduces **Table II**: performance of existing methods on the SDD
//! test split when trained on SDD itself (in-domain) vs on ETH&UCY
//! (cross-domain). Shows the distribution-shift-induced decline that
//! motivates the paper (Sec. II-B.1).

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{run_cell, BackboneKind, CellSpec, MethodKind, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Table II: cross-domain performance decline (target SDD)",
        scale,
    );
    let datasets = build_datasets(scale);
    let cfg = scale.runner();

    // Paper columns: LBEBM, PECNet (vanilla backbones), Counter and
    // CausalMotion (on the PECNet backbone, as in their adaptations).
    let columns: [(&str, BackboneKind, MethodKind); 4] = [
        ("LBEBM", BackboneKind::Lbebm, MethodKind::Vanilla),
        ("PECNet", BackboneKind::PecNet, MethodKind::Vanilla),
        ("Counter", BackboneKind::PecNet, MethodKind::Counter),
        (
            "CausalMotion",
            BackboneKind::PecNet,
            MethodKind::CausalMotion,
        ),
    ];

    let mut table = TextTable::new(&[
        "Source Domain",
        "LBEBM",
        "PECNet",
        "Counter",
        "CausalMotion",
    ]);
    for source in [DomainId::Sdd, DomainId::EthUcy] {
        let mut row = vec![source.name().to_string()];
        for (name, backbone, method) in columns {
            let spec = CellSpec {
                backbone,
                method,
                sources: vec![source],
                target: DomainId::Sdd,
            };
            eprintln!("[run] {}", spec.label());
            let res = run_cell(&spec, &datasets, &cfg);
            let _ = name;
            row.push(res.eval.to_string());
        }
        table.push_row(row);
    }
    println!("{table}");
    println!(
        "Expected shape (paper Tab. II): every method degrades when trained on\n\
         ETH&UCY instead of SDD; Counter/CausalMotion degrade the most."
    );
}
