//! Reproduces **Table I**: statistical analysis of the four datasets —
//! sequence counts, per-scene agent counts, and per-axis velocity /
//! acceleration magnitudes (mean/std, in meters per 0.4 s frame).
//!
//! Paper reference values are printed alongside for shape comparison.

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::stats::table_one;
use adaptraj_data::trajectory::TrajWindow;
use adaptraj_eval::TextTable;

/// Paper values (Tab. I) for the side-by-side comparison.
const PAPER: [(&str, &str, &str, &str, &str, &str, &str); 4] = [
    (
        "ETH&UCY",
        "3856",
        "9.09/10.01",
        "0.279/0.170",
        "0.090/0.070",
        "0.027/0.027",
        "0.027/0.024",
    ),
    (
        "L-CAS",
        "2499",
        "7.88/3.23",
        "0.104/0.078",
        "0.041/0.024",
        "0.044/0.028",
        "0.044/0.025",
    ),
    (
        "SYI",
        "5152",
        "35.17/20.81",
        "0.306/0.063",
        "1.087/0.185",
        "0.082/0.018",
        "0.339/0.062",
    ),
    (
        "SDD",
        "35634",
        "17.82/15.12",
        "0.295/0.204",
        "0.187/0.156",
        "0.057/0.042",
        "0.064/0.053",
    ),
];

fn main() {
    let scale = Scale::from_args();
    banner("Table I: dataset statistics", scale);
    let datasets = build_datasets(scale);

    let mut table = TextTable::new(&[
        "Dataset",
        "# sequences",
        "Avg/Std num",
        "Avg/Std v(x)",
        "Avg/Std v(y)",
        "Avg/Std a(x)",
        "Avg/Std a(y)",
    ]);
    for ds in &datasets {
        let windows: Vec<TrajWindow> = ds.all_windows().cloned().collect();
        let s = table_one(&windows);
        table.push_row(vec![
            ds.domain.name().to_string(),
            s.sequences.to_string(),
            s.num.to_string(),
            s.vx.to_string(),
            s.vy.to_string(),
            s.ax.to_string(),
            s.ay.to_string(),
        ]);
    }
    println!("{table}");

    println!("Paper values (recorded datasets, for shape comparison):");
    let mut paper = TextTable::new(&[
        "Dataset",
        "# sequences",
        "Avg/Std num",
        "Avg/Std v(x)",
        "Avg/Std v(y)",
        "Avg/Std a(x)",
        "Avg/Std a(y)",
    ]);
    for row in PAPER {
        paper.push_row(vec![
            row.0.into(),
            row.1.into(),
            row.2.into(),
            row.3.into(),
            row.4.into(),
            row.5.into(),
            row.6.into(),
        ]);
    }
    println!("{paper}");
    println!(
        "Shape checks: SYI is densest and fastest with vertical-dominant flow;\n\
         L-CAS is slowest/sparsest; SDD has the broadest speed spread; \n\
         ETH&UCY flows horizontally at moderate speed."
    );
}
