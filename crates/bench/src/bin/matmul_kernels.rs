//! Micro-benchmark for the three matmul kernels (`matmul`, `matmul_nt`,
//! `matmul_tn`) on the shapes the training hot path actually runs:
//!
//! - encoder LSTM gate projection `xh·W`: `[n,48]·[48,128]` (embed 16 +
//!   hidden 32 in, 4·32 gates out), plus its backward pair
//!   `dpre·Wᵀ = [n,128]·([48,128])ᵀ` and `xhᵀ·dpre = ([n,48])ᵀ·[n,128]`
//! - decoder LSTM gate projection: `[n,80]·[80,128]` (embed 16 + context
//!   64 in) with the matching NT/TN backward shapes
//! - pooling projection `h·Wᵥ`: `[n,32]·[32,32]` and its backward pair
//!
//! For each NT/TN case the explicit `transpose()+matmul` composition is
//! timed alongside the fused kernel and the outputs are asserted
//! bit-identical — the same contract the tape's backward relies on.
//!
//! ```text
//! matmul_kernels [--iters N] [--batch N,N,...]
//! ```

use adaptraj_tensor::{Rng, Tensor};
use std::time::Instant;

fn gflops(flops: f64, ns: f64) -> f64 {
    flops / ns
}

/// Median-of-runs timer: returns ns per call for `f`, after one warmup.
fn time_ns<F: FnMut() -> Tensor>(iters: usize, mut f: F) -> f64 {
    let mut sink = 0.0f32;
    sink += f().data().iter().sum::<f32>(); // warmup
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_nanos() as f64);
        sink += out.data()[0];
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    // Keep the optimizer honest about `sink` without polluting stdout.
    if sink.is_nan() {
        eprintln!("unexpected NaN in benchmark output");
    }
    samples[samples.len() / 2]
}

struct Case {
    name: &'static str,
    /// `[m,k]·[k,n]` for NN; the NT/TN operand shapes derive from it.
    m: usize,
    k: usize,
    n: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iters = 200usize;
    let mut batches = vec![8usize, 64];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--batch" => {
                batches = args
                    .get(i + 1)
                    .map(|s| {
                        s.split(',')
                            .map(|p| p.parse().unwrap_or_else(|_| usage()))
                            .collect()
                    })
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let mut rng = Rng::seed_from(42);
    println!(
        "{:<34} {:<22} {:>12} {:>9}  vs transpose+matmul",
        "case", "kernel", "ns/call", "GFLOP/s"
    );
    for &n_batch in &batches {
        let cases = [
            Case {
                name: "encoder gates [n,48]x[48,128]",
                m: n_batch,
                k: 48,
                n: 128,
            },
            Case {
                name: "decoder gates [n,80]x[80,128]",
                m: n_batch,
                k: 80,
                n: 128,
            },
            Case {
                name: "pool proj [n,32]x[32,32]",
                m: n_batch,
                k: 32,
                n: 32,
            },
        ];
        for c in cases {
            let flops = 2.0 * c.m as f64 * c.k as f64 * c.n as f64;
            let a = Tensor::randn(c.m, c.k, 0.0, 1.0, &mut rng); // [m,k]
            let b = Tensor::randn(c.k, c.n, 0.0, 1.0, &mut rng); // [k,n]
            let g = Tensor::randn(c.m, c.n, 0.0, 1.0, &mut rng); // [m,n] upstream grad

            // Forward NN kernel.
            let t_nn = time_ns(iters, || a.matmul(&b));
            println!(
                "{:<34} {:<22} {:>12.0} {:>9.2}  -",
                format!("{} n={}", c.name, c.m),
                "matmul (NN)",
                t_nn,
                gflops(flops, t_nn)
            );

            // Backward dx: g[m,n] · (b[k,n])ᵀ — fused NT vs transpose+NN.
            assert_eq!(
                g.matmul_nt(&b).data(),
                g.matmul(&b.transpose()).data(),
                "NT kernel drifted from transpose+matmul"
            );
            let t_nt = time_ns(iters, || g.matmul_nt(&b));
            let t_nt_ref = time_ns(iters, || g.matmul(&b.transpose()));
            println!(
                "{:<34} {:<22} {:>12.0} {:>9.2}  {:.2}x",
                format!("{} n={}", c.name, c.m),
                "matmul_nt (dx)",
                t_nt,
                gflops(flops, t_nt),
                t_nt_ref / t_nt
            );

            // Backward dw: (a[m,k])ᵀ · g[m,n] — fused TN vs transpose+NN.
            assert_eq!(
                a.matmul_tn(&g).data(),
                a.transpose().matmul(&g).data(),
                "TN kernel drifted from transpose+matmul"
            );
            let t_tn = time_ns(iters, || a.matmul_tn(&g));
            let t_tn_ref = time_ns(iters, || a.transpose().matmul(&g));
            println!(
                "{:<34} {:<22} {:>12.0} {:>9.2}  {:.2}x",
                format!("{} n={}", c.name, c.m),
                "matmul_tn (dw)",
                t_tn,
                gflops(flops, t_tn),
                t_tn_ref / t_tn
            );
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: matmul_kernels [--iters N] [--batch N,N,...]");
    std::process::exit(2);
}
