//! Micro-benchmark for the three matmul kernels (`matmul`, `matmul_nt`,
//! `matmul_tn`) on the shapes the batched (PR-8) hot path actually runs,
//! reported per dispatch path:
//!
//! - `scalar` — the autovectorized fallback loops (`ADAPTRAJ_FORCE_SCALAR=1`)
//! - `simd` — the explicit AVX2 microkernels (default where supported)
//! - `fma` — the opt-in fused-multiply-add variant (`ADAPTRAJ_KERNEL=fma`)
//! - `simd+Nt` — SIMD with intra-op row splitting across N scoped lanes
//!   (threshold forced to 0 so every product splits; on a single-core host
//!   this *measures the overhead floor*, not a speedup)
//!
//! Shapes (NN, with the NT/TN backward pairs derived from each):
//!
//! - encoder LSTM gate projection `xh·W`: `[n,48]·[48,128]` (embed 16 +
//!   hidden 32 in, 4·32 gates out)
//! - decoder LSTM gate projection: `[n,80]·[80,128]` (embed 16 + context
//!   64 in)
//! - pooling projection `h·Wᵥ`: `[n,32]·[32,32]`
//! - time-major rollout embed: `[n·12,2]·[2,16]` — the PR-8 batched
//!   decoder feeds all `T_PRED·batch` steps through one skinny GEMM
//!
//! Every SIMD/FMA-free NT/TN case is asserted bit-identical to the
//! `transpose()+matmul` composition, and every SIMD case bit-identical to
//! scalar — the same contracts the tape backward and the golden gate rely
//! on. The `nt_dot` rows time the *dot-product formulation* of NT (row of
//! `a` · row of `b`, no pack) against the shipping pack+NN kernel; the
//! accumulation-order contract forbids reassociating the k-reduction, so
//! the dot form cannot vectorize — these rows are the measured source for
//! the slowdown factor quoted in the `matmul_nt` doc comment.
//!
//! ```text
//! matmul_kernels [--iters N] [--batch N,N,...] [--threads N] [--out PATH]
//! ```

use adaptraj_exec::intra_op;
use adaptraj_tensor::{kernels, Kernel, Rng, Tensor};
use std::time::Instant;

fn gflops(flops: f64, ns: f64) -> f64 {
    flops / ns
}

/// Median-of-runs timer: returns ns per call for `f`, after one warmup.
fn time_ns<F: FnMut() -> Tensor>(iters: usize, mut f: F) -> f64 {
    let mut sink = 0.0f32;
    sink += f().data().iter().sum::<f32>(); // warmup
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples.push(t0.elapsed().as_nanos() as f64);
        sink += out.data().first().copied().unwrap_or(0.0);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    // Keep the optimizer honest about `sink` without polluting stdout.
    if sink.is_nan() {
        eprintln!("unexpected NaN in benchmark output");
    }
    samples[samples.len() / 2]
}

/// The unshipped dot-product formulation of NT, kept here as the measured
/// baseline for the doc-comment claim: same accumulation order (ascending
/// k, zero-skip on `a`), no pack, serial k-reduction per output element.
fn matmul_nt_dot(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, k) = a.shape();
    let m = b.shape().0;
    let a_data = a.data();
    let b_data = b.data();
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        let a_row = &a_data[i * k..(i + 1) * k];
        for j in 0..m {
            let b_row = &b_data[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                if av == 0.0 {
                    continue;
                }
                acc += av * bv;
            }
            out[i * m + j] = acc;
        }
    }
    Tensor::from_vec(n, m, out)
}

struct Case {
    name: &'static str,
    /// `[m,k]·[k,n]` for NN; the NT/TN operand shapes derive from it.
    m: usize,
    k: usize,
    n: usize,
}

struct Report {
    lines: Vec<String>,
}

impl Report {
    fn emit(&mut self, line: String) {
        println!("{line}");
        self.lines.push(line);
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iters = 200usize;
    let mut batches = vec![8usize, 64];
    let mut threads = 2usize;
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--batch" => {
                batches = args
                    .get(i + 1)
                    .map(|s| {
                        s.split(',')
                            .map(|p| p.parse().unwrap_or_else(|_| usage()))
                            .collect()
                    })
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--out" => {
                out_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }

    // Dispatch paths available on this host, in report order.
    let mut paths: Vec<(&str, Kernel, usize)> = vec![("scalar", Kernel::Scalar, 1)];
    if kernels::simd_available() {
        paths.push(("simd", Kernel::Simd, 1));
    }
    if kernels::fma_available() {
        paths.push(("fma", Kernel::Fma, 1));
    }
    if kernels::simd_available() && threads > 1 {
        paths.push(("simd+threads", Kernel::Simd, threads));
    }

    let mut report = Report { lines: Vec::new() };
    report.emit(format!(
        "matmul_kernels: iters={iters} batches={batches:?} intra_op_threads={threads} \
         (avx2={} fma={})",
        kernels::simd_available(),
        kernels::fma_available()
    ));
    report.emit(format!(
        "{:<36} {:<16} {:<14} {:>12} {:>9}",
        "case", "kernel", "path", "ns/call", "GFLOP/s"
    ));

    let mut rng = Rng::seed_from(42);
    for &n_batch in &batches {
        let cases = [
            Case {
                name: "encoder gates [n,48]x[48,128]",
                m: n_batch,
                k: 48,
                n: 128,
            },
            Case {
                name: "decoder gates [n,80]x[80,128]",
                m: n_batch,
                k: 80,
                n: 128,
            },
            Case {
                name: "pool proj [n,32]x[32,32]",
                m: n_batch,
                k: 32,
                n: 32,
            },
            Case {
                name: "rollout embed [12n,2]x[2,16]",
                m: 12 * n_batch,
                k: 2,
                n: 16,
            },
        ];
        for c in cases {
            let flops = 2.0 * c.m as f64 * c.k as f64 * c.n as f64;
            let a = Tensor::randn(c.m, c.k, 0.0, 1.0, &mut rng); // [m,k]
            let b = Tensor::randn(c.k, c.n, 0.0, 1.0, &mut rng); // [k,n]
            let g = Tensor::randn(c.m, c.n, 0.0, 1.0, &mut rng); // [m,n] upstream grad
            let label = format!("{} n={}", c.name, c.m);

            // Contract checks once per case: fused-vs-composed and
            // simd-vs-scalar bit-identity.
            assert_eq!(
                bits(&g.matmul_nt_with(&b, Kernel::Scalar)),
                bits(&g.matmul_with(&b.transpose(), Kernel::Scalar)),
                "NT kernel drifted from transpose+matmul"
            );
            assert_eq!(
                bits(&a.matmul_tn_with(&g, Kernel::Scalar)),
                bits(&a.transpose().matmul_with(&g, Kernel::Scalar)),
                "TN kernel drifted from transpose+matmul"
            );
            assert_eq!(
                bits(&matmul_nt_dot(&g, &b)),
                bits(&g.matmul_nt_with(&b, Kernel::Scalar)),
                "dot-formulation NT drifted from pack+NN"
            );
            if kernels::simd_available() {
                assert_eq!(
                    bits(&a.matmul_with(&b, Kernel::Simd)),
                    bits(&a.matmul_with(&b, Kernel::Scalar)),
                    "SIMD NN drifted from scalar"
                );
                assert_eq!(
                    bits(&g.matmul_nt_with(&b, Kernel::Simd)),
                    bits(&g.matmul_nt_with(&b, Kernel::Scalar)),
                    "SIMD NT drifted from scalar"
                );
                assert_eq!(
                    bits(&a.matmul_tn_with(&g, Kernel::Simd)),
                    bits(&a.matmul_tn_with(&g, Kernel::Scalar)),
                    "SIMD TN drifted from scalar"
                );
            }

            for &(path, kernel, lanes) in &paths {
                let prev_min = kernels::split_min_flops();
                if lanes > 1 {
                    kernels::set_split_min_flops(0);
                    intra_op::install(lanes);
                }
                let t_nn = time_ns(iters, || a.matmul_with(&b, kernel));
                let t_nt = time_ns(iters, || g.matmul_nt_with(&b, kernel));
                let t_tn = time_ns(iters, || a.matmul_tn_with(&g, kernel));
                if lanes > 1 {
                    intra_op::install(1);
                    kernels::set_split_min_flops(prev_min);
                }
                for (op, t) in [
                    ("matmul (NN)", t_nn),
                    ("matmul_nt", t_nt),
                    ("matmul_tn", t_tn),
                ] {
                    report.emit(format!(
                        "{label:<36} {op:<16} {path:<14} {t:>12.0} {:>9.2}",
                        gflops(flops, t)
                    ));
                }
            }

            // Doc-comment evidence: dot-formulation NT vs shipping NT.
            let t_nt_pack = time_ns(iters, || g.matmul_nt_with(&b, Kernel::Scalar));
            let t_nt_dot = time_ns(iters, || matmul_nt_dot(&g, &b));
            report.emit(format!(
                "{label:<36} {:<16} {:<14} {t_nt_dot:>12.0} {:>9.2}  ({:.1}x slower than pack+NN scalar)",
                "nt_dot",
                "reference",
                gflops(flops, t_nt_dot),
                t_nt_dot / t_nt_pack
            ));
        }
    }

    if let Some(path) = out_path {
        let mut text = report.lines.join("\n");
        text.push('\n');
        std::fs::write(&path, text).expect("write --out");
        println!("table written to {path}");
    }
}

fn usage() -> ! {
    eprintln!("usage: matmul_kernels [--iters N] [--batch N,N,...] [--threads N] [--out PATH]");
    std::process::exit(2);
}
