//! Reproduces **Table VI**: PECNet vs PECNet-AdapTraj under varied source
//! sets, always evaluated on SDD — from the i.i.d. setting (train on SDD)
//! through one and two shifted source domains.

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{run_cell, BackboneKind, CellSpec, MethodKind, TextTable};

fn main() {
    let scale = Scale::from_args();
    banner("Table VI: varied source domains (target SDD)", scale);
    let datasets = build_datasets(scale);
    let cfg = scale.runner();

    let source_sets: [Vec<DomainId>; 3] = [
        vec![DomainId::Sdd], // i.i.d. setting
        vec![DomainId::EthUcy],
        vec![DomainId::EthUcy, DomainId::LCas],
    ];

    let mut table = TextTable::new(&["Method", "Source Domains", "ADE", "FDE"]);
    for method in [MethodKind::Vanilla, MethodKind::AdapTraj] {
        for sources in &source_sets {
            let label: Vec<&str> = sources.iter().map(|d| d.name()).collect();
            let spec = CellSpec {
                backbone: BackboneKind::PecNet,
                method,
                sources: sources.clone(),
                target: DomainId::Sdd,
            };
            eprintln!("[run] {}", spec.label());
            let res = run_cell(&spec, &datasets, &cfg);
            table.push_row(vec![
                format!(
                    "PECNet{}",
                    if method == MethodKind::AdapTraj {
                        "-AdapTraj"
                    } else {
                        ""
                    }
                ),
                label.join(", "),
                format!("{:.3}", res.eval.ade),
                format!("{:.3}", res.eval.fde),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Expected shape (paper Tab. VI): AdapTraj ~matches vanilla in the\n\
         i.i.d. setting and pulls ahead as distribution shift grows."
    );
}
