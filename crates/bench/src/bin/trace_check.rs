//! Chrome trace-event validator for the CI flight-recorder smoke step.
//!
//! ```text
//! trace_check FILE.json [--require NAME]...
//! ```
//!
//! Validates that FILE.json is a Perfetto-loadable Chrome trace document:
//! a JSON object whose `traceEvents` array is non-empty, where every
//! event carries `ph`/`ts`/`pid`/`tid`/`name`, and every complete
//! (`"ph":"X"`) event has non-negative `ts` and `dur`. Each `--require
//! NAME` additionally asserts that at least one complete event with that
//! span name exists — CI requires `queue_wait`, `job_run`, and
//! `grad_reduce` in a `run --trace-out` capture.

use adaptraj_obs::json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: trace_check FILE.json [--require NAME]...");
    std::process::exit(2);
}

fn check(text: &str, required: &[String]) -> Result<String, String> {
    let v = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing 'traceEvents' array")?;
    if events.is_empty() {
        return Err("'traceEvents' is empty".into());
    }
    let mut complete = 0usize;
    let mut lanes = std::collections::BTreeSet::new();
    let mut names: BTreeMap<String, usize> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        for key in ["ph", "ts", "pid", "tid", "name"] {
            if e.get(key).is_none() {
                return Err(format!("event #{i} missing '{key}'"));
            }
        }
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        // `ts`/`dur` are emitted as unsigned integers; a negative or
        // non-numeric value fails to parse as u64.
        if e.get("ts").and_then(Value::as_u64).is_none() {
            return Err(format!("event #{i} ('{name}') has non-u64 'ts'"));
        }
        if ph == "X" {
            if e.get("dur").and_then(Value::as_u64).is_none() {
                return Err(format!("event #{i} ('{name}') has non-u64 'dur'"));
            }
            complete += 1;
            lanes.insert(e.get("tid").and_then(Value::as_u64).unwrap_or(0));
            *names.entry(name.to_string()).or_insert(0) += 1;
        }
    }
    if complete == 0 {
        return Err("no complete ('ph':'X') events".into());
    }
    for req in required {
        if !names.contains_key(req) {
            return Err(format!(
                "required span '{req}' absent (spans present: {:?})",
                names.keys().collect::<Vec<_>>()
            ));
        }
    }
    let top: Vec<String> = names.iter().map(|(n, c)| format!("{n}×{c}")).collect();
    Ok(format!(
        "{} events, {complete} spans across {} lanes: {}",
        events.len(),
        lanes.len(),
        top.join(" ")
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut required = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require" => match it.next() {
                Some(name) => required.push(name),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if file.is_none() => file = Some(a),
            _ => usage(),
        }
    }
    let Some(file) = file else { usage() };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text, &required) {
        Ok(summary) => {
            println!("trace_check: {file}: OK ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {file}: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ph: &str, name: &str, ts: &str, dur: &str, tid: u64) -> String {
        format!(
            "{{\"ph\":\"{ph}\",\"name\":\"{name}\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":1,\"tid\":{tid}}}"
        )
    }

    fn doc(events: &[String]) -> String {
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    #[test]
    fn valid_trace_passes_with_requirements() {
        let d = doc(&[
            event("M", "thread_name", "0", "0", 1),
            event("X", "job_run", "10", "5", 1),
            event("X", "queue_wait", "8", "2", 2),
        ]);
        let summary = check(&d, &["job_run".into(), "queue_wait".into()]).unwrap();
        assert!(summary.contains("2 spans across 2 lanes"), "{summary}");
    }

    #[test]
    fn missing_required_span_fails() {
        let d = doc(&[event("X", "job_run", "10", "5", 1)]);
        let err = check(&d, &["grad_reduce".into()]).unwrap_err();
        assert!(err.contains("grad_reduce"), "{err}");
    }

    #[test]
    fn missing_keys_and_negative_durations_fail() {
        assert!(check("{}", &[]).unwrap_err().contains("traceEvents"));
        assert!(check("{\"traceEvents\":[]}", &[])
            .unwrap_err()
            .contains("empty"));
        let no_name = "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":1,\"pid\":1,\"tid\":1}]}";
        assert!(check(no_name, &[]).unwrap_err().contains("name"));
        let neg = doc(&[event("X", "j", "3", "-4", 1)]);
        assert!(check(&neg, &[]).unwrap_err().contains("dur"));
        let neg_ts = doc(&[event("X", "j", "-3", "4", 1)]);
        assert!(check(&neg_ts, &[]).unwrap_err().contains("ts"));
    }

    #[test]
    fn metadata_only_trace_fails() {
        let d = doc(&[event("M", "thread_name", "0", "0", 1)]);
        assert!(check(&d, &[]).unwrap_err().contains("no complete"));
    }
}
