//! Perf-regression gate: diffs two `adaptraj-bench/v1` documents and
//! exits nonzero when the candidate regressed past the threshold.
//!
//! ```text
//! bench_gate --baseline BENCH_old.json --candidate BENCH_new.json \
//!            [--max-regress-pct 25 | --min-improve-pct 25] \
//!            [--max-tape-nodes-ratio R] [--check]
//! ```
//!
//! `--max-regress-pct` (the default mode) fails if any metric got worse
//! past the threshold. `--min-improve-pct` inverts the burden of proof:
//! every workload must IMPROVE `windows_per_sec` by at least N% with
//! `infer_p99_ms` no worse — the mode used to land an optimization PR.
//!
//! `--max-tape-nodes-ratio R` adds a structural assertion on top of
//! either mode: every workload's training `tape_nodes` must be at most
//! R x the baseline's (0.2 asserts a >= 5x graph shrink). Workloads
//! where either document lacks the counter are skipped; timing noise
//! cannot rescue a graph that did not actually shrink.
//!
//! `--load-only` restricts the diff to the serving load section
//! (`saturation_qps` and the load latency quantiles), ignoring the
//! training workloads entirely — the mode for gating a serving-perf
//! document against a baseline whose training config is not comparable.
//!
//! `--check` validates and reports but never fails on threshold misses
//! (schema/parse errors still fail) — the CI smoke mode, where absolute
//! timings on shared runners are too noisy to gate on.

use adaptraj_bench::compare::{
    compare, compare_load_only, improvement, parse_doc, tape_nodes_ratio,
};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate --baseline FILE --candidate FILE \
         [--max-regress-pct N | --min-improve-pct N] \
         [--max-tape-nodes-ratio R] [--load-only] [--check]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Result<adaptraj_bench::compare::BenchDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_doc(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = None;
    let mut candidate = None;
    let mut max_regress_pct = 25.0f64;
    let mut min_improve_pct: Option<f64> = None;
    let mut max_tape_nodes_ratio: Option<f64> = None;
    let mut load_only = false;
    let mut check_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                baseline = args.get(i + 1).cloned();
                i += 2;
            }
            "--candidate" => {
                candidate = args.get(i + 1).cloned();
                i += 2;
            }
            "--max-regress-pct" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    usage();
                };
                max_regress_pct = v;
                i += 2;
            }
            "--min-improve-pct" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    usage();
                };
                min_improve_pct = Some(v);
                i += 2;
            }
            "--max-tape-nodes-ratio" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    usage();
                };
                max_tape_nodes_ratio = Some(v);
                i += 2;
            }
            "--load-only" => {
                load_only = true;
                i += 1;
            }
            "--check" => {
                check_only = true;
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    let (Some(baseline), Some(candidate)) = (baseline, candidate) else {
        usage();
    };
    if load_only && min_improve_pct.is_some() {
        eprintln!("--load-only is a regression gate; it cannot combine with --min-improve-pct");
        usage();
    }

    let base = match load(&baseline) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_gate: baseline {e}");
            return ExitCode::from(2);
        }
    };
    let cand = match load(&candidate) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_gate: candidate {e}");
            return ExitCode::from(2);
        }
    };

    let mut tape_fail = false;
    if let Some(max_ratio) = max_tape_nodes_ratio {
        let diffs = tape_nodes_ratio(&base, &cand, max_ratio);
        println!(
            "{:<18} {:>14} {:>14} {:>8}  status",
            "workload", "base nodes", "cand nodes", "ratio"
        );
        for d in &diffs {
            let status = if d.over_limit {
                "OVER LIMIT"
            } else if d.ratio.is_nan() {
                "skipped (counter absent)"
            } else {
                "ok"
            };
            println!(
                "{:<18} {:>14.0} {:>14.0} {:>8.3}  {status}",
                d.workload, d.baseline_nodes, d.candidate_nodes, d.ratio
            );
        }
        tape_fail = diffs.iter().any(|d| d.over_limit);
        if tape_fail {
            eprintln!("bench_gate: tape_nodes above {max_ratio}x baseline on some workload(s)");
        }
        println!();
    }

    if let Some(min_improve_pct) = min_improve_pct {
        let rep = improvement(&base, &cand, min_improve_pct);
        print!("{}", rep.render_text());
        return if rep.ok() && !tape_fail {
            println!("bench_gate: OK (every workload improved >= {min_improve_pct}%)");
            ExitCode::SUCCESS
        } else if check_only {
            println!(
                "bench_gate: {} workload(s) below +{min_improve_pct}% (check mode, not failing)",
                rep.failures().len() + rep.missing.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "bench_gate: FAIL — {} workload(s) below +{min_improve_pct}% or with worse p99",
                rep.failures().len() + rep.missing.len()
            );
            ExitCode::FAILURE
        };
    }

    let cmp = if load_only {
        compare_load_only(&base, &cand, max_regress_pct)
    } else {
        compare(&base, &cand, max_regress_pct)
    };
    print!("{}", cmp.render_text());
    if cmp.ok() && !tape_fail {
        println!("bench_gate: OK (threshold {max_regress_pct}%)");
        ExitCode::SUCCESS
    } else if check_only {
        println!(
            "bench_gate: {} regression(s) past {max_regress_pct}% (check mode, not failing)",
            cmp.regressions().len() + cmp.missing.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: FAIL — {} regression(s) past {max_regress_pct}%",
            cmp.regressions().len() + cmp.missing.len()
        );
        ExitCode::FAILURE
    }
}
