//! Supplementary harness (beyond the paper's tables): social-compliance
//! metrics — collision rate against constant-velocity-extrapolated
//! neighbors and miss rate @ 2 m — for every learning method on the
//! leave-one-out SDD cell. The paper motivates multi-agent prediction
//! with socially compliant behavior; this binary makes that measurable.

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::social::SocialAccumulator;
use adaptraj_eval::{
    build_predictor, leave_one_out, runner::pooled_train, runner::target_test, BackboneKind,
    CellSpec, MethodKind, TextTable,
};
use adaptraj_tensor::Rng;

fn main() {
    let scale = Scale::from_args();
    banner("Social metrics (supplementary; target SDD)", scale);
    let datasets = build_datasets(scale);
    let cfg = scale.runner();
    let sources = leave_one_out(DomainId::Sdd);

    let mut table = TextTable::new(&[
        "Backbone",
        "Method",
        "ADE/FDE",
        "Collision rate",
        "Miss rate @2m",
    ]);
    for backbone in BackboneKind::ALL {
        for method in MethodKind::COMPARED {
            let spec = CellSpec {
                backbone,
                method,
                sources: sources.clone(),
                target: DomainId::Sdd,
            };
            eprintln!("[run] {}", spec.label());
            let train = pooled_train(&spec, &datasets);
            let test = target_test(&spec, &datasets, cfg.eval_cap);
            let mut predictor = build_predictor(&spec, &cfg);
            predictor.fit(&train);

            let mut rng = Rng::seed_from(cfg.eval_seed);
            let mut social = SocialAccumulator::new();
            let mut err = adaptraj_eval::EvalAccumulator::new();
            for w in &test {
                let pred = predictor.predict(w, &mut rng);
                social.push(&pred, w);
                err.push(
                    adaptraj_eval::ade(&pred, &w.fut),
                    adaptraj_eval::fde(&pred, &w.fut),
                );
            }
            let s = social.report();
            table.push_row(vec![
                backbone.name().to_string(),
                method.name().to_string(),
                err.result().to_string(),
                format!("{:.3}", s.collision_rate),
                format!("{:.3}", s.miss_rate),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Reading: lower collision rates indicate more socially compliant\n\
         futures; Counter (which ignores neighbors at inference) is expected\n\
         to collide most."
    );
}
