//! Reproduces **Table IV**: the main comparison — {PECNet, LBEBM} ×
//! {vanilla, Counter, CausalMotion, AdapTraj} under leave-one-domain-out
//! multi-source generalization, with each of the four datasets as target,
//! plus row averages.

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{leave_one_out, run_cell_avg, BackboneKind, CellSpec, MethodKind, TextTable};

/// Parses `--seeds N` (default 1): number of training seeds to average
/// per cell. Wall-clock scales linearly.
fn seeds_from_args() -> Vec<u64> {
    let args: Vec<String> = std::env::args().collect();
    let n = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    (1..=n).collect()
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "Table IV: multi-source domain generalization (leave-one-out)",
        scale,
    );
    let seeds = seeds_from_args();
    if seeds.len() > 1 {
        println!("(averaging over {} training seeds per cell)\n", seeds.len());
    }
    let datasets = build_datasets(scale);
    let cfg = scale.runner();

    let mut table = TextTable::new(&[
        "Backbone", "Method", "SDD", "ETH&UCY", "L-CAS", "SYI", "Average",
    ]);
    let targets = [
        DomainId::Sdd,
        DomainId::EthUcy,
        DomainId::LCas,
        DomainId::Syi,
    ];

    for backbone in BackboneKind::ALL {
        for method in MethodKind::COMPARED {
            let mut row = vec![backbone.name().to_string(), method.name().to_string()];
            let (mut ade_sum, mut fde_sum) = (0.0f32, 0.0f32);
            for target in targets {
                let spec = CellSpec {
                    backbone,
                    method,
                    sources: leave_one_out(target),
                    target,
                };
                eprintln!("[run] {}", spec.label());
                let res = run_cell_avg(&spec, &datasets, &cfg, &seeds);
                ade_sum += res.eval.ade;
                fde_sum += res.eval.fde;
                row.push(res.eval.to_string());
            }
            row.push(format!(
                "{:.3}/{:.3}",
                ade_sum / targets.len() as f32,
                fde_sum / targets.len() as f32
            ));
            table.push_row(row);
        }
    }
    println!("{table}");
    println!(
        "Expected shape (paper Tab. IV): AdapTraj beats vanilla on average;\n\
         Counter and CausalMotion fall below vanilla (negative transfer +\n\
         discarded neighbor information)."
    );
}
