//! Reproduces **Table VIII**: average inference time per trajectory with
//! target SDD and sources {ETH&UCY, L-CAS, SYI}, for both backbones and
//! all four learning methods.
//!
//! Training epochs are kept minimal — inference latency depends on the
//! architecture and method, not on how long the weights were trained.

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{run_cell, BackboneKind, CellSpec, MethodKind, RunnerConfig, TextTable};
use adaptraj_models::TrainerConfig;

fn main() {
    let scale = Scale::from_args();
    banner("Table VIII: inference time (target SDD)", scale);
    let datasets = build_datasets(scale);
    // Minimal training; generous eval set for stable timing.
    let cfg = RunnerConfig {
        trainer: TrainerConfig {
            epochs: 2,
            max_train_windows: 60,
            ..TrainerConfig::default()
        },
        samples_k: 1,
        eval_cap: if scale == adaptraj_bench::Scale::Paper {
            200
        } else {
            60
        },
        ..scale.runner()
    };
    let sources = vec![DomainId::EthUcy, DomainId::LCas, DomainId::Syi];

    let mut table = TextTable::new(&["Backbone", "Method", "Avg inference time (s)"]);
    for backbone in BackboneKind::ALL {
        for method in MethodKind::COMPARED {
            let spec = CellSpec {
                backbone,
                method,
                sources: sources.clone(),
                target: DomainId::Sdd,
            };
            eprintln!("[run] {}", spec.label());
            let res = run_cell(&spec, &datasets, &cfg);
            table.push_row(vec![
                backbone.name().to_string(),
                method.name().to_string(),
                format!("{:.4}", res.infer_time_s),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Expected shape (paper Tab. VIII): LBEBM slower than PECNet (Langevin\n\
         sampling); Counter slightly slower than vanilla (extra counterfactual\n\
         pass); CausalMotion ~= vanilla; AdapTraj slightly slower than vanilla\n\
         (extractor + aggregator forwards). All within one order of magnitude."
    );
}
