//! Reproduces **Fig. 4**: sensitivity of PECNet-AdapTraj (sources
//! ETH&UCY+L-CAS, target SDD) to the six Alg. 1 hyperparameters:
//! domain weight δ, aggregator start/end epochs, aggregator ratio σ, and
//! the low/high learning-rate fractions.

use adaptraj_bench::{banner, build_datasets, Scale};
use adaptraj_data::dataset::DomainDataset;
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{run_cell, BackboneKind, CellSpec, MethodKind, RunnerConfig, TextTable};

fn run_with(
    datasets: &[DomainDataset],
    base: &RunnerConfig,
    tweak: impl FnOnce(&mut RunnerConfig),
) -> String {
    let mut cfg = base.clone();
    tweak(&mut cfg);
    let spec = CellSpec {
        backbone: BackboneKind::PecNet,
        method: MethodKind::AdapTraj,
        sources: vec![DomainId::EthUcy, DomainId::LCas],
        target: DomainId::Sdd,
    };
    let res = run_cell(&spec, datasets, &cfg);
    res.eval.to_string()
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "Fig. 4: hyperparameter sensitivity (PECNet-AdapTraj, target SDD)",
        scale,
    );
    let datasets = build_datasets(scale);
    let base = scale.runner();
    let e_total = base.trainer.epochs;

    // (a) Domain weight δ.
    let mut t = TextTable::new(&["delta", "ADE/FDE"]);
    for delta in [0.05f32, 0.5, 1.0, 2.0] {
        eprintln!("[sweep] delta={delta}");
        let r = run_with(&datasets, &base, |c| c.adaptraj.delta = delta);
        t.push_row(vec![format!("{delta}"), r]);
    }
    println!("(a) domain weight delta\n{t}");

    // (b) Aggregator start epoch e_start (as a fraction of e_total).
    let mut t = TextTable::new(&["e_start", "ADE/FDE"]);
    for frac in [0.0f32, 0.2, 0.4, 0.6] {
        let e_start = ((e_total as f32) * frac) as usize;
        eprintln!("[sweep] e_start={e_start}");
        let r = run_with(&datasets, &base, |c| {
            c.e_start_frac = frac;
            c.e_end_frac = c.e_end_frac.max(frac);
        });
        t.push_row(vec![format!("{e_start}"), r]);
    }
    println!("(b) aggregator start epoch\n{t}");

    // (c) Aggregator end epoch e_end.
    let mut t = TextTable::new(&["e_end", "ADE/FDE"]);
    for frac in [0.5f32, 0.7, 0.9, 1.0] {
        let e_end = ((e_total as f32) * frac) as usize;
        eprintln!("[sweep] e_end={e_end}");
        let r = run_with(&datasets, &base, |c| {
            c.e_end_frac = frac;
            c.e_start_frac = c.e_start_frac.min(frac);
        });
        t.push_row(vec![format!("{e_end}"), r]);
    }
    println!("(c) aggregator end epoch\n{t}");

    // (d) Aggregator ratio σ.
    let mut t = TextTable::new(&["sigma", "ADE/FDE"]);
    for sigma in [0.0f32, 0.25, 0.5, 0.75, 1.0] {
        eprintln!("[sweep] sigma={sigma}");
        let r = run_with(&datasets, &base, |c| c.adaptraj.sigma = sigma);
        t.push_row(vec![format!("{sigma}"), r]);
    }
    println!("(d) aggregator ratio sigma\n{t}");

    // (e) Low learning-rate fraction f_low.
    let mut t = TextTable::new(&["f_low", "ADE/FDE"]);
    for f_low in [0.01f32, 0.1, 0.5, 1.0] {
        eprintln!("[sweep] f_low={f_low}");
        let r = run_with(&datasets, &base, |c| c.adaptraj.f_low = f_low);
        t.push_row(vec![format!("{f_low}"), r]);
    }
    println!("(e) low lr fraction\n{t}");

    // (f) High learning-rate fraction f_high.
    let mut t = TextTable::new(&["f_high", "ADE/FDE"]);
    for f_high in [0.5f32, 1.0, 2.0, 4.0] {
        eprintln!("[sweep] f_high={f_high}");
        let r = run_with(&datasets, &base, |c| c.adaptraj.f_high = f_high);
        t.push_row(vec![format!("{f_high}"), r]);
    }
    println!("(f) high lr fraction\n{t}");

    println!(
        "Expected shapes (paper Fig. 4): moderate delta best; later e_start\n\
         helps then saturates; larger e_end helps then saturates; sigma helps\n\
         up to ~0.5; extreme f_low hurts; larger f_high helps."
    );
}
