//! Baseline/candidate comparison for `adaptraj-bench/v1` documents — the
//! regression gate behind `scripts/bench.sh` and the CI bench smoke step.

use crate::perf::BENCH_SCHEMA;
use adaptraj_obs::json::Value;

/// The per-workload metrics the gate compares.
#[derive(Debug, Clone)]
pub struct WorkloadMetrics {
    pub name: String,
    /// Training wall-clock seconds. Used by the improvement gate's
    /// wall-clock fallback when the baseline predates `windows_trained`.
    pub train_s: f64,
    /// Windows dispatched to training jobs. NaN in pre-PR-8 documents,
    /// whose `window_passes` counted backward passes instead (a
    /// different number for backbones with inner optimization loops).
    pub windows_trained: f64,
    pub windows_per_sec: f64,
    pub backward_ns_per_node: f64,
    pub infer_p50_ms: f64,
    pub infer_p99_ms: f64,
    /// NaN when the document predates the p999 field (pre-PR-6 baselines)
    /// — the comparator then skips it, same as any other NaN metric.
    pub infer_p999_ms: f64,
    /// Tape nodes pushed during training — the graph-size baseline for
    /// ROADMAP item 1 (batched execution). Tracked, not regression-gated:
    /// a model change legitimately moves it. NaN in pre-PR-7 documents.
    pub tape_nodes: f64,
    /// Buffer-pool bytes served from reuse during training. Tracked, not
    /// gated. NaN in pre-PR-7 documents.
    pub bytes_reused: f64,
    /// Bytes freshly heap-allocated during training. Tracked, not gated.
    /// NaN in pre-PR-7 documents.
    pub bytes_allocated: f64,
}

/// Serving-load summary distilled from a document's optional `load`
/// section (`bench --load`). Latencies are taken from the FIRST sweep
/// level — the lowest client count, i.e. unloaded service latency with
/// no queueing on top — while `saturation_qps` summarizes the whole
/// sweep. Any of these may be NaN (p99/p999 are null below their sample
/// support); the comparator skips NaN per its usual policy.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    pub saturation_qps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
}

/// A parsed (and schema-validated) bench document.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    pub created_unix: u64,
    /// Optimizer mini-batch size from the run config. Tracked, not
    /// gated — NaN in pre-PR-8 documents, same policy as the other
    /// late-added fields.
    pub batch_size: f64,
    pub workloads: Vec<WorkloadMetrics>,
    /// Present only in documents produced with `bench --load` (PR-9
    /// onward); pre-PR-9 files parse with `None` and skip the serving
    /// comparison entirely.
    pub load: Option<LoadSummary>,
}

fn field_f64(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

/// Parses a bench JSON document, validating the schema tag and the
/// structural pieces the comparator relies on.
pub fn parse_doc(json: &str) -> Result<BenchDoc, String> {
    let v = Value::parse(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing 'schema' field")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (expected '{BENCH_SCHEMA}')"
        ));
    }
    let created_unix = v.get("created_unix").and_then(Value::as_u64).unwrap_or(0);
    let batch_size = v
        .get("config")
        .map(|c| field_f64(c, "batch_size"))
        .unwrap_or(f64::NAN);
    let workloads_v = v
        .get("workloads")
        .and_then(Value::as_array)
        .ok_or("missing 'workloads' array")?;
    let mut workloads = Vec::with_capacity(workloads_v.len());
    for (i, w) in workloads_v.iter().enumerate() {
        let name = w
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("workload #{i} missing 'name'"))?
            .to_string();
        workloads.push(WorkloadMetrics {
            name,
            train_s: field_f64(w, "train_s"),
            windows_trained: field_f64(w, "windows_trained"),
            windows_per_sec: field_f64(w, "windows_per_sec"),
            backward_ns_per_node: field_f64(w, "backward_ns_per_node"),
            infer_p50_ms: field_f64(w, "infer_p50_ms"),
            infer_p99_ms: field_f64(w, "infer_p99_ms"),
            infer_p999_ms: field_f64(w, "infer_p999_ms"),
            tape_nodes: field_f64(w, "tape_nodes"),
            bytes_reused: field_f64(w, "bytes_reused"),
            bytes_allocated: field_f64(w, "bytes_allocated"),
        });
    }
    if workloads.is_empty() {
        return Err("'workloads' array is empty".into());
    }
    let load = v.get("load").map(|l| {
        let first_level = l
            .get("levels")
            .and_then(Value::as_array)
            .and_then(|a| a.first().cloned());
        let lvl = |key: &str| {
            first_level
                .as_ref()
                .map(|lv| field_f64(lv, key))
                .unwrap_or(f64::NAN)
        };
        LoadSummary {
            saturation_qps: field_f64(l, "saturation_qps"),
            p50_ms: lvl("p50_ms"),
            p99_ms: lvl("p99_ms"),
            p999_ms: lvl("p999_ms"),
        }
    });
    Ok(BenchDoc {
        created_unix,
        batch_size,
        workloads,
        load,
    })
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    pub workload: String,
    pub metric: &'static str,
    pub baseline: f64,
    pub candidate: f64,
    /// Signed change in percent; positive means the candidate regressed
    /// (slower throughput or higher latency), regardless of the metric's
    /// direction.
    pub regress_pct: f64,
    pub regressed: bool,
}

/// Full comparison result.
#[derive(Debug, Clone)]
pub struct Comparison {
    pub diffs: Vec<MetricDiff>,
    /// Baseline workloads absent from the candidate (always a failure:
    /// a silently dropped workload would hide regressions).
    pub missing: Vec<String>,
    pub max_regress_pct: f64,
}

impl Comparison {
    pub fn regressions(&self) -> Vec<&MetricDiff> {
        self.diffs.iter().filter(|d| d.regressed).collect()
    }

    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.regressions().is_empty()
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:<22} {:>12} {:>12} {:>9}  {}\n",
            "workload", "metric", "baseline", "candidate", "change", "status"
        ));
        for d in &self.diffs {
            out.push_str(&format!(
                "{:<18} {:<22} {:>12.3} {:>12.3} {:>+8.1}%  {}\n",
                d.workload,
                d.metric,
                d.baseline,
                d.candidate,
                d.regress_pct,
                if d.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("workload '{name}' missing from candidate\n"));
        }
        out
    }
}

/// `(metric name, lower is better)` — for throughput, lower is worse.
const METRICS: [(&str, bool); 5] = [
    ("windows_per_sec", false),
    ("backward_ns_per_node", true),
    ("infer_p50_ms", true),
    ("infer_p99_ms", true),
    ("infer_p999_ms", true),
];

fn metric_value(w: &WorkloadMetrics, name: &str) -> f64 {
    match name {
        "windows_per_sec" => w.windows_per_sec,
        "backward_ns_per_node" => w.backward_ns_per_node,
        "infer_p50_ms" => w.infer_p50_ms,
        "infer_p99_ms" => w.infer_p99_ms,
        "infer_p999_ms" => w.infer_p999_ms,
        _ => unreachable!("unknown metric {name}"),
    }
}

/// Serving metrics from the optional `load` section, same shape as
/// [`METRICS`]. Reported under the pseudo-workload name `serve`.
const LOAD_METRICS: [(&str, bool); 4] = [
    ("saturation_qps", false),
    ("load_p50_ms", true),
    ("load_p99_ms", true),
    ("load_p999_ms", true),
];

fn load_metric_value(l: &LoadSummary, name: &str) -> f64 {
    match name {
        "saturation_qps" => l.saturation_qps,
        "load_p50_ms" => l.p50_ms,
        "load_p99_ms" => l.p99_ms,
        "load_p999_ms" => l.p999_ms,
        _ => unreachable!("unknown load metric {name}"),
    }
}

/// Compares candidate against baseline, flagging any metric that moved
/// more than `max_regress_pct` in the unfavorable direction. Metrics
/// that are NaN or non-positive on either side are skipped (a tiny smoke
/// run can legitimately miss e.g. latency percentiles).
pub fn compare(baseline: &BenchDoc, candidate: &BenchDoc, max_regress_pct: f64) -> Comparison {
    let mut diffs = Vec::new();
    let mut missing = Vec::new();
    for base_w in &baseline.workloads {
        let Some(cand_w) = candidate.workloads.iter().find(|w| w.name == base_w.name) else {
            missing.push(base_w.name.clone());
            continue;
        };
        for (metric, lower_is_better) in METRICS {
            let b = metric_value(base_w, metric);
            let c = metric_value(cand_w, metric);
            if !(b.is_finite() && c.is_finite()) || b <= 0.0 || c <= 0.0 {
                continue;
            }
            // Normalize so positive always means "worse".
            let regress_pct = if lower_is_better {
                (c - b) / b * 100.0
            } else {
                (b - c) / b * 100.0
            };
            diffs.push(MetricDiff {
                workload: base_w.name.clone(),
                metric,
                baseline: b,
                candidate: c,
                regress_pct,
                regressed: regress_pct > max_regress_pct,
            });
        }
    }
    // Serving metrics: gated only when the baseline has a `load` section
    // (pre-PR-9 baselines skip the block entirely). A candidate that
    // silently dropped the section fails, same rationale as a dropped
    // workload.
    if let Some(base_l) = &baseline.load {
        match &candidate.load {
            None => missing.push("serve (load section)".into()),
            Some(cand_l) => {
                for (metric, lower_is_better) in LOAD_METRICS {
                    let b = load_metric_value(base_l, metric);
                    let c = load_metric_value(cand_l, metric);
                    if !(b.is_finite() && c.is_finite()) || b <= 0.0 || c <= 0.0 {
                        continue;
                    }
                    let regress_pct = if lower_is_better {
                        (c - b) / b * 100.0
                    } else {
                        (b - c) / b * 100.0
                    };
                    diffs.push(MetricDiff {
                        workload: "serve".into(),
                        metric,
                        baseline: b,
                        candidate: c,
                        regress_pct,
                        regressed: regress_pct > max_regress_pct,
                    });
                }
            }
        }
    }
    Comparison {
        diffs,
        missing,
        max_regress_pct,
    }
}

/// Gates **only** the serving `load` section, ignoring the training
/// workloads entirely. The use case (PR 10): pin `saturation_qps` and the
/// load latency percentiles against a serving baseline (BENCH_4) whose
/// *training* config differs from the training gate's baseline (BENCH_3
/// ran workers 1; the load baseline ran workers 2), so a whole-document
/// compare would mix incomparable numbers. A baseline without a `load`
/// section is reported as missing — this gate exists to compare serving
/// documents, so silently passing on one would be a misconfiguration.
pub fn compare_load_only(
    baseline: &BenchDoc,
    candidate: &BenchDoc,
    max_regress_pct: f64,
) -> Comparison {
    let mut diffs = Vec::new();
    let mut missing = Vec::new();
    match (&baseline.load, &candidate.load) {
        (None, _) => missing.push("serve (baseline has no load section)".into()),
        (Some(_), None) => missing.push("serve (load section)".into()),
        (Some(base_l), Some(cand_l)) => {
            for (metric, lower_is_better) in LOAD_METRICS {
                let b = load_metric_value(base_l, metric);
                let c = load_metric_value(cand_l, metric);
                if !(b.is_finite() && c.is_finite()) || b <= 0.0 || c <= 0.0 {
                    continue;
                }
                let regress_pct = if lower_is_better {
                    (c - b) / b * 100.0
                } else {
                    (b - c) / b * 100.0
                };
                diffs.push(MetricDiff {
                    workload: "serve".into(),
                    metric,
                    baseline: b,
                    candidate: c,
                    regress_pct,
                    regressed: regress_pct > max_regress_pct,
                });
            }
        }
    }
    Comparison {
        diffs,
        missing,
        max_regress_pct,
    }
}

/// Latency tolerance for the improvement gate: `infer_p50_ms` may drift
/// up to this much before the workload counts as "worse". The guard
/// uses the median, not p99: p99 on a 120-window run is a single order
/// statistic, observed to swing up to +80% between runs with an
/// identical op-for-op inference graph on a busy single-core box. The
/// median is stable run to run, and a 25% band still catches any
/// step-change latency regression while absorbing cross-session
/// machine drift.
pub const P50_TOLERANCE_PCT: f64 = 25.0;

/// One workload's throughput-improvement verdict (min-improve mode).
#[derive(Debug, Clone)]
pub struct ImproveDiff {
    pub workload: String,
    pub baseline_wps: f64,
    pub candidate_wps: f64,
    /// Signed throughput change in percent; positive means faster.
    pub improve_pct: f64,
    pub met_target: bool,
    pub baseline_p50_ms: f64,
    pub candidate_p50_ms: f64,
    /// `infer_p50_ms` rose past [`P50_TOLERANCE_PCT`].
    pub p50_worse: bool,
    /// The baseline predates `windows_trained` (its old `window_passes`
    /// numerator counted backward passes, which over-counts backbones
    /// with inner optimization loops), so the improvement was measured
    /// on training wall-clock instead — valid because both documents
    /// train the same fixed workload when their configs match. The
    /// displayed baseline throughput is re-derived from the candidate's
    /// window count over the baseline's wall-clock.
    pub wallclock_fallback: bool,
}

/// Result of the improvement gate (`bench_gate --min-improve-pct`).
#[derive(Debug, Clone)]
pub struct ImprovementReport {
    pub diffs: Vec<ImproveDiff>,
    /// Baseline workloads absent from the candidate — always a failure.
    pub missing: Vec<String>,
    pub min_improve_pct: f64,
}

impl ImprovementReport {
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.diffs.iter().all(|d| d.met_target && !d.p50_worse)
    }

    pub fn failures(&self) -> Vec<&ImproveDiff> {
        self.diffs
            .iter()
            .filter(|d| !d.met_target || d.p50_worse)
            .collect()
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>12} {:>12} {:>9}  {:>10} {:>10}  {}\n",
            "workload", "base w/s", "cand w/s", "change", "base p50", "cand p50", "status"
        ));
        for d in &self.diffs {
            let mut status = match (d.met_target, d.p50_worse) {
                (true, false) => "ok".to_string(),
                (false, _) => format!("BELOW TARGET (+{:.0}% required)", self.min_improve_pct),
                (true, true) => format!("P50 WORSE (>{P50_TOLERANCE_PCT:.0}%)"),
            };
            if d.wallclock_fallback {
                status.push_str(" [wall-clock baseline]");
            }
            out.push_str(&format!(
                "{:<18} {:>12.3} {:>12.3} {:>+8.1}%  {:>10.3} {:>10.3}  {}\n",
                d.workload,
                d.baseline_wps,
                d.candidate_wps,
                d.improve_pct,
                d.baseline_p50_ms,
                d.candidate_p50_ms,
                status
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("workload '{name}' missing from candidate\n"));
        }
        out
    }
}

/// The inverse gate of [`compare`]: instead of "did nothing regress",
/// require every workload's `windows_per_sec` to IMPROVE by at least
/// `min_improve_pct` while `infer_p50_ms` stays within
/// [`P50_TOLERANCE_PCT`] of the baseline. Used to prove an optimization
/// landed, not just that it didn't break anything.
pub fn improvement(
    baseline: &BenchDoc,
    candidate: &BenchDoc,
    min_improve_pct: f64,
) -> ImprovementReport {
    let mut diffs = Vec::new();
    let mut missing = Vec::new();
    for base_w in &baseline.workloads {
        let Some(cand_w) = candidate.workloads.iter().find(|w| w.name == base_w.name) else {
            missing.push(base_w.name.clone());
            continue;
        };
        // A baseline that predates `windows_trained` computed its
        // throughput with a different numerator (backward passes), so
        // cross-document `windows_per_sec` is not comparable. Re-derive
        // the baseline throughput from its wall-clock and the candidate's
        // window count: both runs train the same fixed workload when
        // their configs match, so the window count carries over.
        let wallclock_fallback = base_w.windows_trained.is_nan()
            && cand_w.windows_trained.is_finite()
            && base_w.train_s.is_finite()
            && base_w.train_s > 0.0;
        let b = if wallclock_fallback {
            cand_w.windows_trained / base_w.train_s
        } else {
            base_w.windows_per_sec
        };
        let c = cand_w.windows_per_sec;
        let improve_pct = if b.is_finite() && c.is_finite() && b > 0.0 {
            (c - b) / b * 100.0
        } else {
            f64::NAN
        };
        let (bp50, cp50) = (base_w.infer_p50_ms, cand_w.infer_p50_ms);
        // Missing/NaN p50 on either side skips the latency guard (a tiny
        // smoke run can legitimately lack percentiles), same policy as
        // `compare`.
        let p50_worse = bp50.is_finite()
            && cp50.is_finite()
            && bp50 > 0.0
            && cp50 > 0.0
            && (cp50 - bp50) / bp50 * 100.0 > P50_TOLERANCE_PCT;
        diffs.push(ImproveDiff {
            workload: base_w.name.clone(),
            baseline_wps: b,
            candidate_wps: c,
            improve_pct,
            met_target: improve_pct.is_finite() && improve_pct >= min_improve_pct,
            baseline_p50_ms: bp50,
            candidate_p50_ms: cp50,
            p50_worse,
            wallclock_fallback,
        });
    }
    ImprovementReport {
        diffs,
        missing,
        min_improve_pct,
    }
}

/// One workload's tape-size verdict (`--max-tape-nodes-ratio` mode).
#[derive(Debug, Clone)]
pub struct TapeNodesDiff {
    pub workload: String,
    pub baseline_nodes: f64,
    pub candidate_nodes: f64,
    /// candidate / baseline; NaN when either side lacks the counter.
    pub ratio: f64,
    /// The ratio exceeded the allowed maximum (skipped counters never
    /// fail — pre-PR-7 baselines have no tape_nodes).
    pub over_limit: bool,
}

/// Structural gate for graph-size optimizations: every workload's
/// training `tape_nodes` must shrink to at most `max_ratio` of the
/// baseline (e.g. 0.2 asserts a >= 5x drop). Workloads where either
/// document lacks the counter are reported with a NaN ratio and skipped,
/// mirroring the NaN policy of [`compare`].
pub fn tape_nodes_ratio(
    baseline: &BenchDoc,
    candidate: &BenchDoc,
    max_ratio: f64,
) -> Vec<TapeNodesDiff> {
    let mut diffs = Vec::new();
    for base_w in &baseline.workloads {
        let Some(cand_w) = candidate.workloads.iter().find(|w| w.name == base_w.name) else {
            continue; // missing workloads are the improvement/compare gates' job
        };
        let (b, c) = (base_w.tape_nodes, cand_w.tape_nodes);
        let ratio = if b.is_finite() && c.is_finite() && b > 0.0 {
            c / b
        } else {
            f64::NAN
        };
        diffs.push(TapeNodesDiff {
            workload: base_w.name.clone(),
            baseline_nodes: b,
            candidate_nodes: c,
            ratio,
            over_limit: ratio.is_finite() && ratio > max_ratio,
        });
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(wps: f64, nspn: f64, p50: f64, p99: f64) -> BenchDoc {
        BenchDoc {
            created_unix: 0,
            batch_size: 32.0,
            workloads: vec![WorkloadMetrics {
                name: "w".into(),
                train_s: 10.0,
                windows_trained: 1000.0,
                windows_per_sec: wps,
                backward_ns_per_node: nspn,
                infer_p50_ms: p50,
                infer_p99_ms: p99,
                infer_p999_ms: p99 * 1.2,
                tape_nodes: 1000.0,
                bytes_reused: 4096.0,
                bytes_allocated: 8192.0,
            }],
            load: None,
        }
    }

    #[test]
    fn identical_docs_pass() {
        let d = doc(100.0, 500.0, 2.0, 5.0);
        let cmp = compare(&d, &d, 10.0);
        assert!(cmp.ok());
        assert_eq!(cmp.diffs.len(), 5);
    }

    #[test]
    fn throughput_drop_regresses() {
        let base = doc(100.0, 500.0, 2.0, 5.0);
        let cand = doc(60.0, 500.0, 2.0, 5.0); // -40% throughput
        let cmp = compare(&base, &cand, 25.0);
        let regs = cmp.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "windows_per_sec");
        assert!(regs[0].regress_pct > 25.0);
    }

    #[test]
    fn latency_rise_regresses_but_drop_does_not() {
        let base = doc(100.0, 500.0, 2.0, 5.0);
        let slower = doc(100.0, 500.0, 4.0, 5.0); // p50 doubled
        assert!(!compare(&base, &slower, 25.0).ok());
        let faster = doc(100.0, 500.0, 1.0, 2.0);
        assert!(compare(&base, &faster, 25.0).ok());
    }

    #[test]
    fn missing_workload_fails() {
        let base = doc(100.0, 500.0, 2.0, 5.0);
        let cand = BenchDoc {
            created_unix: 0,
            batch_size: 32.0,
            workloads: vec![WorkloadMetrics {
                name: "other".into(),
                train_s: 10.0,
                windows_trained: 1000.0,
                windows_per_sec: 100.0,
                backward_ns_per_node: 500.0,
                infer_p50_ms: 2.0,
                infer_p99_ms: 5.0,
                infer_p999_ms: 6.0,
                tape_nodes: 1000.0,
                bytes_reused: 4096.0,
                bytes_allocated: 8192.0,
            }],
            load: None,
        };
        let cmp = compare(&base, &cand, 25.0);
        assert!(!cmp.ok());
        assert_eq!(cmp.missing, vec!["w".to_string()]);
    }

    #[test]
    fn nan_metrics_are_skipped() {
        let base = doc(100.0, f64::NAN, 2.0, 5.0);
        let cand = doc(100.0, 9999.0, 2.0, 5.0);
        let cmp = compare(&base, &cand, 25.0);
        assert!(cmp.ok());
        assert_eq!(cmp.diffs.len(), 4);
    }

    #[test]
    fn baseline_without_p999_parses_and_compares() {
        // A pre-p999 baseline document: the field parses to NaN and the
        // comparator skips it instead of failing.
        let old = parse_doc(
            "{\"schema\":\"adaptraj-bench/v1\",\"created_unix\":1,\
             \"workloads\":[{\"name\":\"w\",\"windows_per_sec\":100.0,\
             \"backward_ns_per_node\":500.0,\"infer_p50_ms\":2.0,\
             \"infer_p99_ms\":5.0}]}",
        )
        .unwrap();
        assert!(old.workloads[0].infer_p999_ms.is_nan());
        let cand = doc(100.0, 500.0, 2.0, 5.0);
        let cmp = compare(&old, &cand, 10.0);
        assert!(cmp.ok());
        assert!(cmp.diffs.iter().all(|d| d.metric != "infer_p999_ms"));
        // New-vs-new compares it.
        let cmp2 = compare(&cand, &cand, 10.0);
        assert!(cmp2.diffs.iter().any(|d| d.metric == "infer_p999_ms"));
    }

    #[test]
    fn baseline_without_graph_counters_parses_and_compares() {
        // A pre-PR-7 baseline document has no tape_nodes / pool counters:
        // they parse to NaN and, being informational (never gated), the
        // comparison result is unchanged.
        let old = parse_doc(
            "{\"schema\":\"adaptraj-bench/v1\",\"created_unix\":1,\
             \"workloads\":[{\"name\":\"w\",\"windows_per_sec\":100.0,\
             \"backward_ns_per_node\":500.0,\"infer_p50_ms\":2.0,\
             \"infer_p99_ms\":5.0,\"infer_p999_ms\":6.0}]}",
        )
        .unwrap();
        assert!(old.workloads[0].tape_nodes.is_nan());
        assert!(old.workloads[0].bytes_reused.is_nan());
        assert!(old.workloads[0].bytes_allocated.is_nan());
        let cand = doc(100.0, 500.0, 2.0, 5.0);
        let cmp = compare(&old, &cand, 10.0);
        assert!(cmp.ok());
        assert!(cmp.diffs.iter().all(|d| d.metric != "tape_nodes"));
    }

    #[test]
    fn baseline_without_batch_size_parses_and_compares() {
        // A pre-PR-8 baseline document has no config.batch_size: it
        // parses to NaN and, being informational, never affects the
        // comparison outcome — same policy as infer_p999_ms.
        let old = parse_doc(
            "{\"schema\":\"adaptraj-bench/v1\",\"created_unix\":1,\
             \"config\":{\"epochs\":4,\"workers\":1},\
             \"workloads\":[{\"name\":\"w\",\"windows_per_sec\":100.0,\
             \"backward_ns_per_node\":500.0,\"infer_p50_ms\":2.0,\
             \"infer_p99_ms\":5.0,\"infer_p999_ms\":6.0}]}",
        )
        .unwrap();
        assert!(old.batch_size.is_nan());
        let cand = doc(100.0, 500.0, 2.0, 5.0);
        assert!(compare(&old, &cand, 10.0).ok());
        // A post-PR-8 document carries it through.
        let new = parse_doc(
            "{\"schema\":\"adaptraj-bench/v1\",\"created_unix\":2,\
             \"config\":{\"epochs\":4,\"workers\":1,\"batch_size\":32},\
             \"workloads\":[{\"name\":\"w\",\"windows_per_sec\":100.0,\
             \"backward_ns_per_node\":500.0,\"infer_p50_ms\":2.0,\
             \"infer_p99_ms\":5.0,\"infer_p999_ms\":6.0}]}",
        )
        .unwrap();
        assert_eq!(new.batch_size, 32.0);
    }

    #[test]
    fn improvement_gate_requires_target_throughput_gain() {
        let base = doc(100.0, 500.0, 2.0, 5.0);
        let fast = doc(130.0, 400.0, 1.5, 4.0); // +30% throughput
        assert!(improvement(&base, &fast, 25.0).ok());
        let slow_gain = doc(110.0, 400.0, 1.5, 4.0); // only +10%
        let rep = improvement(&base, &slow_gain, 25.0);
        assert!(!rep.ok());
        assert_eq!(rep.failures().len(), 1);
        assert!(!rep.failures()[0].met_target);
    }

    #[test]
    fn improvement_gate_rejects_median_latency_regressions() {
        let base = doc(100.0, 500.0, 2.0, 5.0);
        // Throughput target met, but p50 rose 50% — past tolerance.
        let latent = doc(150.0, 400.0, 3.0, 7.0);
        let rep = improvement(&base, &latent, 25.0);
        assert!(!rep.ok());
        assert!(rep.failures()[0].p50_worse);
        // Within the 25% tolerance band: passes (even with a noisy p99
        // — the gate deliberately ignores single-sample tails).
        let ok = doc(150.0, 400.0, 2.4, 9.0);
        assert!(improvement(&base, &ok, 25.0).ok());
    }

    #[test]
    fn improvement_gate_fails_on_missing_workload() {
        let base = doc(100.0, 500.0, 2.0, 5.0);
        let cand = BenchDoc {
            created_unix: 0,
            batch_size: 32.0,
            workloads: vec![WorkloadMetrics {
                name: "other".into(),
                train_s: 10.0,
                windows_trained: 1000.0,
                windows_per_sec: 500.0,
                backward_ns_per_node: 100.0,
                infer_p50_ms: 1.0,
                infer_p99_ms: 2.0,
                infer_p999_ms: 2.5,
                tape_nodes: 1000.0,
                bytes_reused: 4096.0,
                bytes_allocated: 8192.0,
            }],
            load: None,
        };
        assert!(!improvement(&base, &cand, 25.0).ok());
    }

    #[test]
    fn improvement_gate_skips_latency_guard_without_percentiles() {
        let base = doc(100.0, 500.0, f64::NAN, 5.0);
        let cand = doc(140.0, 400.0, 9999.0, 9999.0);
        assert!(improvement(&base, &cand, 25.0).ok());
    }

    #[test]
    fn improvement_gate_falls_back_to_wallclock_for_legacy_baselines() {
        // Pre-PR-8 baseline: wps was backward passes / s, inflated 5x
        // for a backbone with an inner loop. Wall-clock still halved, so
        // the gate must pass via the train_s fallback.
        let mut base = doc(5000.0, 500.0, 2.0, 5.0);
        base.workloads[0].windows_trained = f64::NAN;
        base.workloads[0].train_s = 0.7; // 1000 windows -> 1428 w/s true
        let mut cand = doc(2900.0, 400.0, 2.0, 5.0); // honest numerator
        cand.workloads[0].train_s = 0.345;
        let rep = improvement(&base, &cand, 25.0);
        assert!(rep.diffs[0].wallclock_fallback);
        assert!((rep.diffs[0].baseline_wps - 1000.0 / 0.7).abs() < 1e-9);
        assert!(rep.diffs[0].improve_pct > 100.0);
        assert!(rep.ok(), "{}", rep.render_text());
        // Both documents post-PR-8: no fallback, direct wps comparison.
        let rep2 = improvement(&doc(100.0, 500.0, 2.0, 5.0), &cand, 25.0);
        assert!(!rep2.diffs[0].wallclock_fallback);
    }

    #[test]
    fn tape_nodes_ratio_gates_graph_shrink() {
        let mut base = doc(100.0, 500.0, 2.0, 5.0); // tape_nodes = 1000
        let mut cand = doc(120.0, 400.0, 2.0, 5.0);
        cand.workloads[0].tape_nodes = 150.0; // 0.15x — well under 0.2
        let diffs = tape_nodes_ratio(&base, &cand, 0.2);
        assert_eq!(diffs.len(), 1);
        assert!(!diffs[0].over_limit);
        cand.workloads[0].tape_nodes = 400.0; // 0.4x — over the limit
        assert!(tape_nodes_ratio(&base, &cand, 0.2)[0].over_limit);
        // A baseline without the counter skips the check.
        base.workloads[0].tape_nodes = f64::NAN;
        let skipped = tape_nodes_ratio(&base, &cand, 0.2);
        assert!(skipped[0].ratio.is_nan() && !skipped[0].over_limit);
    }

    #[test]
    fn parse_doc_validates_schema() {
        assert!(parse_doc("{").is_err());
        assert!(parse_doc("{\"schema\":\"other/v9\",\"workloads\":[]}")
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(
            parse_doc("{\"schema\":\"adaptraj-bench/v1\",\"workloads\":[]}")
                .unwrap_err()
                .contains("empty")
        );
        let ok = parse_doc(
            "{\"schema\":\"adaptraj-bench/v1\",\"created_unix\":5,\
             \"workloads\":[{\"name\":\"w\",\"windows_per_sec\":10.0,\
             \"backward_ns_per_node\":100.0,\"infer_p50_ms\":1.5,\
             \"infer_p99_ms\":3.0}]}",
        )
        .unwrap();
        assert_eq!(ok.created_unix, 5);
        assert_eq!(ok.workloads[0].name, "w");
        assert_eq!(ok.workloads[0].infer_p50_ms, 1.5);
    }

    fn load_doc(qps: f64, p50: f64) -> BenchDoc {
        let mut d = doc(100.0, 500.0, 2.0, 5.0);
        d.load = Some(LoadSummary {
            saturation_qps: qps,
            p50_ms: p50,
            p99_ms: f64::NAN,
            p999_ms: f64::NAN,
        });
        d
    }

    #[test]
    fn legacy_doc_without_load_section_parses_and_compares() {
        // Every BENCH file committed before `bench --load` existed lacks
        // the `load` key: it must keep parsing, and comparing it (on
        // either side, against old or new) must not fail on the absence.
        let old = parse_doc(
            "{\"schema\":\"adaptraj-bench/v1\",\"created_unix\":1,\
             \"workloads\":[{\"name\":\"w\",\"windows_per_sec\":100.0,\
             \"backward_ns_per_node\":500.0,\"infer_p50_ms\":2.0,\
             \"infer_p99_ms\":5.0}]}",
        )
        .unwrap();
        assert!(old.load.is_none());
        // old baseline vs new candidate that HAS a load section: ok, the
        // serving block is skipped (no baseline to compare against).
        let new = load_doc(800.0, 1.2);
        assert!(compare(&old, &new, 10.0).ok());
        assert!(compare(&old, &new, 10.0)
            .diffs
            .iter()
            .all(|d| d.workload != "serve"));
    }

    #[test]
    fn load_section_parses_and_unsupported_percentiles_stay_nan() {
        let d = parse_doc(
            "{\"schema\":\"adaptraj-bench/v1\",\"created_unix\":1,\
             \"workloads\":[{\"name\":\"w\",\"windows_per_sec\":100.0,\
             \"backward_ns_per_node\":500.0,\"infer_p50_ms\":2.0,\
             \"infer_p99_ms\":5.0}],\
             \"load\":{\"config\":{\"workers\":2},\
             \"levels\":[{\"clients\":1,\"requests\":64,\"qps\":310.5,\
             \"p50_ms\":2.9,\"p99_ms\":null,\"p999_ms\":null},\
             {\"clients\":8,\"requests\":512,\"qps\":820.0,\
             \"p50_ms\":8.1,\"p99_ms\":14.0,\"p999_ms\":null}],\
             \"saturation_qps\":820.0}}",
        )
        .unwrap();
        let l = d.load.as_ref().expect("load section parsed");
        assert_eq!(l.saturation_qps, 820.0);
        assert_eq!(l.p50_ms, 2.9); // first (lowest-clients) level
        assert!(l.p99_ms.is_nan() && l.p999_ms.is_nan());
    }

    #[test]
    fn load_regressions_are_gated_and_dropped_section_fails() {
        let base = load_doc(800.0, 2.0);
        // Same numbers: ok, and the serve pseudo-workload is compared.
        let cmp = compare(&base, &base, 10.0);
        assert!(cmp.ok());
        assert!(cmp
            .diffs
            .iter()
            .any(|d| d.workload == "serve" && d.metric == "saturation_qps"));
        // NaN percentiles on both sides are skipped, not compared.
        assert!(cmp.diffs.iter().all(|d| d.metric != "load_p99_ms"));
        // Saturation qps halved: regression.
        let slow = load_doc(400.0, 2.0);
        let regs = compare(&base, &slow, 10.0);
        assert!(!regs.ok());
        assert_eq!(regs.regressions()[0].metric, "saturation_qps");
        // Unloaded p50 doubled: regression.
        assert!(!compare(&base, &load_doc(800.0, 4.0), 10.0).ok());
        // Candidate silently dropped the section: failure.
        let mut dropped = base.clone();
        dropped.load = None;
        let cmp = compare(&base, &dropped, 10.0);
        assert!(!cmp.ok());
        assert_eq!(cmp.missing, vec!["serve (load section)".to_string()]);
    }

    #[test]
    fn load_only_compare_ignores_training_workloads() {
        // Training throughput cratered, but the load-only gate must not
        // care — it exists precisely because the training configs of the
        // two documents are not comparable.
        let base = load_doc(800.0, 2.0);
        let mut cand = load_doc(810.0, 2.1);
        cand.workloads[0].windows_per_sec = 1.0;
        let cmp = compare_load_only(&base, &cand, 10.0);
        assert!(cmp.ok(), "{:?}", cmp.regressions());
        assert!(cmp.diffs.iter().all(|d| d.workload == "serve"));
        // Serving regressions still fail.
        assert!(!compare_load_only(&base, &load_doc(400.0, 2.0), 10.0).ok());
        // A candidate that dropped the section fails; so does gating
        // against a baseline that never had one.
        let mut dropped = cand.clone();
        dropped.load = None;
        assert!(!compare_load_only(&base, &dropped, 10.0).ok());
        assert!(!compare_load_only(&dropped, &base, 10.0).ok());
    }
}
