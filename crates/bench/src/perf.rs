//! Fixed-seed performance workloads for the `bench` CLI subcommand.
//!
//! Each workload trains one predictor on synthesized source domains and
//! then runs repeated single-sample inference on the target split,
//! collecting throughput and latency under the op-level profiler. The
//! whole run serializes as an `adaptraj-bench/v1` document (see
//! EXPERIMENTS.md) that `bench_gate` can diff against a baseline.

use adaptraj_data::dataset::{synthesize_domain, DomainDataset, SynthesisConfig};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{
    build_predictor, pooled_train, target_test, BackboneKind, CellSpec, MethodKind, RunnerConfig,
};
use adaptraj_exec::intra_op;
use adaptraj_models::TrainerConfig;
use adaptraj_obs::json::{Arr, Obj};
use adaptraj_obs::profile::{self, ProfileSnapshot};
use adaptraj_tensor::{kernels, Rng};
use std::time::Instant;

/// Schema tag written into every bench document.
pub const BENCH_SCHEMA: &str = "adaptraj-bench/v1";

/// Scale knobs for one bench run. Every workload shares these so runs
/// stay comparable across commits.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Training epochs per workload.
    pub epochs: usize,
    /// Scenes synthesized per domain (drives window counts).
    pub scenes: usize,
    /// Inference passes timed per workload (cycles over the test split
    /// with repetition — samples, not distinct windows). Raised from the
    /// original 120 because p99 on 120 samples is a single order
    /// statistic: it swung up to +80% between identical runs. The CLI
    /// still accepts `--eval-windows` as a legacy spelling.
    pub eval_samples: usize,
    /// Worker threads for the training executor (`adaptraj-exec`); the
    /// timed inference loop stays single-threaded so latency percentiles
    /// remain comparable across configs.
    pub workers: usize,
    /// Optimizer mini-batch size (windows per parameter update). Recorded
    /// in the bench document so batched-execution changes stay auditable;
    /// pre-PR-8 documents lack the field and the comparator tolerates it.
    pub batch_size: usize,
    /// Seed for synthesis, training, and inference sampling.
    pub seed: u64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        Self {
            epochs: 4,
            scenes: 6,
            eval_samples: 480,
            workers: 1,
            batch_size: TrainerConfig::default().batch_size,
            seed: 7,
        }
    }
}

impl PerfConfig {
    /// Sub-minute settings for the CI smoke gate.
    pub fn smoke() -> Self {
        Self {
            epochs: 1,
            scenes: 3,
            eval_samples: 20,
            workers: 1,
            batch_size: TrainerConfig::default().batch_size,
            seed: 7,
        }
    }
}

/// Measured numbers for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    pub name: String,
    /// Training wall-clock.
    pub train_s: f64,
    /// Windows dispatched to training jobs (the `exec.windows_trained`
    /// counter). Since batched execution a single backward pass covers a
    /// whole job, so `tensor.backward_calls` counts jobs, not windows.
    pub windows_trained: u64,
    /// Training throughput: windows trained per second.
    pub windows_per_sec: f64,
    /// Mean backward-pass cost per tape node over training.
    pub backward_ns_per_node: f64,
    /// Tape nodes pushed during training.
    pub tape_nodes: u64,
    /// Bytes served from the buffer pool during training (reuse hits).
    pub bytes_reused: u64,
    /// Bytes freshly heap-allocated during training (pool misses).
    pub bytes_allocated: u64,
    /// Timed single-sample inference passes.
    pub infer_windows: u64,
    pub infer_mean_ms: f64,
    pub infer_p50_ms: f64,
    pub infer_p99_ms: f64,
    pub infer_p999_ms: f64,
}

impl WorkloadResult {
    pub fn to_json(&self) -> String {
        Obj::new()
            .str("name", &self.name)
            .f64("train_s", self.train_s)
            .u64("windows_trained", self.windows_trained)
            .f64("windows_per_sec", self.windows_per_sec)
            .f64("backward_ns_per_node", self.backward_ns_per_node)
            .u64("tape_nodes", self.tape_nodes)
            .u64("bytes_reused", self.bytes_reused)
            .u64("bytes_allocated", self.bytes_allocated)
            .u64("infer_windows", self.infer_windows)
            .f64("infer_mean_ms", self.infer_mean_ms)
            .f64("infer_p50_ms", self.infer_p50_ms)
            .f64("infer_p99_ms", self.infer_p99_ms)
            .f64("infer_p999_ms", self.infer_p999_ms)
            .finish()
    }
}

/// One full bench run: per-workload numbers plus the op/phase profile
/// captured while the workloads ran.
#[derive(Debug, Clone)]
pub struct PerfReport {
    pub created_unix: u64,
    pub config: PerfConfig,
    pub workloads: Vec<WorkloadResult>,
    pub profile: ProfileSnapshot,
    /// Closed-loop serving results (`bench --load`); absent documents
    /// parse and compare fine — the load metrics are NaN-skipped like
    /// every late-added field.
    pub load: Option<crate::load::LoadReport>,
}

/// The fixed workload set: one plain backbone, one second backbone, and
/// the AdapTraj-full model — the combinations the acceptance criteria
/// and Table VIII care about.
fn workload_specs() -> Vec<(&'static str, CellSpec)> {
    let sources = vec![DomainId::EthUcy, DomainId::LCas];
    let target = DomainId::Sdd;
    vec![
        (
            "pecnet_vanilla",
            CellSpec {
                backbone: BackboneKind::PecNet,
                method: MethodKind::Vanilla,
                sources: sources.clone(),
                target,
            },
        ),
        (
            "lbebm_vanilla",
            CellSpec {
                backbone: BackboneKind::Lbebm,
                method: MethodKind::Vanilla,
                sources: sources.clone(),
                target,
            },
        ),
        (
            "pecnet_adaptraj",
            CellSpec {
                backbone: BackboneKind::PecNet,
                method: MethodKind::AdapTraj,
                sources,
                target,
            },
        ),
    ]
}

/// Nearest-rank quantile of a sorted sample.
pub(crate) fn pctl(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Like [`pctl`], but NaN when the sample is too small to support the
/// quantile — at least one observation must lie beyond it
/// (`n * (1 - q) >= 1`, so p99 needs 100 samples and p999 needs 1000).
/// Below that the "quantile" is just the sample maximum, the single
/// order statistic whose run-to-run swings caused the PR 8 p99
/// flakiness; emitting NaN makes the comparator skip it instead.
pub(crate) fn pctl_supported(sorted: &[f64], q: f64) -> f64 {
    if (sorted.len() as f64) * (1.0 - q) < 1.0 {
        return f64::NAN;
    }
    pctl(sorted, q)
}

fn run_workload(
    name: &str,
    spec: &CellSpec,
    datasets: &[DomainDataset],
    cfg: &PerfConfig,
) -> WorkloadResult {
    let runner = RunnerConfig {
        trainer: TrainerConfig {
            epochs: cfg.epochs,
            max_train_windows: 96,
            seed: cfg.seed,
            patience: 0,
            workers: cfg.workers,
            batch_size: cfg.batch_size,
            ..TrainerConfig::default()
        },
        ..RunnerConfig::default()
    };
    let train = pooled_train(spec, datasets);
    let test = target_test(spec, datasets, 0);
    let mut predictor = build_predictor(spec, &runner);

    let _workload_phase = profile::phase(name);
    let registry = adaptraj_obs::global();
    let before = registry.snapshot();
    let t0 = Instant::now();
    {
        let _p = profile::phase("train");
        predictor.fit(&train);
    }
    let train_s = t0.elapsed().as_secs_f64();
    let delta = registry.snapshot().since(&before);
    let windows_trained = delta.counter("exec.windows_trained");
    let tape_nodes = delta.counter("tensor.tape_nodes_total");
    let backward_ms = delta.hist_sum("tensor.backward_ms");
    let backward_ns_per_node = if tape_nodes > 0 {
        backward_ms * 1e6 / tape_nodes as f64
    } else {
        f64::NAN
    };

    let mut rng = Rng::seed_from(cfg.seed ^ 0xBE7C);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(cfg.eval_samples);
    if !test.is_empty() {
        let _p = profile::phase("infer");
        for i in 0..cfg.eval_samples {
            let w = test[i % test.len()];
            let t = Instant::now();
            let _ = predictor.predict(w, &mut rng);
            latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let infer_mean_ms = if latencies_ms.is_empty() {
        f64::NAN
    } else {
        latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
    };

    WorkloadResult {
        name: name.to_string(),
        train_s,
        windows_trained,
        windows_per_sec: if train_s > 0.0 {
            windows_trained as f64 / train_s
        } else {
            f64::NAN
        },
        backward_ns_per_node,
        tape_nodes,
        bytes_reused: delta.counter("tensor.bytes_reused"),
        bytes_allocated: delta.counter("tensor.bytes_allocated"),
        infer_windows: latencies_ms.len() as u64,
        infer_mean_ms,
        infer_p50_ms: pctl(&latencies_ms, 0.50),
        infer_p99_ms: pctl_supported(&latencies_ms, 0.99),
        infer_p999_ms: pctl_supported(&latencies_ms, 0.999),
    }
}

/// Runs the full workload set under the profiler and returns the report.
/// Resets the global profiler; any previously collected profile data is
/// discarded.
pub fn run_perf(cfg: &PerfConfig) -> PerfReport {
    let synth = SynthesisConfig {
        scenes: cfg.scenes,
        seed: cfg.seed,
        ..SynthesisConfig::default()
    };
    let domains = [DomainId::EthUcy, DomainId::LCas, DomainId::Sdd];
    let datasets: Vec<DomainDataset> = domains
        .iter()
        .map(|&d| synthesize_domain(d, &synth))
        .collect();

    profile::reset();
    let was_enabled = profile::profiling_enabled();
    profile::set_enabled(true);
    let mut workloads = Vec::new();
    for (name, spec) in workload_specs() {
        workloads.push(run_workload(name, &spec, &datasets, cfg));
    }
    profile::set_enabled(was_enabled);
    let snapshot = profile::snapshot();

    let created_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    PerfReport {
        created_unix,
        config: cfg.clone(),
        workloads,
        profile: snapshot,
        load: None,
    }
}

impl PerfReport {
    /// Serializes the report as an `adaptraj-bench/v1` document.
    pub fn to_json(&self) -> String {
        let mut wl = Arr::new();
        for w in &self.workloads {
            wl = wl.push_raw(&w.to_json());
        }
        // Kernel configuration rides along so a bench document records
        // which GEMM dispatch produced it (PR 10). The comparator ignores
        // unknown config keys, so older baselines stay comparable.
        let config = Obj::new()
            .u64("epochs", self.config.epochs as u64)
            .u64("scenes", self.config.scenes as u64)
            .u64("eval_samples", self.config.eval_samples as u64)
            .u64("workers", self.config.workers as u64)
            .u64("batch_size", self.config.batch_size as u64)
            .u64("seed", self.config.seed)
            .str("kernel", kernels::active_kernel().name())
            .u64("intra_op_threads", intra_op::installed_threads() as u64)
            .u64("split_min_flops", kernels::split_min_flops() as u64)
            .finish();
        let mut doc = Obj::new()
            .str("schema", BENCH_SCHEMA)
            .u64("created_unix", self.created_unix)
            .raw("config", &config)
            .raw("workloads", &wl.finish());
        if let Some(load) = &self.load {
            doc = doc.raw("load", &load.to_json());
        }
        doc.raw("ops", &self.profile.ops_json())
            .raw("phases", &self.profile.phases_json())
            .finish()
    }

    /// Human-readable summary: per-workload table plus the op/phase
    /// profile tables.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>10} {:>12} {:>14} {:>12} {:>12} {:>12}\n",
            "workload", "train_s", "windows/s", "bwd ns/node", "p50 ms", "p99 ms", "p999 ms"
        ));
        for w in &self.workloads {
            out.push_str(&format!(
                "{:<18} {:>10.2} {:>12.1} {:>14.0} {:>12.3} {:>12.3} {:>12.3}\n",
                w.name,
                w.train_s,
                w.windows_per_sec,
                w.backward_ns_per_node,
                w.infer_p50_ms,
                w.infer_p99_ms,
                w.infer_p999_ms
            ));
        }
        out.push('\n');
        out.push_str(&self.profile.render_table());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pctl_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pctl(&v, 0.50), 2.0);
        assert_eq!(pctl(&v, 0.99), 4.0);
        assert!(pctl(&[], 0.5).is_nan());
    }

    #[test]
    fn smoke_report_round_trips_schema() {
        let cfg = PerfConfig {
            epochs: 1,
            scenes: 2,
            eval_samples: 4,
            workers: 2,
            batch_size: 8,
            seed: 3,
        };
        let report = run_perf(&cfg);
        assert_eq!(report.workloads.len(), 3);
        for w in &report.workloads {
            assert!(w.windows_trained > 0, "{} trained no windows", w.name);
            assert!(w.windows_per_sec > 0.0);
            assert!(w.infer_p50_ms > 0.0);
        }
        let json = report.to_json();
        let doc = crate::compare::parse_doc(&json).expect("self-emitted doc must parse");
        assert_eq!(doc.workloads.len(), 3);
        assert_eq!(doc.workloads[2].name, "pecnet_adaptraj");
        assert!(doc.workloads[0].windows_per_sec > 0.0);
        assert_eq!(doc.batch_size, 8.0);
    }
}
