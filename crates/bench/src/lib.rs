//! # adaptraj-bench
//!
//! Reproduction harness: one binary per table/figure of the paper's
//! evaluation (run with `cargo run --release -p adaptraj-bench --bin
//! <name> [-- --scale smoke|paper]`), plus criterion microbenchmarks
//! (`cargo bench -p adaptraj-bench`).
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_stats` | Tab. I — dataset statistics |
//! | `table2_decline` | Tab. II — cross-domain performance decline |
//! | `table3_negative_transfer` | Tab. III — negative transfer |
//! | `table4_main` | Tab. IV — main multi-source comparison |
//! | `table5_single_source` | Tab. V — single-source generalization |
//! | `table6_varied_sources` | Tab. VI — varied source sets |
//! | `table7_ablation` | Tab. VII — ablation study |
//! | `table8_inference` | Tab. VIII — inference time |
//! | `fig3_source_count` | Fig. 3 — performance vs #source domains |
//! | `fig4_sensitivity` | Fig. 4 — hyperparameter sensitivity |
//! | `social_metrics` | supplementary: collision/miss social metrics |
//! | `compare_methods` | supplementary: paired-bootstrap vanilla-vs-AdapTraj |
//!
//! The default `smoke` scale finishes each binary in minutes on one CPU
//! core; `paper` runs the full protocol (hours). Absolute errors differ
//! from the paper (synthetic data, narrow models — see DESIGN.md); the
//! comparisons between methods are the reproduction target.

use adaptraj_data::dataset::{synthesize_all, DomainDataset, SynthesisConfig};
use adaptraj_data::preprocess::ExtractionConfig;
use adaptraj_eval::RunnerConfig;
use adaptraj_models::TrainerConfig;

pub mod compare;
pub mod load;
pub mod perf;

/// Experiment scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale: reduced scenes/epochs/eval windows.
    Smoke,
    /// The full protocol (hours on one core).
    Paper,
}

impl Scale {
    /// Parses `--scale smoke|paper` from `std::env::args`; defaults to
    /// smoke.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        match args
            .iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
        {
            Some("paper") => Scale::Paper,
            Some("smoke") | None => Scale::Smoke,
            Some(other) => panic!("unknown --scale '{other}' (expected smoke|paper)"),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Paper => "paper",
        }
    }

    /// Dataset synthesis settings for this scale.
    pub fn synthesis(self) -> SynthesisConfig {
        match self {
            Scale::Smoke => SynthesisConfig {
                scenes: 12,
                steps_per_scene: 480,
                seed: 7,
                extraction: ExtractionConfig::default(),
            },
            Scale::Paper => SynthesisConfig {
                scenes: 40,
                steps_per_scene: 600,
                seed: 7,
                extraction: ExtractionConfig::default(),
            },
        }
    }

    /// Runner settings for this scale.
    pub fn runner(self) -> RunnerConfig {
        match self {
            Scale::Smoke => RunnerConfig {
                trainer: TrainerConfig {
                    epochs: 36,
                    max_train_windows: 200,
                    ..TrainerConfig::default()
                },
                samples_k: 3,
                eval_cap: 150,
                ..RunnerConfig::default()
            },
            Scale::Paper => RunnerConfig {
                trainer: TrainerConfig {
                    epochs: 80,
                    max_train_windows: 800,
                    ..TrainerConfig::default()
                },
                samples_k: 20,
                eval_cap: 300,
                ..RunnerConfig::default()
            },
        }
    }
}

/// Synthesizes all four domain datasets at the given scale, with progress
/// output.
pub fn build_datasets(scale: Scale) -> Vec<DomainDataset> {
    eprintln!(
        "[setup] synthesizing 4 domains at {} scale ...",
        scale.name()
    );
    let t0 = std::time::Instant::now();
    let datasets = synthesize_all(&scale.synthesis());
    for ds in &datasets {
        eprintln!(
            "[setup]   {:8} train={:5} val={:4} test={:4}",
            ds.domain.name(),
            ds.train.len(),
            ds.val.len(),
            ds.test.len()
        );
    }
    eprintln!("[setup] done in {:.1}s", t0.elapsed().as_secs_f64());
    datasets
}

/// Prints a standard experiment header.
pub fn banner(title: &str, scale: Scale) {
    println!("=== {title} ===");
    println!(
        "scale: {} (absolute values differ from the paper — synthetic data, narrow models; \
         method comparisons are the reproduction target)",
        scale.name()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_sane_relative_sizes() {
        let s = Scale::Smoke;
        let p = Scale::Paper;
        assert!(s.synthesis().scenes < p.synthesis().scenes);
        assert!(s.runner().trainer.epochs < p.runner().trainer.epochs);
        assert!(s.runner().eval_cap < p.runner().eval_cap);
    }

    #[test]
    fn scale_names() {
        assert_eq!(Scale::Smoke.name(), "smoke");
        assert_eq!(Scale::Paper.name(), "paper");
    }
}
