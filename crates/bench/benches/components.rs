//! Microbenchmarks of the substrate and the AdapTraj modules: tensor
//! kernels, LSTM steps, scene encoding, extractor/aggregator forwards, and
//! the LBEBM Langevin sampler — the per-design-choice cost breakdown
//! behind the Table VIII differences.

use adaptraj_core::{Aggregator, InvariantExtractor, SpecificExtractor};
use adaptraj_data::domain::DomainId;
use adaptraj_data::trajectory::{Point, TrajWindow, T_OBS, T_TOTAL};
use adaptraj_models::{Backbone, BackboneConfig, ForwardCtx, Lbebm, PecNet};
use adaptraj_tensor::nn::LstmCell;
use adaptraj_tensor::{GroupId, ParamStore, Rng, Tape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn window_with_neighbors(n: usize) -> TrajWindow {
    let focal: Vec<Point> = (0..T_TOTAL).map(|t| [0.3 * t as f32, 0.0]).collect();
    let nb: Vec<Vec<Point>> = (0..n)
        .map(|k| (0..T_OBS).map(|t| [0.3 * t as f32, k as f32]).collect())
        .collect();
    TrajWindow::from_world(&focal, &nb, DomainId::EthUcy)
}

fn bench_tensor(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0);
    let a = Tensor::randn(32, 64, 0.0, 1.0, &mut rng);
    let b = Tensor::randn(64, 128, 0.0, 1.0, &mut rng);
    c.bench_function("tensor/matmul_32x64x128", |bch| {
        bch.iter(|| black_box(a.matmul(black_box(&b))))
    });
    c.bench_function("tensor/softmax_rows_32x128", |bch| {
        let x = Tensor::randn(32, 128, 0.0, 1.0, &mut rng);
        bch.iter(|| black_box(x.softmax_rows()))
    });
}

fn bench_lstm(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(1);
    let cell = LstmCell::new(&mut store, &mut rng, "c", 16, 32, GroupId::DEFAULT);
    c.bench_function("nn/lstm_step_batch16", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(Tensor::zeros(16, 16));
            let s = cell.zero_state(&mut tape, 16);
            black_box(cell.step(&store, &mut tape, x, s));
        })
    });
}

fn bench_backbones(c: &mut Criterion) {
    let w = window_with_neighbors(8);
    let mut group = c.benchmark_group("backbone");
    group.sample_size(30);

    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(2);
    let pecnet = PecNet::new(&mut store, &mut rng, BackboneConfig::default());
    group.bench_function("pecnet_encode_8nbrs", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            black_box(pecnet.encode(&store, &mut tape, &w));
        })
    });
    group.bench_function("pecnet_full_sample", |b| {
        let mut r = Rng::seed_from(3);
        b.iter(|| {
            let mut tape = Tape::new();
            let enc = pecnet.encode(&store, &mut tape, &w);
            let mut ctx = ForwardCtx::sample(&store, &mut tape, &mut r);
            black_box(pecnet.generate(&mut ctx, &w, &enc, None));
        })
    });

    let mut store2 = ParamStore::new();
    let mut rng2 = Rng::seed_from(4);
    let lbebm = Lbebm::new(&mut store2, &mut rng2, BackboneConfig::default());
    group.bench_function("lbebm_full_sample_langevin", |b| {
        let mut r = Rng::seed_from(5);
        b.iter(|| {
            let mut tape = Tape::new();
            let enc = lbebm.encode(&store2, &mut tape, &w);
            let mut ctx = ForwardCtx::sample(&store2, &mut tape, &mut r);
            black_box(lbebm.generate(&mut ctx, &w, &enc, None));
        })
    });
    group.finish();
}

fn bench_adaptraj_modules(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from(6);
    let (h, p, f, ff) = (32, 32, 16, 16);
    let inv = InvariantExtractor::new(&mut store, &mut rng, h, p, f, ff);
    let spec = SpecificExtractor::new(
        &mut store,
        &mut rng,
        &[DomainId::EthUcy, DomainId::LCas, DomainId::Syi],
        h,
        p,
        f,
        ff,
    );
    let agg = Aggregator::new(&mut store, &mut rng, f);
    let hv = Tensor::randn(1, h, 0.0, 1.0, &mut rng);
    let pv = Tensor::randn(1, p, 0.0, 1.0, &mut rng);

    c.bench_function("adaptraj/invariant_forward", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let hvar = tape.constant(hv.clone());
            let pvar = tape.constant(pv.clone());
            let i = inv.individual(&store, &mut tape, hvar);
            let n = inv.neighbor(&store, &mut tape, pvar);
            black_box(inv.fuse(&store, &mut tape, i, n));
        })
    });
    c.bench_function("adaptraj/aggregated_specific_forward_3experts", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let hvar = tape.constant(hv.clone());
            let pvar = tape.constant(pv.clone());
            let si = spec.individual_sum(&store, &mut tape, hvar);
            let sn = spec.neighbor_sum(&store, &mut tape, pvar);
            let ai = agg.individual(&store, &mut tape, si);
            let an = agg.neighbor(&store, &mut tape, sn);
            black_box(spec.fuse(&store, &mut tape, ai, an));
        })
    });
}

criterion_group!(
    benches,
    bench_tensor,
    bench_lstm,
    bench_backbones,
    bench_adaptraj_modules
);

/// Design-choice ablations from DESIGN.md: LSTM vs Transformer mobility
/// encoder and attention vs mean-pool interaction, measured on a scene
/// encode (the dominating inference cost).
fn bench_design_ablations(c: &mut Criterion) {
    use adaptraj_models::config::EncoderKind;
    use adaptraj_models::{InteractionKind, SceneEncoder};

    let w = window_with_neighbors(8);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(30);
    for (label, encoder, interaction) in [
        (
            "lstm_attention",
            EncoderKind::Lstm,
            InteractionKind::Attention,
        ),
        (
            "lstm_meanpool",
            EncoderKind::Lstm,
            InteractionKind::MeanPool,
        ),
        (
            "transformer_attention",
            EncoderKind::Transformer,
            InteractionKind::Attention,
        ),
    ] {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(7);
        let cfg = BackboneConfig::default().with_encoder(encoder);
        let enc = SceneEncoder::new(&mut store, &mut rng, "a", &cfg, interaction);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                black_box(enc.encode(&store, &mut tape, &w));
            })
        });
    }
    group.finish();
}

criterion_group!(ablations, bench_design_ablations);
criterion_main!(benches, ablations);
