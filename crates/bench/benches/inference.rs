//! Criterion version of Table VIII: single-trajectory inference latency
//! for every backbone × learning-method cell. Models are trained for a
//! token number of epochs — latency is a property of the architecture.

use adaptraj_data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj_data::domain::DomainId;
use adaptraj_eval::{build_predictor, BackboneKind, CellSpec, MethodKind, RunnerConfig};
use adaptraj_models::TrainerConfig;
use adaptraj_tensor::Rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let ds = synthesize_domain(DomainId::EthUcy, &SynthesisConfig::smoke());
    let target = synthesize_domain(DomainId::Sdd, &SynthesisConfig::smoke());
    let window = target.test.first().expect("test window").clone();

    let cfg = RunnerConfig {
        trainer: TrainerConfig {
            epochs: 1,
            max_train_windows: 30,
            ..TrainerConfig::default()
        },
        ..RunnerConfig::default()
    };

    let mut group = c.benchmark_group("inference");
    group.sample_size(20);
    for backbone in BackboneKind::ALL {
        for method in MethodKind::COMPARED {
            let spec = CellSpec {
                backbone,
                method,
                sources: vec![DomainId::EthUcy],
                target: DomainId::Sdd,
            };
            let mut predictor = build_predictor(&spec, &cfg);
            predictor.fit(&ds.train[..ds.train.len().min(30)]);
            let mut rng = Rng::seed_from(0);
            group.bench_function(format!("{}-{}", backbone.name(), method.name()), |b| {
                b.iter(|| black_box(predictor.predict(black_box(&window), &mut rng)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
