//! Simulator throughput: world-step cost per domain (scene density is the
//! driver) and full scene synthesis.

use adaptraj_data::domain::DomainId;
use adaptraj_sim::build_world;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_world_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step");
    for domain in DomainId::ALL {
        let scenario = domain.scenario();
        let params = domain.force_params();
        group.bench_function(domain.name(), |b| {
            let mut world = build_world(&scenario, &params, 0.1, 42);
            b.iter(|| {
                world.step();
                black_box(world.active_count())
            })
        });
    }
    group.finish();
}

fn bench_scene_build(c: &mut Criterion) {
    let scenario = DomainId::EthUcy.scenario();
    let params = DomainId::EthUcy.force_params();
    c.bench_function("sim/build_world_ethucy", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(build_world(&scenario, &params, 0.1, seed))
        })
    });
}

criterion_group!(benches, bench_world_step, bench_scene_build);
criterion_main!(benches);
