//! Integration tests for the observability crate: histogram accuracy
//! against a brute-force oracle, registry round-trips, and the JSONL sink
//! schema golden.

use adaptraj_obs::{
    add_sink, clear_sinks, emit, set_max_level, FieldValue, JsonlSink, Level, Registry, Sink, Span,
};
use std::sync::Arc;

/// Minimal deterministic generator (64-bit LCG, Knuth constants) so the
/// oracle test needs no external randomness.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Nearest-rank quantile over the raw samples — the oracle the streaming
/// histogram is checked against.
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn histogram_quantiles_match_sorted_sample_oracle() {
    // Log-bucketed sketch with GAMMA = 1.02 guarantees ~1% relative error;
    // allow 2.5% for rank discretization at the distribution tails.
    let reg = Registry::new();
    let h = reg.histogram("oracle");
    let mut rng = Lcg(0x9E3779B97F4A7C15);
    let mut samples = Vec::with_capacity(5000);
    for _ in 0..5000 {
        // Log-uniform over ~6 decades, the shape of latency data.
        let v = 10f64.powf(rng.next_f64() * 6.0 - 3.0);
        h.record(v);
        samples.push(v);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let snap = h.snapshot();
    assert_eq!(snap.count, 5000);
    for (q, got) in [
        (0.5, snap.p50),
        (0.9, snap.p90),
        (0.99, snap.p99),
        (0.999, snap.p999),
    ] {
        let want = oracle_quantile(&samples, q);
        let rel = (got - want).abs() / want;
        assert!(rel < 0.025, "p{q}: got {got}, oracle {want}, rel err {rel}");
    }
    // Extremes are tracked exactly, not sketched.
    assert_eq!(snap.min, samples[0]);
    assert_eq!(snap.max, samples[samples.len() - 1]);
}

#[test]
fn counter_and_gauge_round_trip_through_the_registry() {
    let reg = Registry::new();
    reg.counter("windows").add(41);
    reg.counter("windows").incr();
    reg.gauge("lr").set(3e-3);
    // Handles obtained later observe earlier writes (shared state, not
    // per-handle copies).
    assert_eq!(reg.counter("windows").get(), 42);
    assert!((reg.gauge("lr").get() - 3e-3).abs() < 1e-12);

    let dump = reg.dump_jsonl();
    assert!(dump
        .iter()
        .any(|l| l == r#"{"type":"counter","name":"windows","value":42}"#));
    assert!(dump
        .iter()
        .any(|l| l.starts_with(r#"{"type":"gauge","name":"lr","value":0.003"#)));

    reg.reset();
    assert!(reg.dump_jsonl().is_empty());
    // A fresh handle after reset starts from zero.
    assert_eq!(reg.counter("windows").get(), 0);
}

#[test]
fn jsonl_sink_writes_the_documented_schema() {
    let path =
        std::env::temp_dir().join(format!("adaptraj_obs_golden_{}.jsonl", std::process::id()));
    let path_str = path.to_str().expect("temp path is utf-8");
    {
        let sink = Arc::new(JsonlSink::create(path_str).expect("create jsonl"));
        clear_sinks();
        add_sink(sink.clone());
        set_max_level(Level::Debug);
        emit(
            Level::Info,
            "test.golden",
            "hello",
            vec![
                ("epoch", FieldValue::U64(3)),
                ("loss", FieldValue::F64(0.25)),
            ],
        );
        {
            let _span = Span::enter("test.golden", "work").with("n", 7u64);
        }
        sink.write_raw_line(r#"{"type":"counter","name":"demo","value":1}"#);
        clear_sinks();
        set_max_level(Level::Info);
        sink.flush();
    }
    let text = std::fs::read_to_string(&path).expect("read jsonl back");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "event + span + raw metric line: {text}");

    // Line 1: the emitted event, with the full stable field set.
    assert!(
        lines[0].starts_with(r#"{"type":"event","ts_ms":"#),
        "{}",
        lines[0]
    );
    assert!(
        lines[0].contains(
            r#""level":"info","target":"test.golden","msg":"hello","fields":{"epoch":3,"loss":0.25}"#
        ),
        "{}",
        lines[0]
    );

    // Line 2: the span completion carries elapsed_ms.
    assert!(
        lines[1].contains(r#""msg":"work","fields":{"n":7},"elapsed_ms":"#),
        "{}",
        lines[1]
    );

    // Line 3: raw metric lines pass through verbatim.
    assert_eq!(lines[2], r#"{"type":"counter","name":"demo","value":1}"#);
}

/// Concurrent writers must never tear lines: each line plus its newline
/// goes through one locked `write_all`, so every line in the file is a
/// complete record from exactly one writer.
#[test]
fn jsonl_sink_lines_are_atomic_under_concurrent_writers() {
    const THREADS: usize = 8;
    const LINES_PER_THREAD: usize = 250;

    let path =
        std::env::temp_dir().join(format!("adaptraj_obs_stress_{}.jsonl", std::process::id()));
    let path_str = path.to_str().expect("temp path is utf-8");
    let sink = Arc::new(JsonlSink::create(path_str).expect("create jsonl"));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let sink = Arc::clone(&sink);
            s.spawn(move || {
                for i in 0..LINES_PER_THREAD {
                    // Long enough payload that a torn write would split it
                    // across a flush boundary.
                    sink.write_raw_line(&format!(
                        r#"{{"type":"stress","thread":{t},"index":{i},"pad":"{}"}}"#,
                        "x".repeat(200)
                    ));
                }
            });
        }
    });
    sink.flush();

    let text = std::fs::read_to_string(&path).expect("read stress file back");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), THREADS * LINES_PER_THREAD);

    // Every (thread, index) pair appears exactly once and every line is
    // intact, well-formed JSON.
    let mut seen = std::collections::BTreeSet::new();
    for line in lines {
        let v = adaptraj_obs::json::Value::parse(line)
            .unwrap_or_else(|e| panic!("torn or invalid line {line:?}: {e}"));
        let t = v.get("thread").and_then(|x| x.as_u64()).expect("thread id");
        let i = v.get("index").and_then(|x| x.as_u64()).expect("index");
        assert_eq!(
            v.get("pad").and_then(|x| x.as_str()).map(str::len),
            Some(200)
        );
        assert!(seen.insert((t, i)), "duplicate line for ({t},{i})");
    }
    assert_eq!(seen.len(), THREADS * LINES_PER_THREAD);
}
