//! Op-level autodiff profiler: per-op-kind and per-phase attribution of
//! forward/backward wall-clock and allocation.
//!
//! The tape in `adaptraj-tensor` reports every recorded operation through
//! the single [`record_op`] choke point, tagged with the op kind (`matmul`,
//! `tanh`, ...), the direction ([`Dir::Forward`] at record time,
//! [`Dir::Backward`] while the chain rule runs), the elapsed wall-clock,
//! and the bytes allocated for the result value. Higher layers scope costs
//! with [`phase`] guards (`profile::phase("step2")`), which nest into
//! `/`-separated paths, so a `matmul` executed inside
//! `bench/pecnet_adaptraj/step2` attributes to that phase and — via the
//! inclusive rollup in [`ProfileSnapshot::by_phase`] — to every ancestor.
//!
//! Cost model: profiling is **off by default** and the hot path stays
//! clean. [`op_timer`] is a single relaxed atomic load returning `None`,
//! and [`record_op`] returns immediately on a `None` timer, so a disabled
//! profiler adds only that load per op. When enabled, each op pays one
//! `Instant::now` pair plus a short global-mutex critical section.
//!
//! Threading: the phase stack is thread-local, but the aggregation cells
//! and the interned phase-path table are process-global behind one mutex,
//! so records from `adaptraj-exec` worker threads merge into the same
//! snapshot automatically. A worker re-enters its dispatcher's phase by
//! capturing [`current_path`] before the job is sent and calling
//! [`phase_at`] inside it.

use crate::json::{Arr, Obj};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Schema tag of the JSON document produced by [`ProfileSnapshot::to_json`].
pub const PROFILE_SCHEMA: &str = "adaptraj-profile/v1";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns op recording on or off. Phases entered while disabled are not
/// tracked; enable the profiler before entering the phases you care about.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether op recording is currently on.
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Which half of autodiff an op sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    Forward,
    Backward,
}

impl Dir {
    pub fn as_str(self) -> &'static str {
        match self {
            Dir::Forward => "forward",
            Dir::Backward => "backward",
        }
    }
}

/// An opaque started-or-not timer handed back to [`record_op`]. `None`
/// when profiling is disabled, so the disabled path never reads the clock.
#[derive(Debug)]
pub struct OpTimer(Option<Instant>);

/// Starts an op timer — one relaxed atomic load when profiling is off.
#[inline]
pub fn op_timer() -> OpTimer {
    if ENABLED.load(Ordering::Relaxed) {
        OpTimer(Some(Instant::now()))
    } else {
        OpTimer(None)
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Agg {
    calls: u64,
    total_ns: u64,
    bytes: u64,
}

struct State {
    /// Phase id → full `/`-joined path. Id 0 is the root (unattributed)
    /// phase with the empty path. Interned paths are never evicted —
    /// [`reset`] clears only the aggregation cells, so phase ids held by
    /// live [`PhaseGuard`]s stay valid.
    phase_paths: Vec<String>,
    phase_ids: HashMap<String, u32>,
    cells: HashMap<(u32, &'static str, Dir), Agg>,
}

fn state() -> &'static Mutex<State> {
    static S: OnceLock<Mutex<State>> = OnceLock::new();
    S.get_or_init(|| {
        Mutex::new(State {
            phase_paths: vec![String::new()],
            phase_ids: HashMap::from([(String::new(), 0)]),
            cells: HashMap::new(),
        })
    })
}

thread_local! {
    static PHASE_STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

fn current_phase() -> u32 {
    PHASE_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// Full `/`-joined path of the phase this thread is currently inside, or
/// `None` at the root. Capture this before handing a job to a worker
/// thread and re-enter it there with [`phase_at`].
pub fn current_path() -> Option<String> {
    let id = current_phase();
    if id == 0 {
        return None;
    }
    let st = state().lock().expect("profiler poisoned");
    Some(st.phase_paths[id as usize].clone())
}

/// Enters an **absolute** `/`-joined phase path, ignoring this thread's
/// current phase stack. Used by worker threads to attribute their ops to
/// the dispatching thread's phase. Free (and untracked) while profiling
/// is disabled or when `path` is empty.
pub fn phase_at(path: &str) -> PhaseGuard {
    // The phase doubles as a timeline span (named by its last segment so
    // worker lanes show the same label the dispatcher's `phase` used).
    let timeline = if path.is_empty() {
        None
    } else {
        crate::timeline::phase_span(path.rsplit('/').next().unwrap_or(path))
    };
    if !profiling_enabled() || path.is_empty() {
        return PhaseGuard {
            pushed: false,
            _timeline: timeline,
        };
    }
    let id = {
        let mut st = state().lock().expect("profiler poisoned");
        match st.phase_ids.get(path) {
            Some(&id) => id,
            None => {
                let id = st.phase_paths.len() as u32;
                st.phase_paths.push(path.to_string());
                st.phase_ids.insert(path.to_string(), id);
                id
            }
        }
    };
    PHASE_STACK.with(|s| s.borrow_mut().push(id));
    PhaseGuard {
        pushed: true,
        _timeline: timeline,
    }
}

/// The choke point every instrumented op reports through. A no-op when the
/// timer was started while profiling was disabled.
#[inline]
pub fn record_op(kind: &'static str, dir: Dir, timer: OpTimer, bytes: u64) {
    let Some(t0) = timer.0 else { return };
    let ns = t0.elapsed().as_nanos() as u64;
    let phase = current_phase();
    let mut st = state().lock().expect("profiler poisoned");
    let cell = st.cells.entry((phase, kind, dir)).or_default();
    cell.calls += 1;
    cell.total_ns += ns;
    cell.bytes += bytes;
}

/// Scope guard labelling all ops recorded on this thread until drop.
/// Nested guards produce `parent/child` paths. When timeline capture is
/// on, the guard also records the phase as a span on this thread's lane.
#[must_use = "the phase ends when the guard drops"]
#[derive(Debug)]
pub struct PhaseGuard {
    pushed: bool,
    _timeline: Option<crate::timeline::SpanHandle>,
}

/// Enters a profiling phase. Free (and untracked) while profiling is
/// disabled.
pub fn phase(label: &str) -> PhaseGuard {
    let timeline = crate::timeline::phase_span(label);
    if !profiling_enabled() {
        return PhaseGuard {
            pushed: false,
            _timeline: timeline,
        };
    }
    let parent = current_phase();
    let id = {
        let mut st = state().lock().expect("profiler poisoned");
        let path = if st.phase_paths[parent as usize].is_empty() {
            label.to_string()
        } else {
            format!("{}/{}", st.phase_paths[parent as usize], label)
        };
        match st.phase_ids.get(&path) {
            Some(&id) => id,
            None => {
                let id = st.phase_paths.len() as u32;
                st.phase_paths.push(path.clone());
                st.phase_ids.insert(path, id);
                id
            }
        }
    };
    PHASE_STACK.with(|s| s.borrow_mut().push(id));
    PhaseGuard {
        pushed: true,
        _timeline: timeline,
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if self.pushed {
            PHASE_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Clears every aggregation cell (interned phase paths are kept — see
/// [`State::phase_paths`]).
pub fn reset() {
    state().lock().expect("profiler poisoned").cells.clear();
}

/// One `(phase, op kind, direction)` aggregation cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Full `/`-joined phase path; empty for ops recorded outside any
    /// phase.
    pub phase: String,
    pub kind: &'static str,
    pub dir: Dir,
    pub calls: u64,
    pub total_ns: u64,
    pub bytes: u64,
}

/// Per-op-kind rollup (forward and backward side by side), across phases.
#[derive(Debug, Clone, PartialEq)]
pub struct OpRow {
    pub kind: &'static str,
    pub fwd_calls: u64,
    pub fwd_ns: u64,
    pub bwd_calls: u64,
    pub bwd_ns: u64,
    pub bytes: u64,
}

impl OpRow {
    pub fn total_ns(&self) -> u64 {
        self.fwd_ns + self.bwd_ns
    }
}

/// Per-phase rollup. Inclusive: a sample in `a/b` also counts toward `a`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    pub phase: String,
    pub calls: u64,
    pub fwd_ns: u64,
    pub bwd_ns: u64,
    pub bytes: u64,
}

impl PhaseRow {
    pub fn total_ns(&self) -> u64 {
        self.fwd_ns + self.bwd_ns
    }
}

/// Point-in-time copy of every profiler cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileSnapshot {
    pub entries: Vec<ProfileEntry>,
}

/// Copies the current profiler state, sorted by (phase, kind, dir).
pub fn snapshot() -> ProfileSnapshot {
    let st = state().lock().expect("profiler poisoned");
    let mut entries: Vec<ProfileEntry> = st
        .cells
        .iter()
        .map(|(&(phase, kind, dir), agg)| ProfileEntry {
            phase: st.phase_paths[phase as usize].clone(),
            kind,
            dir,
            calls: agg.calls,
            total_ns: agg.total_ns,
            bytes: agg.bytes,
        })
        .collect();
    entries.sort_by(|a, b| (&a.phase, a.kind, a.dir).cmp(&(&b.phase, b.kind, b.dir)));
    ProfileSnapshot { entries }
}

impl ProfileSnapshot {
    /// Keeps only entries whose phase path starts with `prefix`.
    pub fn under(&self, prefix: &str) -> ProfileSnapshot {
        ProfileSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|e| {
                    e.phase == prefix
                        || e.phase
                            .strip_prefix(prefix)
                            .is_some_and(|rest| rest.starts_with('/'))
                })
                .cloned()
                .collect(),
        }
    }

    /// Per-op-kind rollup across all phases, sorted by total time
    /// descending.
    pub fn by_op(&self) -> Vec<OpRow> {
        let mut map: HashMap<&'static str, OpRow> = HashMap::new();
        for e in &self.entries {
            let row = map.entry(e.kind).or_insert_with(|| OpRow {
                kind: e.kind,
                fwd_calls: 0,
                fwd_ns: 0,
                bwd_calls: 0,
                bwd_ns: 0,
                bytes: 0,
            });
            match e.dir {
                Dir::Forward => {
                    row.fwd_calls += e.calls;
                    row.fwd_ns += e.total_ns;
                    row.bytes += e.bytes;
                }
                Dir::Backward => {
                    row.bwd_calls += e.calls;
                    row.bwd_ns += e.total_ns;
                }
            }
        }
        let mut rows: Vec<OpRow> = map.into_values().collect();
        rows.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.kind.cmp(b.kind)));
        rows
    }

    /// Inclusive per-phase rollup sorted by total time descending. Ops
    /// recorded outside any phase appear under `(unattributed)`.
    pub fn by_phase(&self) -> Vec<PhaseRow> {
        let mut map: HashMap<String, PhaseRow> = HashMap::new();
        for e in &self.entries {
            // A sample in "a/b/c" counts toward "a", "a/b", and "a/b/c".
            let label = if e.phase.is_empty() {
                "(unattributed)".to_string()
            } else {
                e.phase.clone()
            };
            let mut targets = vec![label.clone()];
            if !e.phase.is_empty() {
                let mut path = String::new();
                for part in e.phase.split('/') {
                    if !path.is_empty() {
                        path.push('/');
                    }
                    path.push_str(part);
                    if path != e.phase {
                        targets.push(path.clone());
                    }
                }
            }
            for t in targets {
                let row = map.entry(t.clone()).or_insert_with(|| PhaseRow {
                    phase: t,
                    calls: 0,
                    fwd_ns: 0,
                    bwd_ns: 0,
                    bytes: 0,
                });
                row.calls += e.calls;
                match e.dir {
                    Dir::Forward => {
                        row.fwd_ns += e.total_ns;
                        row.bytes += e.bytes;
                    }
                    Dir::Backward => row.bwd_ns += e.total_ns,
                }
            }
        }
        let mut rows: Vec<PhaseRow> = map.into_values().collect();
        rows.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.phase.cmp(&b.phase)));
        rows
    }

    /// Human-readable report: per-op table then per-phase table, both
    /// sorted by total time descending.
    pub fn render_table(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mib = |b: u64| b as f64 / (1024.0 * 1024.0);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>10} {:>12} {:>10} {:>12} {:>10}\n",
            "op", "fwd calls", "fwd ms", "bwd calls", "bwd ms", "alloc MiB"
        ));
        for r in self.by_op() {
            out.push_str(&format!(
                "{:<22} {:>10} {:>12.3} {:>10} {:>12.3} {:>10.2}\n",
                r.kind,
                r.fwd_calls,
                ms(r.fwd_ns),
                r.bwd_calls,
                ms(r.bwd_ns),
                mib(r.bytes)
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<40} {:>10} {:>12} {:>12} {:>10}\n",
            "phase (inclusive)", "ops", "fwd ms", "bwd ms", "alloc MiB"
        ));
        for r in self.by_phase() {
            out.push_str(&format!(
                "{:<40} {:>10} {:>12.3} {:>12.3} {:>10.2}\n",
                r.phase,
                r.calls,
                ms(r.fwd_ns),
                ms(r.bwd_ns),
                mib(r.bytes)
            ));
        }
        out
    }

    /// JSON array of per-op rollups (for embedding in larger documents).
    pub fn ops_json(&self) -> String {
        let mut arr = Arr::new();
        for r in self.by_op() {
            arr = arr.push_raw(
                &Obj::new()
                    .str("kind", r.kind)
                    .u64("fwd_calls", r.fwd_calls)
                    .u64("fwd_ns", r.fwd_ns)
                    .u64("bwd_calls", r.bwd_calls)
                    .u64("bwd_ns", r.bwd_ns)
                    .u64("bytes", r.bytes)
                    .finish(),
            );
        }
        arr.finish()
    }

    /// JSON array of inclusive per-phase rollups.
    pub fn phases_json(&self) -> String {
        let mut arr = Arr::new();
        for r in self.by_phase() {
            arr = arr.push_raw(
                &Obj::new()
                    .str("phase", &r.phase)
                    .u64("calls", r.calls)
                    .u64("fwd_ns", r.fwd_ns)
                    .u64("bwd_ns", r.bwd_ns)
                    .u64("bytes", r.bytes)
                    .finish(),
            );
        }
        arr.finish()
    }

    /// Standalone machine-readable profile document
    /// (`adaptraj-profile/v1`).
    pub fn to_json(&self) -> String {
        let mut raw = Arr::new();
        for e in &self.entries {
            raw = raw.push_raw(
                &Obj::new()
                    .str("phase", &e.phase)
                    .str("kind", e.kind)
                    .str("dir", e.dir.as_str())
                    .u64("calls", e.calls)
                    .u64("total_ns", e.total_ns)
                    .u64("bytes", e.bytes)
                    .finish(),
            );
        }
        Obj::new()
            .str("schema", PROFILE_SCHEMA)
            .raw("ops", &self.ops_json())
            .raw("phases", &self.phases_json())
            .raw("cells", &raw.finish())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The profiler is process-global; tests that flip the enable bit
    /// serialize on this lock so they cannot clobber each other.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        match L.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn burn(d: Duration) -> OpTimer {
        let t = op_timer();
        std::thread::sleep(d);
        t
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _g = test_lock();
        set_enabled(false);
        reset();
        let t = op_timer();
        record_op("matmul", Dir::Forward, t, 1024);
        assert!(snapshot().entries.is_empty());
    }

    #[test]
    fn records_attribute_to_nested_phases() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        {
            let _outer = phase("t_outer");
            record_op("add", Dir::Forward, burn(Duration::from_millis(1)), 64);
            {
                let _inner = phase("inner");
                record_op("matmul", Dir::Forward, burn(Duration::from_millis(1)), 256);
                record_op("matmul", Dir::Backward, burn(Duration::from_millis(1)), 0);
            }
        }
        set_enabled(false);
        let snap = snapshot().under("t_outer");
        assert_eq!(snap.entries.len(), 3);
        let phases: Vec<&str> = snap.entries.iter().map(|e| e.phase.as_str()).collect();
        assert_eq!(phases, ["t_outer", "t_outer/inner", "t_outer/inner"]);

        // Per-op rollup merges directions per kind.
        let ops = snap.by_op();
        let mm = ops.iter().find(|r| r.kind == "matmul").unwrap();
        assert_eq!(mm.fwd_calls, 1);
        assert_eq!(mm.bwd_calls, 1);
        assert_eq!(mm.bytes, 256);
        assert!(mm.fwd_ns >= 1_000_000 && mm.bwd_ns >= 1_000_000);

        // Phase rollup is inclusive: the outer phase absorbs the inner's
        // samples.
        let by_phase = snap.by_phase();
        let outer = by_phase.iter().find(|r| r.phase == "t_outer").unwrap();
        assert_eq!(outer.calls, 3);
        assert_eq!(outer.bytes, 64 + 256);
        let inner = by_phase
            .iter()
            .find(|r| r.phase == "t_outer/inner")
            .unwrap();
        assert_eq!(inner.calls, 2);
        assert!(outer.total_ns() >= inner.total_ns());
        reset();
    }

    #[test]
    fn reset_clears_cells_but_guards_survive() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        let _p = phase("t_reset");
        record_op("mul", Dir::Forward, op_timer(), 8);
        reset();
        assert!(snapshot().under("t_reset").entries.is_empty());
        // The phase id interned before reset still resolves.
        record_op("mul", Dir::Forward, op_timer(), 8);
        set_enabled(false);
        let snap = snapshot().under("t_reset");
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.entries[0].phase, "t_reset");
        reset();
    }

    #[test]
    fn worker_thread_records_merge_under_dispatcher_phase() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        {
            let _outer = phase("t_merge");
            let path = current_path().expect("inside a phase");
            assert_eq!(path, "t_merge");
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let path = path.clone();
                    std::thread::spawn(move || {
                        let _p = phase_at(&path);
                        record_op("add", Dir::Forward, op_timer(), 16);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            record_op("add", Dir::Forward, op_timer(), 16);
        }
        set_enabled(false);
        let snap = snapshot().under("t_merge");
        // All four records (3 worker threads + dispatcher) land in the
        // same cell because the phase-path table is process-global.
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.entries[0].calls, 4);
        assert_eq!(snap.entries[0].bytes, 64);
        reset();
    }

    #[test]
    fn phase_at_is_inert_at_root_or_disabled() {
        let _g = test_lock();
        set_enabled(false);
        reset();
        assert!(current_path().is_none());
        {
            let _p = phase_at("t_inert");
            record_op("add", Dir::Forward, op_timer(), 1);
        }
        set_enabled(true);
        {
            let _p = phase_at("");
            record_op("add", Dir::Forward, op_timer(), 1);
        }
        set_enabled(false);
        assert!(snapshot().under("t_inert").entries.is_empty());
        reset();
    }

    #[test]
    fn json_and_table_render() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        {
            let _p = phase("t_json");
            record_op("tanh", Dir::Forward, op_timer(), 100);
        }
        set_enabled(false);
        let snap = snapshot().under("t_json");
        let json = snap.to_json();
        assert!(
            json.starts_with(r#"{"schema":"adaptraj-profile/v1""#),
            "{json}"
        );
        assert!(json.contains(r#""kind":"tanh""#));
        assert!(json.contains(r#""phase":"t_json""#));
        let table = snap.render_table();
        assert!(table.contains("tanh"));
        assert!(table.contains("t_json"));
        reset();
    }
}
