//! Level-filtered tracing with pluggable sinks and scoped span timers.
//!
//! Design constraints (see DESIGN.md "Observability"):
//!
//! * **Zero dependencies** — the whole facility is `std` only.
//! * **Cheap when disabled** — the level check is a single relaxed atomic
//!   load; no allocation happens for filtered-out events.
//! * **Pluggable sinks** — a global registry of [`Sink`]s receives every
//!   enabled [`Event`]. The workspace ships a stderr pretty-printer
//!   ([`StderrSink`]) and a JSONL file writer ([`JsonlSink`]); tests
//!   install capture sinks.
//! * **Spans are measurements** — a [`Span`] emits a completion event with
//!   its wall-clock duration *and* records the duration into a global
//!   histogram metric named `span.<name>_ms`, so p50/p90/p99 of every hot
//!   path fall out of the metrics dump for free.

use crate::json::Obj;
use crate::metrics;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Verbosity levels, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses `error | warn | info | debug | trace` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(v as f64)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// One trace record, delivered to every installed sink.
#[derive(Debug, Clone)]
pub struct Event {
    pub level: Level,
    /// Subsystem tag, e.g. `"core.fit"` or `"eval.cell"`.
    pub target: &'static str,
    pub message: String,
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Span duration, present on span-completion events.
    pub elapsed_ms: Option<f64>,
    /// Milliseconds since the Unix epoch at emission.
    pub ts_ms: u64,
}

impl Event {
    /// Serializes the event as one compact JSON line (the [`JsonlSink`]
    /// record schema; see the golden test in `tests/obs.rs`).
    pub fn to_json(&self) -> String {
        let mut fields = Obj::new();
        for (k, v) in &self.fields {
            fields = match v {
                FieldValue::U64(x) => fields.u64(k, *x),
                FieldValue::I64(x) => fields.i64(k, *x),
                FieldValue::F64(x) => fields.f64(k, *x),
                FieldValue::Str(x) => fields.str(k, x),
                FieldValue::Bool(x) => fields.bool(k, *x),
            };
        }
        let mut obj = Obj::new()
            .str("type", "event")
            .u64("ts_ms", self.ts_ms)
            .str("level", self.level.as_str())
            .str("target", self.target)
            .str("msg", &self.message)
            .raw("fields", &fields.finish());
        if let Some(e) = self.elapsed_ms {
            obj = obj.f64("elapsed_ms", e);
        }
        obj.finish()
    }
}

/// Receives enabled events. Implementations must be thread-safe.
pub trait Sink: Send + Sync {
    fn record(&self, event: &Event);
    fn flush(&self) {}
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static SINKS: RwLock<Vec<Arc<dyn Sink>>> = RwLock::new(Vec::new());

/// Sets the global maximum level; events above it are dropped before any
/// allocation.
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

pub fn max_level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Whether an event at `level` would currently be delivered.
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Installs a sink; every subsequent enabled event is delivered to it.
pub fn add_sink(sink: Arc<dyn Sink>) {
    SINKS.write().expect("sink registry poisoned").push(sink);
}

/// Removes all sinks (used by tests and at process teardown).
pub fn clear_sinks() {
    SINKS.write().expect("sink registry poisoned").clear();
}

/// Flushes every installed sink (call before process exit so buffered
/// JSONL writers hit disk).
pub fn flush_sinks() {
    for s in SINKS.read().expect("sink registry poisoned").iter() {
        s.flush();
    }
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Delivers an event to all sinks if its level is enabled.
pub fn dispatch(event: Event) {
    if !enabled(event.level) {
        return;
    }
    for s in SINKS.read().expect("sink registry poisoned").iter() {
        s.record(&event);
    }
}

/// Emits a message-plus-fields event at `level`.
pub fn emit(
    level: Level,
    target: &'static str,
    message: impl Into<String>,
    fields: Vec<(&'static str, FieldValue)>,
) {
    if !enabled(level) {
        return;
    }
    dispatch(Event {
        level,
        target,
        message: message.into(),
        fields,
        elapsed_ms: None,
        ts_ms: now_ms(),
    });
}

/// Scoped wall-clock timer. On drop it emits a completion event (at the
/// span's level) and records the duration into the `span.<name>_ms`
/// histogram of the global metrics registry.
#[derive(Debug)]
pub struct Span {
    target: &'static str,
    name: &'static str,
    level: Level,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// Enters a span at `Level::Debug`.
    pub fn enter(target: &'static str, name: &'static str) -> Span {
        Span::enter_at(target, name, Level::Debug)
    }

    pub fn enter_at(target: &'static str, name: &'static str, level: Level) -> Span {
        Span {
            target,
            name,
            level,
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Attaches a field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.fields.push((key, value.into()));
        self
    }

    /// Attaches a field after entry (e.g. a result computed inside the
    /// span).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.fields.push((key, value.into()));
    }

    /// Elapsed time so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.elapsed_ms();
        metrics::global()
            .histogram(&format!("span.{}_ms", self.name))
            .record(elapsed);
        if enabled(self.level) {
            dispatch(Event {
                level: self.level,
                target: self.target,
                message: self.name.to_string(),
                fields: std::mem::take(&mut self.fields),
                elapsed_ms: Some(elapsed),
                ts_ms: now_ms(),
            });
        }
    }
}

/// Pretty-printer sink for interactive runs:
/// `12:03:04.512 INFO  eval.cell finished ade=0.41 (1234.5ms)`.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&self, e: &Event) {
        let secs_of_day = (e.ts_ms / 1000) % 86_400;
        let (h, m, s, ms) = (
            secs_of_day / 3600,
            (secs_of_day / 60) % 60,
            secs_of_day % 60,
            e.ts_ms % 1000,
        );
        let mut line = format!(
            "{h:02}:{m:02}:{s:02}.{ms:03} {:5} {} {}",
            e.level.as_str().to_ascii_uppercase(),
            e.target,
            e.message
        );
        for (k, v) in &e.fields {
            let rendered = match v {
                FieldValue::U64(x) => x.to_string(),
                FieldValue::I64(x) => x.to_string(),
                FieldValue::F64(x) => format!("{x:.4}"),
                FieldValue::Str(x) => x.clone(),
                FieldValue::Bool(x) => x.to_string(),
            };
            line.push_str(&format!(" {k}={rendered}"));
        }
        if let Some(el) = e.elapsed_ms {
            line.push_str(&format!(" ({el:.1}ms)"));
        }
        eprintln!("{line}");
    }
}

/// JSONL file sink: one [`Event::to_json`] line per record. Also accepts
/// raw pre-serialized lines so the final metrics dump can share the file.
///
/// Writes are line-atomic: each record is assembled into one buffer
/// (line + `\n`) and written with a single `write_all` under the writer
/// mutex, so concurrent worker threads can never interleave partial
/// lines. The sink also flushes on drop, so records survive even when
/// [`flush_sinks`] is not reached (e.g. a panicking run).
pub struct JsonlSink {
    writer: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(std::io::BufWriter::new(file)),
        })
    }

    /// Appends one pre-serialized JSON line (no trailing newline needed).
    /// The full line lands in one `write_all` call under the lock, so
    /// lines from concurrent threads never tear.
    pub fn write_raw_line(&self, json: &str) {
        let mut line = String::with_capacity(json.len() + 1);
        line.push_str(json);
        line.push('\n');
        let mut w = self.writer.lock().expect("jsonl writer poisoned");
        let _ = w.write_all(line.as_bytes());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(w) = self.writer.get_mut() {
            let _ = w.flush();
        }
    }
}

impl Sink for JsonlSink {
    fn record(&self, e: &Event) {
        self.write_raw_line(&e.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl writer poisoned").flush();
    }
}

/// In-memory capture sink for tests.
#[derive(Debug, Default)]
pub struct CaptureSink {
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    pub fn new() -> Arc<CaptureSink> {
        Arc::new(CaptureSink::default())
    }

    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("capture poisoned").clone()
    }
}

impl Sink for CaptureSink {
    fn record(&self, e: &Event) {
        self.events
            .lock()
            .expect("capture poisoned")
            .push(e.clone());
    }
}

/// Emits at `Level::Error`. Usage: `obs_error!("target", "msg {}", x)`.
#[macro_export]
macro_rules! obs_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::trace::emit($crate::trace::Level::Error, $target, format!($($arg)*), vec![])
    };
}

/// Emits at `Level::Warn`.
#[macro_export]
macro_rules! obs_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::trace::emit($crate::trace::Level::Warn, $target, format!($($arg)*), vec![])
    };
}

/// Emits at `Level::Info`.
#[macro_export]
macro_rules! obs_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::trace::emit($crate::trace::Level::Info, $target, format!($($arg)*), vec![])
    };
}

/// Emits at `Level::Debug`.
#[macro_export]
macro_rules! obs_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::trace::emit($crate::trace::Level::Debug, $target, format!($($arg)*), vec![])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink registry and level filter are process-global, so tests that
    // install sinks serialize on this lock to avoid cross-talk.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn level_parse_round_trips() {
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn level_filter_drops_events() {
        let _guard = TEST_LOCK.lock().unwrap();
        let cap = CaptureSink::new();
        clear_sinks();
        add_sink(cap.clone());
        set_max_level(Level::Warn);
        emit(Level::Info, "t", "dropped", vec![]);
        emit(Level::Warn, "t", "kept", vec![]);
        clear_sinks();
        set_max_level(Level::Info);
        let evs = cap.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].message, "kept");
    }

    #[test]
    fn span_emits_completion_with_elapsed() {
        let _guard = TEST_LOCK.lock().unwrap();
        let cap = CaptureSink::new();
        clear_sinks();
        add_sink(cap.clone());
        set_max_level(Level::Debug);
        {
            let mut sp = Span::enter("test", "unit_span").with("k", 1u64);
            sp.record("r", 2.0f64);
        }
        clear_sinks();
        set_max_level(Level::Info);
        let evs = cap.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].message, "unit_span");
        assert!(evs[0].elapsed_ms.is_some());
        assert_eq!(evs[0].fields.len(), 2);
        // The span duration also landed in the metrics registry.
        let snap = crate::metrics::global()
            .histogram("span.unit_span_ms")
            .snapshot();
        assert!(snap.count >= 1);
    }

    #[test]
    fn event_json_has_stable_schema() {
        let e = Event {
            level: Level::Info,
            target: "train.epoch",
            message: "epoch done".into(),
            fields: vec![
                ("epoch", FieldValue::U64(3)),
                ("loss", FieldValue::F64(0.5)),
            ],
            elapsed_ms: Some(12.5),
            ts_ms: 1700000000000,
        };
        assert_eq!(
            e.to_json(),
            r#"{"type":"event","ts_ms":1700000000000,"level":"info","target":"train.epoch","msg":"epoch done","fields":{"epoch":3,"loss":0.5},"elapsed_ms":12.5}"#
        );
    }
}
