//! Training-health observatory: numerics tripwires, per-domain gradient
//! diagnostics, and the `adaptraj-health/v1` record stream consumed by
//! the `doctor` CLI.
//!
//! Three layers:
//!
//! - **Numerics tripwires.** The tape in `adaptraj-tensor` probes every
//!   recorded value through [`check_tensor`], next to the profiler's
//!   `record_op` choke point. A disabled observatory costs one relaxed
//!   atomic load per op (same pattern as [`crate::profile`]). When
//!   enabled, the probe scans the result buffer for NaN/Inf/exploding
//!   magnitudes and records an [`Incident`] carrying the op kind, the
//!   profiler phase path, and the training window/epoch context set via
//!   [`window_scope`]. The configured [`Policy`] decides what happens
//!   next: `warn` logs, `skip-window` drops the window's gradient
//!   contribution, `halt-and-dump` stops training and writes a
//!   diagnostic bundle ([`write_bundle`]).
//! - **Per-domain gradient diagnostics.** Training loops call
//!   [`record_epoch`] with per-source-domain gradient norms, pairwise
//!   cosine similarities (the negative-transfer signal), and
//!   per-parameter-group update-to-weight ratios. Each value is mirrored
//!   into the metrics registry (`health.grad_norm.<domain>`,
//!   `health.grad_cosine.<a>__<b>`, `health.update_ratio.<group>`) so it
//!   shows up on `GET /metrics`.
//! - **Record stream.** Incidents and epoch diagnostics accumulate in a
//!   process-global, deterministically ordered record list. Worker
//!   threads buffer incidents thread-locally ([`take_thread_records`]);
//!   the executor ships them back with each job result and the
//!   dispatcher absorbs them in item order ([`absorb_records`]), so the
//!   record sequence is bit-identical for any worker count.
//!
//! Capture is observation-only at the default `warn` policy: nothing in
//! the numeric path changes, goldens stay bit-identical, and the
//! determinism suite is unaffected.

use crate::json::{Arr, Obj, Value};
use crate::metrics::global;
use std::cell::{Cell, RefCell};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Schema tag of the health JSONL stream (`--health-out`) header line.
pub const HEALTH_SCHEMA: &str = "adaptraj-health/v1";
/// Schema tag of the `bundle.json` index written by [`write_bundle`].
pub const BUNDLE_SCHEMA: &str = "adaptraj-health-bundle/v1";

static ENABLED: AtomicBool = AtomicBool::new(false);
static POLICY: AtomicU8 = AtomicU8::new(0);
/// Explosion threshold as `f32` bits; 0 means "use the default" (1e6).
static EXPLODE_BITS: AtomicU32 = AtomicU32::new(0);
static HALT: AtomicBool = AtomicBool::new(false);

/// Turns the health observatory on or off. While off, every probe and
/// scope helper early-returns after a single relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether health capture is currently on.
#[inline]
pub fn health_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Alias used by the tape's debug assertion: when the tripwire is armed
/// it supersedes the hard `all_finite` debug assert so non-finite values
/// are *observed* (and policed by the configured policy) rather than
/// aborting the process.
#[inline]
pub fn tripwire_enabled() -> bool {
    health_enabled()
}

/// What to do when a tripwire fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Log the incident and keep training (observation-only; default).
    #[default]
    Warn,
    /// Drop the offending window's gradient contribution.
    SkipWindow,
    /// Stop training and write a diagnostic bundle.
    HaltAndDump,
}

impl Policy {
    pub fn parse(s: &str) -> Result<Policy, String> {
        match s {
            "warn" => Ok(Policy::Warn),
            "skip-window" => Ok(Policy::SkipWindow),
            "halt-and-dump" => Ok(Policy::HaltAndDump),
            other => Err(format!(
                "unknown health policy '{other}' (expected warn | skip-window | halt-and-dump)"
            )),
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Policy::Warn => "warn",
            Policy::SkipWindow => "skip-window",
            Policy::HaltAndDump => "halt-and-dump",
        }
    }
}

/// Sets the tripwire policy (default [`Policy::Warn`]).
pub fn set_policy(p: Policy) {
    POLICY.store(p as u8, Ordering::Relaxed);
}

/// The currently configured tripwire policy.
pub fn policy() -> Policy {
    match POLICY.load(Ordering::Relaxed) {
        1 => Policy::SkipWindow,
        2 => Policy::HaltAndDump,
        _ => Policy::Warn,
    }
}

/// Sets the |x| threshold above which a finite value counts as
/// exploding. Non-positive values restore the default (1e6).
pub fn set_explode_threshold(t: f32) {
    let bits = if t > 0.0 { t.to_bits() } else { 0 };
    EXPLODE_BITS.store(bits, Ordering::Relaxed);
}

/// The current explosion threshold.
pub fn explode_threshold() -> f32 {
    match EXPLODE_BITS.load(Ordering::Relaxed) {
        0 => 1.0e6,
        bits => f32::from_bits(bits),
    }
}

/// True once a `halt-and-dump` tripwire has fired; training loops poll
/// this between batches and stop early.
pub fn halt_requested() -> bool {
    HALT.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// NaN injection (test/CI hook)
// ---------------------------------------------------------------------------

/// `i64::MIN` = env not parsed yet, `-1` = injection off, `>= 0` =
/// zero-based index of the op whose output gets poisoned.
const INJ_UNPARSED: i64 = i64::MIN;
const INJ_OFF: i64 = -1;
static INJECT_TARGET: AtomicI64 = AtomicI64::new(INJ_UNPARSED);
static INJECT_COUNTER: AtomicU64 = AtomicU64::new(0);
/// Window-targeted injection: `(epoch << 32) | window`, `u64::MAX` = off.
const INJ_WINDOW_OFF: u64 = u64::MAX;
static INJECT_WINDOW: AtomicU64 = AtomicU64::new(INJ_WINDOW_OFF);

fn inject_target() -> i64 {
    let t = INJECT_TARGET.load(Ordering::Relaxed);
    if t != INJ_UNPARSED {
        return t;
    }
    // `N` poisons the N-th probed op (process-global counter —
    // deterministic only for a single worker thread); `E:W` poisons
    // every op of window W in epoch E (deterministic for any worker
    // count, since window contexts are thread-local and seeded by
    // batch position).
    let raw = std::env::var("ADAPTRAJ_HEALTH_INJECT_NAN").unwrap_or_default();
    let parsed = if let Some((e, w)) = raw.split_once(':') {
        if let (Ok(e), Ok(w)) = (e.parse::<u32>(), w.parse::<u32>()) {
            INJECT_WINDOW.store(((e as u64) << 32) | w as u64, Ordering::Relaxed);
        }
        INJ_OFF
    } else {
        raw.parse::<u64>().map(|n| n as i64).unwrap_or(INJ_OFF)
    };
    INJECT_TARGET.store(parsed, Ordering::Relaxed);
    parsed
}

/// Programmatic override for `ADAPTRAJ_HEALTH_INJECT_NAN` (tests). Also
/// rewinds the op counter.
pub fn set_inject_nan(target: Option<u64>) {
    INJECT_TARGET.store(
        target.map(|n| n as i64).unwrap_or(INJ_OFF),
        Ordering::Relaxed,
    );
    INJECT_COUNTER.store(0, Ordering::Relaxed);
}

/// Programmatic override for window-targeted injection (the `E:W` form
/// of `ADAPTRAJ_HEALTH_INJECT_NAN`): every op inside window `w` of
/// epoch `e` gets poisoned — worker-count-deterministic, unlike the
/// op-index form.
pub fn set_inject_window(target: Option<(u32, u32)>) {
    INJECT_WINDOW.store(
        target
            .map(|(e, w)| ((e as u64) << 32) | w as u64)
            .unwrap_or(INJ_WINDOW_OFF),
        Ordering::Relaxed,
    );
    // Pin the op-index mode to a definite state so the env var is not
    // re-parsed over this override.
    if INJECT_TARGET.load(Ordering::Relaxed) == INJ_UNPARSED {
        INJECT_TARGET.store(INJ_OFF, Ordering::Relaxed);
    }
}

/// True when the tape should poison the current op's output with a NaN
/// so the tripwire→policy→doctor path can be exercised end to end on a
/// healthy model. Two trigger modes (see `ADAPTRAJ_HEALTH_INJECT_NAN`):
/// the N-th probed op (fires exactly once), or every op of one
/// `(epoch, window)` context.
#[inline]
pub fn should_inject() -> bool {
    if !health_enabled() {
        return false;
    }
    let t = inject_target();
    let wt = INJECT_WINDOW.load(Ordering::Relaxed);
    if wt != INJ_WINDOW_OFF {
        let ctx = CTX.with(|c| c.get());
        let (te, tw) = (wt >> 32, wt & 0xFFFF_FFFF);
        // Under batched execution a job covers several windows; the
        // injection fires when the target window is any of them, so the
        // `E:W` form stays deterministic regardless of job formation.
        let hit = ctx.epoch == te
            && BATCH_IDS.with(|b| {
                let ids = b.borrow();
                if ids.is_empty() {
                    ctx.window == tw
                } else {
                    ids.contains(&tw)
                }
            });
        if hit {
            return true;
        }
    }
    if t < 0 {
        return false;
    }
    INJECT_COUNTER.fetch_add(1, Ordering::Relaxed) == t as u64
}

// ---------------------------------------------------------------------------
// Window context + tripwire probe
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Ctx {
    epoch: u64,
    window: u64,
}

thread_local! {
    static CTX: Cell<Ctx> = const { Cell::new(Ctx { epoch: 0, window: 0 }) };
    static BATCH_IDS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static TRIPPED: Cell<bool> = const { Cell::new(false) };
    static PENDING: RefCell<Vec<HealthRecord>> = const { RefCell::new(Vec::new()) };
}

/// Scope guard tagging incidents recorded on this thread with the
/// training epoch and window index. Inert (one atomic load) while the
/// observatory is disabled.
#[must_use = "the window context ends when the guard drops"]
#[derive(Debug)]
pub struct WindowScope {
    entered: bool,
    prev: Ctx,
    prev_ids: Vec<u64>,
}

/// Enters a window context: subsequent tripwire incidents on this thread
/// attribute to `(epoch, window)`, and the per-window tripped flag is
/// cleared so [`should_skip_window`] reflects only this window. The
/// batch-of-one form of [`batch_scope`].
pub fn window_scope(epoch: u64, window: u64) -> WindowScope {
    batch_scope(epoch, std::slice::from_ref(&window))
}

/// Enters a batch context covering all windows of one job: tripwire
/// incidents on this thread attribute to `(epoch, ids[0])` — the job's
/// first window in batch order — and window-targeted NaN injection
/// (`E:W`) fires when window `W` is *any* window of the job, keeping the
/// injection deterministic under batched execution. The tripped flag is
/// per job: under the `skip-window` policy a tripped job drops the
/// gradient contribution of all its windows.
pub fn batch_scope(epoch: u64, ids: &[u64]) -> WindowScope {
    if !health_enabled() {
        return WindowScope {
            entered: false,
            prev: Ctx {
                epoch: 0,
                window: 0,
            },
            prev_ids: Vec::new(),
        };
    }
    let window = ids.first().copied().unwrap_or(0);
    let prev = CTX.with(|c| c.replace(Ctx { epoch, window }));
    let prev_ids = BATCH_IDS.with(|b| std::mem::replace(&mut *b.borrow_mut(), ids.to_vec()));
    TRIPPED.with(|t| t.set(false));
    WindowScope {
        entered: true,
        prev,
        prev_ids,
    }
}

impl Drop for WindowScope {
    fn drop(&mut self) {
        if self.entered {
            CTX.with(|c| c.set(self.prev));
            BATCH_IDS.with(|b| *b.borrow_mut() = std::mem::take(&mut self.prev_ids));
        }
    }
}

/// Whether the current window (or any window of the current job's batch)
/// tripped a wire under the `skip-window` policy; training loops drop the
/// job's gradient contribution when true. Read before the
/// [`WindowScope`] guard drops.
pub fn should_skip_window() -> bool {
    health_enabled() && policy() == Policy::SkipWindow && TRIPPED.with(|t| t.get())
}

/// Kind of numerics fault a tripwire detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Nan,
    Inf,
    Exploding,
}

impl FaultKind {
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Nan => "nan",
            FaultKind::Inf => "inf",
            FaultKind::Exploding => "exploding",
        }
    }
}

/// Summary statistics of the offending tensor buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorStats {
    pub len: u64,
    pub nan_count: u64,
    pub inf_count: u64,
    /// Largest finite |x| in the buffer.
    pub max_abs: f64,
    /// Mean of finite |x| in the buffer.
    pub mean_abs: f64,
}

/// One tripwire firing, attributed to an op kind, a profiler phase path,
/// and the training window/epoch it occurred in.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    pub epoch: u64,
    pub window: u64,
    pub op: String,
    /// Full `/`-joined profiler phase path; empty when recorded outside
    /// any phase (or with the profiler disabled).
    pub phase: String,
    pub fault: FaultKind,
    pub stats: TensorStats,
}

impl Incident {
    pub fn to_json(&self) -> String {
        Obj::new()
            .str("type", "incident")
            .u64("epoch", self.epoch)
            .u64("window", self.window)
            .str("op", &self.op)
            .str("phase", &self.phase)
            .str("fault", self.fault.as_str())
            .u64("len", self.stats.len)
            .u64("nan_count", self.stats.nan_count)
            .u64("inf_count", self.stats.inf_count)
            .f64("max_abs", self.stats.max_abs)
            .f64("mean_abs", self.stats.mean_abs)
            .finish()
    }
}

/// The tape-level probe: scans an op's freshly produced value buffer and
/// records an [`Incident`] when it contains NaN/Inf or a finite value
/// beyond the explosion threshold. One relaxed atomic load when the
/// observatory is disabled.
#[inline]
pub fn check_tensor(kind: &'static str, data: &[f32]) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    scan_tensor(kind, data);
}

fn scan_tensor(kind: &'static str, data: &[f32]) {
    let mut nan = 0u64;
    let mut inf = 0u64;
    let mut max_abs = 0f32;
    let mut sum_abs = 0f64;
    let mut finite = 0u64;
    for &x in data {
        if x.is_nan() {
            nan += 1;
        } else if x.is_infinite() {
            inf += 1;
        } else {
            let a = x.abs();
            if a > max_abs {
                max_abs = a;
            }
            sum_abs += a as f64;
            finite += 1;
        }
    }
    let fault = if nan > 0 {
        FaultKind::Nan
    } else if inf > 0 {
        FaultKind::Inf
    } else if max_abs > explode_threshold() {
        FaultKind::Exploding
    } else {
        return;
    };
    trip(
        kind,
        fault,
        TensorStats {
            len: data.len() as u64,
            nan_count: nan,
            inf_count: inf,
            max_abs: max_abs as f64,
            mean_abs: if finite > 0 {
                sum_abs / finite as f64
            } else {
                0.0
            },
        },
    );
}

fn trip(kind: &'static str, fault: FaultKind, stats: TensorStats) {
    // Only the first fault per window is recorded: once a NaN appears it
    // propagates through every downstream op, and the diagnosis wants
    // the *first* unhealthy op, not the flood.
    let first = TRIPPED.with(|t| !t.replace(true));
    if policy() == Policy::HaltAndDump {
        HALT.store(true, Ordering::Relaxed);
    }
    if !first {
        return;
    }
    let ctx = CTX.with(|c| c.get());
    let incident = Incident {
        epoch: ctx.epoch,
        window: ctx.window,
        op: kind.to_string(),
        phase: crate::profile::current_path().unwrap_or_default(),
        fault,
        stats,
    };
    PENDING.with(|p| p.borrow_mut().push(HealthRecord::Incident(incident)));
}

// ---------------------------------------------------------------------------
// Per-domain gradient diagnostics
// ---------------------------------------------------------------------------

/// Per-source-domain gradient L2 norm for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainNorm {
    pub domain: String,
    pub grad_norm: f64,
}

/// Cosine similarity between two source domains' accumulated gradients.
/// Negative values are the negative-transfer signal AdapTraj targets.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainCosine {
    pub a: String,
    pub b: String,
    pub cosine: f64,
}

/// Update-to-weight ratio `‖Δw‖ / ‖w‖` for one parameter group over the
/// epoch's final optimizer step.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRatio {
    pub group: String,
    pub ratio: f64,
}

/// One epoch's gradient diagnostics, emitted by the training loops.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochHealth {
    pub epoch: u64,
    /// Schedule phase label ("step1".."step3" for AdapTraj, the trainer
    /// phase otherwise).
    pub phase: String,
    pub domains: Vec<DomainNorm>,
    pub cosines: Vec<DomainCosine>,
    pub update_ratios: Vec<GroupRatio>,
}

impl EpochHealth {
    pub fn to_json(&self) -> String {
        let mut domains = Arr::new();
        for d in &self.domains {
            domains = domains.push_raw(
                &Obj::new()
                    .str("domain", &d.domain)
                    .f64("grad_norm", d.grad_norm)
                    .finish(),
            );
        }
        let mut cosines = Arr::new();
        for c in &self.cosines {
            cosines = cosines.push_raw(
                &Obj::new()
                    .str("a", &c.a)
                    .str("b", &c.b)
                    .f64("cosine", c.cosine)
                    .finish(),
            );
        }
        let mut ratios = Arr::new();
        for r in &self.update_ratios {
            ratios = ratios.push_raw(
                &Obj::new()
                    .str("group", &r.group)
                    .f64("ratio", r.ratio)
                    .finish(),
            );
        }
        Obj::new()
            .str("type", "epoch")
            .u64("epoch", self.epoch)
            .str("phase", &self.phase)
            .raw("domains", &domains.finish())
            .raw("cosines", &cosines.finish())
            .raw("update_ratios", &ratios.finish())
            .finish()
    }
}

/// One line of the `adaptraj-health/v1` stream.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthRecord {
    Incident(Incident),
    Epoch(EpochHealth),
}

impl HealthRecord {
    pub fn to_json(&self) -> String {
        match self {
            HealthRecord::Incident(i) => i.to_json(),
            HealthRecord::Epoch(e) => e.to_json(),
        }
    }
}

// ---------------------------------------------------------------------------
// Global record store + deterministic cross-worker merge
// ---------------------------------------------------------------------------

fn store() -> &'static Mutex<Vec<HealthRecord>> {
    static S: OnceLock<Mutex<Vec<HealthRecord>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(Vec::new()))
}

fn store_lock() -> std::sync::MutexGuard<'static, Vec<HealthRecord>> {
    match store().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Drains the records buffered on this thread. The executor calls this
/// at the end of each job and ships the buffer back with the job result
/// so the dispatcher can absorb buffers in item order — the global
/// record sequence is then identical for any worker count. One relaxed
/// atomic load (and no allocation) while disabled.
pub fn take_thread_records() -> Vec<HealthRecord> {
    if !health_enabled() {
        return Vec::new();
    }
    PENDING.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

/// Appends worker-buffered records to the global store (dispatcher side,
/// in item order). Incidents are logged here — not on the worker thread
/// — so warning output is deterministic too.
pub fn absorb_records(records: Vec<HealthRecord>) {
    if records.is_empty() {
        return;
    }
    for r in &records {
        if let HealthRecord::Incident(i) = r {
            global().counter("health.incidents").incr();
            eprintln!(
                "[health] {} in op '{}' (phase '{}', epoch {}, window {}): \
                 {} NaN, {} Inf, max |x| {:.3e} over {} values (policy: {})",
                i.fault.as_str(),
                i.op,
                i.phase,
                i.epoch,
                i.window,
                i.stats.nan_count,
                i.stats.inf_count,
                i.stats.max_abs,
                i.stats.len,
                policy().as_str(),
            );
        }
    }
    store_lock().extend(records);
}

/// Records one epoch's gradient diagnostics: appended to the record
/// stream and mirrored into the metrics registry as gauges
/// (`health.grad_norm.<domain>`, `health.grad_cosine.<a>__<b>`,
/// `health.update_ratio.<group>`).
pub fn record_epoch(e: EpochHealth) {
    if !health_enabled() {
        return;
    }
    let reg = global();
    for d in &e.domains {
        reg.gauge(&format!("health.grad_norm.{}", d.domain))
            .set(d.grad_norm);
    }
    for c in &e.cosines {
        reg.gauge(&format!("health.grad_cosine.{}__{}", c.a, c.b))
            .set(c.cosine);
    }
    for r in &e.update_ratios {
        reg.gauge(&format!("health.update_ratio.{}", r.group))
            .set(r.ratio);
    }
    store_lock().push(HealthRecord::Epoch(e));
}

/// Point-in-time copy of the global record stream.
pub fn records() -> Vec<HealthRecord> {
    store_lock().clone()
}

/// The first recorded incident, if any — the "first unhealthy op".
pub fn first_incident() -> Option<Incident> {
    store_lock().iter().find_map(|r| match r {
        HealthRecord::Incident(i) => Some(i.clone()),
        HealthRecord::Epoch(_) => None,
    })
}

/// Number of incidents recorded so far.
pub fn incident_count() -> usize {
    store_lock()
        .iter()
        .filter(|r| matches!(r, HealthRecord::Incident(_)))
        .count()
}

/// Clears the record store, the halt latch, the injection op counter,
/// and this thread's pending buffer. Policy and threshold are kept.
pub fn reset() {
    store_lock().clear();
    HALT.store(false, Ordering::Relaxed);
    INJECT_COUNTER.store(0, Ordering::Relaxed);
    PENDING.with(|p| p.borrow_mut().clear());
    TRIPPED.with(|t| t.set(false));
    BATCH_IDS.with(|b| b.borrow_mut().clear());
}

// ---------------------------------------------------------------------------
// JSONL stream + diagnostic bundle
// ---------------------------------------------------------------------------

/// Renders records as an `adaptraj-health/v1` JSONL document: a header
/// line with the schema tag and creation timestamp, then one record per
/// line. Everything except the header timestamp is deterministic.
pub fn render_jsonl(records: &[HealthRecord], created_unix: u64) -> String {
    let mut out = Obj::new()
        .str("schema", HEALTH_SCHEMA)
        .u64("created_unix", created_unix)
        .finish();
    out.push('\n');
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Writes the current record stream to `path` as health JSONL.
pub fn write_jsonl(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_jsonl(&records(), now_unix()))
}

/// Writes the `halt-and-dump` diagnostic bundle to `dir`:
///
/// - `bundle.json` — index with the schema tag, the file list, and the
///   offending incident (op, phase, tensor stats) inlined,
/// - `manifest.json` — the run manifest, when the caller has one,
/// - `registry.json` — counters and gauges from the metrics registry,
/// - `health.jsonl` — the last `last_k` health records.
pub fn write_bundle(dir: &Path, manifest_json: Option<&str>, last_k: usize) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let records = records();
    let tail_start = records.len().saturating_sub(last_k);
    std::fs::write(
        dir.join("health.jsonl"),
        render_jsonl(&records[tail_start..], now_unix()),
    )?;
    if let Some(m) = manifest_json {
        std::fs::write(dir.join("manifest.json"), m)?;
    }
    let snap = global().snapshot();
    let mut counters = Obj::new();
    for (name, v) in snap.counters() {
        counters = counters.u64(name, v);
    }
    let mut gauges = Obj::new();
    for (name, v) in snap.gauges() {
        gauges = gauges.f64(name, v);
    }
    std::fs::write(
        dir.join("registry.json"),
        Obj::new()
            .raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .finish(),
    )?;
    let mut files = Arr::new()
        .push_str("health.jsonl")
        .push_str("registry.json");
    if manifest_json.is_some() {
        files = files.push_str("manifest.json");
    }
    let mut bundle = Obj::new()
        .str("schema", BUNDLE_SCHEMA)
        .u64("created_unix", now_unix())
        .str("policy", policy().as_str())
        .raw("files", &files.finish())
        .u64("records", records.len() as u64)
        .u64("incidents", incident_count() as u64);
    if let Some(i) = first_incident() {
        bundle = bundle.raw("first_incident", &i.to_json());
    }
    let mut f = std::fs::File::create(dir.join("bundle.json"))?;
    f.write_all(bundle.finish().as_bytes())
}

/// Parses one health JSONL line back into a [`HealthRecord`]. Header
/// lines (and unknown record types) return `None`.
pub fn parse_record(v: &Value) -> Option<HealthRecord> {
    match v.get("type").and_then(Value::as_str) {
        Some("incident") => Some(HealthRecord::Incident(Incident {
            epoch: v.get("epoch").and_then(Value::as_u64).unwrap_or(0),
            window: v.get("window").and_then(Value::as_u64).unwrap_or(0),
            op: v
                .get("op")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            phase: v
                .get("phase")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            fault: match v.get("fault").and_then(Value::as_str) {
                Some("inf") => FaultKind::Inf,
                Some("exploding") => FaultKind::Exploding,
                _ => FaultKind::Nan,
            },
            stats: TensorStats {
                len: v.get("len").and_then(Value::as_u64).unwrap_or(0),
                nan_count: v.get("nan_count").and_then(Value::as_u64).unwrap_or(0),
                inf_count: v.get("inf_count").and_then(Value::as_u64).unwrap_or(0),
                max_abs: v.get("max_abs").and_then(Value::as_f64).unwrap_or(0.0),
                mean_abs: v.get("mean_abs").and_then(Value::as_f64).unwrap_or(0.0),
            },
        })),
        Some("epoch") => {
            let list = |key: &str| -> Vec<Value> {
                v.get(key)
                    .and_then(Value::as_array)
                    .map(|a| a.to_vec())
                    .unwrap_or_default()
            };
            let s = |item: &Value, key: &str| -> String {
                item.get(key)
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string()
            };
            Some(HealthRecord::Epoch(EpochHealth {
                epoch: v.get("epoch").and_then(Value::as_u64).unwrap_or(0),
                phase: v
                    .get("phase")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                domains: list("domains")
                    .iter()
                    .map(|d| DomainNorm {
                        domain: s(d, "domain"),
                        grad_norm: d.get("grad_norm").and_then(Value::as_f64).unwrap_or(0.0),
                    })
                    .collect(),
                cosines: list("cosines")
                    .iter()
                    .map(|c| DomainCosine {
                        a: s(c, "a"),
                        b: s(c, "b"),
                        cosine: c.get("cosine").and_then(Value::as_f64).unwrap_or(0.0),
                    })
                    .collect(),
                update_ratios: list("update_ratios")
                    .iter()
                    .map(|r| GroupRatio {
                        group: s(r, "group"),
                        ratio: r.get("ratio").and_then(Value::as_f64).unwrap_or(0.0),
                    })
                    .collect(),
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The observatory is process-global; tests that flip the enable bit
    /// serialize on this lock so they cannot clobber each other.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        match L.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn fresh() {
        set_enabled(true);
        set_policy(Policy::Warn);
        set_explode_threshold(0.0);
        set_inject_nan(None);
        reset();
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let _g = test_lock();
        set_enabled(false);
        reset();
        check_tensor("matmul", &[f32::NAN, 1.0]);
        absorb_records(take_thread_records());
        assert!(records().is_empty());
        assert!(!should_skip_window());
    }

    #[test]
    fn probe_classifies_nan_inf_and_exploding() {
        let _g = test_lock();
        fresh();
        {
            let _w = window_scope(2, 7);
            check_tensor("tanh", &[0.5, f32::NAN, f32::INFINITY, -3.0]);
        }
        absorb_records(take_thread_records());
        let first = first_incident().expect("incident recorded");
        assert_eq!(first.fault, FaultKind::Nan);
        assert_eq!(first.op, "tanh");
        assert_eq!((first.epoch, first.window), (2, 7));
        assert_eq!(first.stats.nan_count, 1);
        assert_eq!(first.stats.inf_count, 1);
        assert_eq!(first.stats.len, 4);
        assert_eq!(first.stats.max_abs, 3.0);

        reset();
        {
            let _w = window_scope(0, 0);
            check_tensor("exp", &[1.0, f32::INFINITY]);
        }
        absorb_records(take_thread_records());
        assert_eq!(first_incident().unwrap().fault, FaultKind::Inf);

        reset();
        set_explode_threshold(10.0);
        {
            let _w = window_scope(0, 0);
            check_tensor("matmul", &[11.0, 1.0]);
        }
        absorb_records(take_thread_records());
        assert_eq!(first_incident().unwrap().fault, FaultKind::Exploding);
        set_explode_threshold(0.0);
        set_enabled(false);
        reset();
    }

    #[test]
    fn only_first_fault_per_window_is_recorded() {
        let _g = test_lock();
        fresh();
        {
            let _w = window_scope(1, 1);
            check_tensor("a", &[f32::NAN]);
            check_tensor("b", &[f32::NAN]);
        }
        {
            let _w = window_scope(1, 2);
            check_tensor("c", &[f32::NAN]);
        }
        absorb_records(take_thread_records());
        assert_eq!(incident_count(), 2);
        assert_eq!(first_incident().unwrap().op, "a");
        set_enabled(false);
        reset();
    }

    #[test]
    fn skip_window_policy_flags_only_tripped_windows() {
        let _g = test_lock();
        fresh();
        set_policy(Policy::SkipWindow);
        {
            let _w = window_scope(0, 0);
            check_tensor("mul", &[1.0, 2.0]);
            assert!(!should_skip_window());
            check_tensor("mul", &[f32::NAN]);
            assert!(should_skip_window());
        }
        {
            let _w = window_scope(0, 1);
            assert!(!should_skip_window(), "tripped flag cleared per window");
        }
        set_policy(Policy::Warn);
        set_enabled(false);
        reset();
    }

    #[test]
    fn halt_and_dump_latches_and_bundle_loads() {
        let _g = test_lock();
        fresh();
        set_policy(Policy::HaltAndDump);
        assert!(!halt_requested());
        {
            let _w = window_scope(3, 9);
            check_tensor("sub", &[f32::NAN]);
        }
        absorb_records(take_thread_records());
        assert!(halt_requested());

        let dir = std::env::temp_dir().join(format!("adaptraj-bundle-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_bundle(&dir, Some(r#"{"schema":"adaptraj-run-manifest/v1"}"#), 16).unwrap();
        let bundle =
            Value::parse(&std::fs::read_to_string(dir.join("bundle.json")).unwrap()).unwrap();
        assert_eq!(
            bundle.get("schema").and_then(Value::as_str),
            Some(BUNDLE_SCHEMA)
        );
        assert_eq!(
            bundle
                .get("first_incident")
                .and_then(|i| i.get("op"))
                .and_then(Value::as_str),
            Some("sub")
        );
        let jsonl = std::fs::read_to_string(dir.join("health.jsonl")).unwrap();
        let mut lines = jsonl.lines();
        let header = Value::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema").and_then(Value::as_str),
            Some(HEALTH_SCHEMA)
        );
        assert!(dir.join("registry.json").exists());
        assert!(dir.join("manifest.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
        set_policy(Policy::Warn);
        set_enabled(false);
        reset();
    }

    #[test]
    fn epoch_records_round_trip_and_set_gauges() {
        let _g = test_lock();
        fresh();
        record_epoch(EpochHealth {
            epoch: 4,
            phase: "step2".into(),
            domains: vec![
                DomainNorm {
                    domain: "eth_ucy".into(),
                    grad_norm: 1.25,
                },
                DomainNorm {
                    domain: "l_cas".into(),
                    grad_norm: 0.5,
                },
            ],
            cosines: vec![DomainCosine {
                a: "eth_ucy".into(),
                b: "l_cas".into(),
                cosine: -0.25,
            }],
            update_ratios: vec![GroupRatio {
                group: "backbone".into(),
                ratio: 1e-3,
            }],
        });
        let recs = records();
        assert_eq!(recs.len(), 1);
        let line = recs[0].to_json();
        let parsed = parse_record(&Value::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, recs[0]);
        let snap = global().snapshot();
        assert_eq!(snap.gauge("health.grad_norm.eth_ucy"), Some(1.25));
        assert_eq!(snap.gauge("health.grad_cosine.eth_ucy__l_cas"), Some(-0.25));
        assert_eq!(snap.gauge("health.update_ratio.backbone"), Some(1e-3));
        set_enabled(false);
        reset();
    }

    #[test]
    fn worker_records_merge_in_absorb_order() {
        let _g = test_lock();
        fresh();
        let bufs: Vec<Vec<HealthRecord>> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let _w = window_scope(0, i);
                    check_tensor("matmul", &[f32::NAN]);
                    take_thread_records()
                })
                .join()
                .unwrap()
            })
            .collect();
        for b in bufs {
            absorb_records(b);
        }
        let windows: Vec<u64> = records()
            .iter()
            .filter_map(|r| match r {
                HealthRecord::Incident(i) => Some(i.window),
                _ => None,
            })
            .collect();
        assert_eq!(windows, [0, 1, 2]);
        set_enabled(false);
        reset();
    }

    #[test]
    fn injection_counter_fires_once_at_target() {
        let _g = test_lock();
        fresh();
        set_inject_nan(Some(2));
        assert!(!should_inject());
        assert!(!should_inject());
        assert!(should_inject());
        assert!(!should_inject());
        set_inject_nan(None);
        assert!(!should_inject());
        set_enabled(false);
        reset();
    }

    #[test]
    fn batch_scope_matches_injection_on_any_window_of_the_job() {
        let _g = test_lock();
        fresh();
        set_inject_window(Some((3, 7)));
        {
            let _b = batch_scope(3, &[5, 7, 9]);
            assert!(should_inject(), "target window 7 is in the job");
        }
        {
            let _b = batch_scope(3, &[5, 6, 9]);
            assert!(!should_inject(), "target window 7 is not in the job");
        }
        {
            let _b = batch_scope(2, &[7]);
            assert!(!should_inject(), "epoch must match too");
        }
        // The batch-of-one form behaves like the historical window scope.
        {
            let _w = window_scope(3, 7);
            assert!(should_inject());
        }
        set_inject_window(None);
        set_enabled(false);
        reset();
    }

    #[test]
    fn batch_scope_attributes_incidents_to_the_first_window() {
        let _g = test_lock();
        fresh();
        {
            let _b = batch_scope(4, &[11, 12, 13]);
            check_tensor("gemm", &[f32::NAN]);
        }
        absorb_records(take_thread_records());
        let recs = records();
        let inc = recs
            .iter()
            .find_map(|r| match r {
                HealthRecord::Incident(i) => Some(i.clone()),
                _ => None,
            })
            .expect("one incident recorded");
        assert_eq!(inc.epoch, 4);
        assert_eq!(
            inc.window, 11,
            "incidents attribute to the job's first window"
        );
        set_enabled(false);
        reset();
    }

    #[test]
    fn policy_parses_all_variants() {
        assert_eq!(Policy::parse("warn"), Ok(Policy::Warn));
        assert_eq!(Policy::parse("skip-window"), Ok(Policy::SkipWindow));
        assert_eq!(Policy::parse("halt-and-dump"), Ok(Policy::HaltAndDump));
        assert!(Policy::parse("explode").is_err());
    }

    #[test]
    fn jsonl_render_is_deterministic_modulo_header() {
        let _g = test_lock();
        fresh();
        {
            let _w = window_scope(0, 5);
            check_tensor("relu", &[f32::NAN]);
        }
        absorb_records(take_thread_records());
        let recs = records();
        let a = render_jsonl(&recs, 0);
        let b = render_jsonl(&recs, 0);
        assert_eq!(a, b);
        assert!(a.starts_with(r#"{"schema":"adaptraj-health/v1""#));
        set_enabled(false);
        reset();
    }
}
