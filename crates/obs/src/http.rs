//! Minimal, robust HTTP/1.1 request handling shared by every listener in
//! the workspace: the telemetry endpoint ([`crate::serve::TelemetryServer`])
//! and the inference service (`adaptraj-serve`).
//!
//! The workspace is registry-free, so this is a hand-rolled reader — but a
//! *bounded* one: every way an untrusted peer can misbehave maps to a
//! typed [`HttpError`] instead of a panic or an unbounded read:
//!
//! * header section or declared body over the configured limits →
//!   [`HttpError::PayloadTooLarge`] (`413`),
//! * malformed request line / headers / `Content-Length` →
//!   [`HttpError::BadRequest`] (`400`),
//! * a peer that stalls mid-request (slow-loris style) →
//!   [`HttpError::Timeout`] (`408`) once the per-request read deadline
//!   lapses,
//! * a peer that connects and closes without sending a full request →
//!   [`HttpError::Disconnected`] (no response owed).
//!
//! Responses are always `Connection: close`; one request per connection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Per-request resource limits for [`read_request`].
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Cap on the request line + header section, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the declared (and read) request body, in bytes.
    pub max_body_bytes: usize,
    /// Wall-clock budget for reading the complete request; a peer that
    /// has not delivered a full request by then gets `408`.
    pub read_deadline: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            read_deadline: Duration::from_secs(2),
        }
    }
}

/// One parsed request: method, path, and the (possibly empty) body.
/// Headers are consumed during parsing; only `Content-Length` affects
/// behavior, so they are not retained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Everything that can go wrong reading a request, mapped to the status
/// code the caller should answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// `400` — syntactically broken request line, headers, or length.
    BadRequest(String),
    /// `413` — header section or declared body exceeds the limits.
    PayloadTooLarge,
    /// `408` — the read deadline lapsed before a complete request.
    Timeout,
    /// The peer closed (or reset) before sending a complete request; no
    /// response can be delivered, just drop the connection.
    Disconnected,
}

impl HttpError {
    /// The HTTP status line this error maps to (`Disconnected` has none).
    pub fn status(&self) -> &'static str {
        match self {
            HttpError::BadRequest(_) => "400 Bad Request",
            HttpError::PayloadTooLarge => "413 Payload Too Large",
            HttpError::Timeout => "408 Request Timeout",
            HttpError::Disconnected => "000 Disconnected",
        }
    }

    /// Short machine-readable error code for JSON error bodies.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::BadRequest(_) => "bad_request",
            HttpError::PayloadTooLarge => "payload_too_large",
            HttpError::Timeout => "deadline_exceeded",
            HttpError::Disconnected => "disconnected",
        }
    }

    /// Human-readable detail line.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(msg) => msg.clone(),
            HttpError::PayloadTooLarge => "request exceeds configured size limits".to_string(),
            HttpError::Timeout => "request not received within the read deadline".to_string(),
            HttpError::Disconnected => "peer disconnected".to_string(),
        }
    }
}

/// Reads from `stream` until `pred` says the buffer is complete, `cap`
/// bytes arrive, the deadline lapses, or the peer closes. Returns whether
/// the predicate was satisfied.
fn read_until(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    cap: usize,
    deadline: Instant,
    mut done: impl FnMut(&[u8]) -> bool,
) -> Result<(), HttpError> {
    let mut chunk = [0u8; 4096];
    loop {
        if done(buf) {
            return Ok(());
        }
        if buf.len() > cap {
            return Err(HttpError::PayloadTooLarge);
        }
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(HttpError::Timeout)?;
        // A zero timeout would mean "block forever"; clamp up.
        let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Peer closed. A clean close before any bytes is the
                // wake-up/probe pattern; mid-request it is still a
                // disconnect — either way no response is owed.
                return Err(HttpError::Disconnected);
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Timeout);
            }
            Err(_) => return Err(HttpError::Disconnected),
        }
    }
}

/// Position one past the end of the `\r\n\r\n` header terminator, if
/// present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads and parses one complete HTTP/1.1 request within `limits`.
pub fn read_request(stream: &mut TcpStream, limits: &HttpLimits) -> Result<Request, HttpError> {
    let deadline = Instant::now() + limits.read_deadline;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    read_until(stream, &mut buf, limits.max_head_bytes, deadline, |b| {
        head_end(b).is_some()
    })?;
    let head_len = head_end(&buf).expect("read_until returned without terminator");
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| HttpError::BadRequest("header section is not valid UTF-8".into()))?
        .to_string();

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?;
    let path = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no HTTP version".into()))?;
    if !version.starts_with("HTTP/") {
        return Err(HttpError::BadRequest(format!(
            "bad HTTP version '{version}'"
        )));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header '{line}'")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::BadRequest("bad Content-Length".into()))?;
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge);
    }

    let want = head_len + content_length;
    read_until(stream, &mut buf, want, deadline, |b| b.len() >= want)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body: buf[head_len..want].to_vec(),
    })
}

/// Writes one `Connection: close` response. Errors are deliberately
/// swallowed: the peer may already be gone, and there is nothing useful
/// to do about a failed error response.
pub fn write_response(stream: &mut TcpStream, status: &str, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// Writes a structured JSON error body:
/// `{"error":{"code":"...","message":"..."}}`.
pub fn write_json_error(stream: &mut TcpStream, status: &str, code: &str, message: &str) {
    let body = crate::json::Obj::new()
        .raw(
            "error",
            &crate::json::Obj::new()
                .str("code", code)
                .str("message", message)
                .finish(),
        )
        .finish();
    write_response(
        stream,
        status,
        "application/json; charset=utf-8",
        body.as_bytes(),
    );
}

/// Maps a read failure to its error response (no-op for `Disconnected`).
pub fn write_error(stream: &mut TcpStream, err: &HttpError) {
    if *err == HttpError::Disconnected {
        return;
    }
    write_json_error(stream, err.status(), err.code(), &err.message());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot echo server: accepts a single connection, reads a request
    /// under `limits`, and reports the outcome through the returned
    /// channel while answering the peer.
    fn serve_once(
        limits: HttpLimits,
    ) -> (
        std::net::SocketAddr,
        std::sync::mpsc::Receiver<Result<Request, HttpError>>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let res = read_request(&mut stream, &limits);
            match &res {
                Ok(req) => write_response(&mut stream, "200 OK", "text/plain", &req.body),
                Err(e) => write_error(&mut stream, e),
            }
            let _ = tx.send(res);
        });
        (addr, rx)
    }

    fn roundtrip(raw: &[u8], limits: HttpLimits) -> (Result<Request, HttpError>, String) {
        let (addr, rx) = serve_once(limits);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        (rx.recv().unwrap(), response)
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello";
        let (res, response) = roundtrip(raw, HttpLimits::default());
        let req = res.unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.body, b"hello");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.ends_with("hello"));
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
        let (res, _) = roundtrip(raw, HttpLimits::default());
        let req = res.unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_declared_body_is_413_without_reading_it() {
        let raw = b"POST /v1/predict HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        let (res, response) = roundtrip(raw, HttpLimits::default());
        assert_eq!(res, Err(HttpError::PayloadTooLarge));
        assert!(response.starts_with("HTTP/1.1 413 "), "{response}");
        assert!(response.contains("payload_too_large"), "{response}");
    }

    #[test]
    fn oversized_header_section_is_413() {
        let mut raw = b"GET /x HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 64 * 1024));
        raw.extend_from_slice(b"\r\n\r\n");
        let limits = HttpLimits {
            max_head_bytes: 16 * 1024,
            ..HttpLimits::default()
        };
        let (res, response) = roundtrip(&raw, limits);
        assert_eq!(res, Err(HttpError::PayloadTooLarge));
        assert!(response.starts_with("HTTP/1.1 413 "), "{response}");
    }

    #[test]
    fn garbage_request_line_is_400() {
        let raw = b"garbage\r\n\r\n";
        let (res, response) = roundtrip(raw, HttpLimits::default());
        assert!(matches!(res, Err(HttpError::BadRequest(_))), "{res:?}");
        assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
        // The error body is parseable JSON with a code.
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        let v = crate::json::Value::parse(body).expect("error body parses");
        assert_eq!(
            v.get("error").unwrap().get("code").unwrap().as_str(),
            Some("bad_request")
        );
    }

    #[test]
    fn bad_content_length_is_400() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
        let (res, response) = roundtrip(raw, HttpLimits::default());
        assert!(matches!(res, Err(HttpError::BadRequest(_))), "{res:?}");
        assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    }

    #[test]
    fn stalled_partial_request_times_out_with_408() {
        let limits = HttpLimits {
            read_deadline: Duration::from_millis(120),
            ..HttpLimits::default()
        };
        let (addr, rx) = serve_once(limits);
        let mut stream = TcpStream::connect(addr).unwrap();
        // Half a request line, then silence: the server must answer 408
        // within the deadline rather than hang.
        stream.write_all(b"GET /slow").unwrap();
        let start = Instant::now();
        let res = rx.recv().unwrap();
        assert_eq!(res, Err(HttpError::Timeout));
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "deadline not enforced: {:?}",
            start.elapsed()
        );
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.1 408 "), "{response}");
    }

    #[test]
    fn stalled_body_times_out_with_408() {
        let limits = HttpLimits {
            read_deadline: Duration::from_millis(120),
            ..HttpLimits::default()
        };
        let (addr, rx) = serve_once(limits);
        let mut stream = TcpStream::connect(addr).unwrap();
        // Headers promise 10 bytes; only 3 ever arrive.
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Err(HttpError::Timeout));
    }

    #[test]
    fn immediate_close_is_disconnected_and_gets_no_response() {
        let (addr, rx) = serve_once(HttpLimits::default());
        drop(TcpStream::connect(addr).unwrap());
        assert_eq!(rx.recv().unwrap(), Err(HttpError::Disconnected));
    }
}
