//! Training-run telemetry: per-epoch decomposed losses, gradient and
//! parameter norms per optimizer group, non-finite-loss guards, and
//! wall-clock per phase, assembled into a run-manifest JSON document.
//!
//! The recorder is deliberately passive — training loops push plain
//! structs into it and `RunTelemetry::to_json` serializes the whole run
//! at the end. Nothing here touches the global metrics registry; the
//! manifest is a self-contained artifact (`--manifest run.json`).

use crate::json::{Arr, Obj};
use std::io::Write;
use std::path::Path;

/// Version tag embedded in every manifest so downstream tooling can
/// detect schema drift.
pub const MANIFEST_SCHEMA: &str = "adaptraj-run-manifest/v1";

/// The decomposed training objective for one epoch (means over batches).
///
/// Mirrors the AdapTraj loss: `total = backbone + δ·(α·recon + β·diff +
/// γ·similar) + distill`. Each component is stored *unweighted* so the
/// manifest shows raw magnitudes; the weights live in the config echoed
/// alongside. Components that a phase does not compute (e.g. the ours
/// terms during pure-backbone epochs) are `NaN` and serialize as `null`.
#[derive(Debug, Clone, Copy)]
pub struct LossComponents {
    pub backbone: f64,
    pub recon: f64,
    pub diff: f64,
    pub similar: f64,
    pub distill: f64,
}

impl Default for LossComponents {
    fn default() -> Self {
        LossComponents {
            backbone: f64::NAN,
            recon: f64::NAN,
            diff: f64::NAN,
            similar: f64::NAN,
            distill: f64::NAN,
        }
    }
}

impl LossComponents {
    pub fn to_json(&self) -> String {
        Obj::new()
            .f64("backbone", self.backbone)
            .f64("recon", self.recon)
            .f64("diff", self.diff)
            .f64("similar", self.similar)
            .f64("distill", self.distill)
            .finish()
    }
}

/// Gradient/parameter L2 norms for one optimizer parameter group.
#[derive(Debug, Clone)]
pub struct GroupNorm {
    /// Numeric group id (`GroupId.0` in the tensor crate).
    pub group: u32,
    /// Human-readable label ("backbone", "invariant", ...), supplied by
    /// the layer that knows the group map.
    pub label: String,
    pub grad_norm: f64,
    pub param_norm: f64,
}

impl GroupNorm {
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("group", self.group as u64)
            .str("label", &self.label)
            .f64("grad_norm", self.grad_norm)
            .f64("param_norm", self.param_norm)
            .finish()
    }
}

/// Everything recorded about one training epoch.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    pub epoch: usize,
    /// Training phase this epoch ran under ("train" for single-phase
    /// loops; "step1"/"step2"/"step3" for the AdapTraj schedule).
    pub phase: String,
    /// Mean total loss over finite batches.
    pub loss: f64,
    pub components: LossComponents,
    /// Global (all-group) gradient norm, pre-clipping, averaged over
    /// batches.
    pub grad_norm: f64,
    pub group_norms: Vec<GroupNorm>,
    pub duration_s: f64,
    /// Batches whose loss came back NaN/inf and were skipped.
    pub non_finite_batches: u64,
    /// True on the epoch that triggered patience-based early stopping.
    pub early_stop: bool,
}

impl EpochRecord {
    pub fn new(epoch: usize, phase: &str) -> Self {
        EpochRecord {
            epoch,
            phase: phase.to_string(),
            loss: f64::NAN,
            components: LossComponents::default(),
            grad_norm: f64::NAN,
            group_norms: Vec::new(),
            duration_s: 0.0,
            non_finite_batches: 0,
            early_stop: false,
        }
    }

    pub fn to_json(&self) -> String {
        let mut groups = Arr::new();
        for g in &self.group_norms {
            groups = groups.push_raw(&g.to_json());
        }
        Obj::new()
            .u64("epoch", self.epoch as u64)
            .str("phase", &self.phase)
            .f64("loss", self.loss)
            .raw("components", &self.components.to_json())
            .f64("grad_norm", self.grad_norm)
            .raw("group_norms", &groups.finish())
            .f64("duration_s", self.duration_s)
            .u64("non_finite_batches", self.non_finite_batches)
            .bool("early_stop", self.early_stop)
            .finish()
    }
}

/// Wall-clock for one named phase of the run ("train.step1", "eval", ...).
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    pub phase: String,
    pub duration_s: f64,
}

impl PhaseTiming {
    pub fn new(phase: &str, duration_s: f64) -> Self {
        PhaseTiming {
            phase: phase.to_string(),
            duration_s,
        }
    }

    pub fn to_json(&self) -> String {
        Obj::new()
            .str("phase", &self.phase)
            .f64("duration_s", self.duration_s)
            .finish()
    }
}

/// Final evaluation summary attached to the manifest.
#[derive(Debug, Clone, Copy)]
pub struct EvalSummary {
    pub ade: f64,
    pub fde: f64,
    pub infer_time_s: f64,
    pub num_windows: u64,
}

impl EvalSummary {
    pub fn to_json(&self) -> String {
        Obj::new()
            .f64("ade", self.ade)
            .f64("fde", self.fde)
            .f64("infer_time_s", self.infer_time_s)
            .u64("num_windows", self.num_windows)
            .finish()
    }
}

/// Recorder for a whole training/evaluation run; serializes to the run
/// manifest consumed by `--manifest FILE.json`.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Free-form `(key, value)` pairs echoing the run configuration
    /// (backbone, method, sources, target, seed, ...).
    pub config: Vec<(String, String)>,
    pub epochs: Vec<EpochRecord>,
    pub phases: Vec<PhaseTiming>,
    pub eval: Option<EvalSummary>,
}

impl RunTelemetry {
    pub fn new() -> Self {
        RunTelemetry::default()
    }

    /// Records a config key echoed into the manifest header.
    pub fn config(&mut self, key: &str, value: impl ToString) {
        self.config.push((key.to_string(), value.to_string()));
    }

    pub fn push_epoch(&mut self, rec: EpochRecord) {
        self.epochs.push(rec);
    }

    pub fn push_phase(&mut self, phase: &str, duration_s: f64) {
        self.phases.push(PhaseTiming::new(phase, duration_s));
    }

    /// Appends another run's epochs/phases (used when training is split
    /// across schedule steps that each produce a partial report).
    pub fn absorb(&mut self, other: RunTelemetry) {
        self.epochs.extend(other.epochs);
        self.phases.extend(other.phases);
        if self.eval.is_none() {
            self.eval = other.eval;
        }
    }

    /// Total batches skipped due to non-finite losses across all epochs.
    pub fn non_finite_total(&self) -> u64 {
        self.epochs.iter().map(|e| e.non_finite_batches).sum()
    }

    /// True when early stopping fired at any epoch.
    pub fn early_stopped(&self) -> bool {
        self.epochs.iter().any(|e| e.early_stop)
    }

    pub fn to_json(&self) -> String {
        let mut cfg = Obj::new();
        for (k, v) in &self.config {
            cfg = cfg.str(k, v);
        }
        let mut epochs = Arr::new();
        for e in &self.epochs {
            epochs = epochs.push_raw(&e.to_json());
        }
        let mut phases = Arr::new();
        for p in &self.phases {
            phases = phases.push_raw(&p.to_json());
        }
        let mut obj = Obj::new()
            .str("schema", MANIFEST_SCHEMA)
            .raw("config", &cfg.finish())
            .u64("num_epochs", self.epochs.len() as u64)
            .u64("non_finite_batches_total", self.non_finite_total())
            .bool("early_stopped", self.early_stopped())
            .raw("epochs", &epochs.finish())
            .raw("phases", &phases.finish());
        if let Some(ev) = &self.eval {
            obj = obj.raw("eval", &ev.to_json());
        }
        obj.finish()
    }

    /// Writes the manifest (plus trailing newline) to `path`.
    pub fn write_to_file(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_epoch(i: usize) -> EpochRecord {
        let mut e = EpochRecord::new(i, "step2");
        e.loss = 1.0 / (i + 1) as f64;
        e.components = LossComponents {
            backbone: 0.5,
            recon: 0.2,
            diff: 0.1,
            similar: 0.05,
            distill: f64::NAN,
        };
        e.grad_norm = 3.0;
        e.group_norms.push(GroupNorm {
            group: 1,
            label: "invariant".into(),
            grad_norm: 1.5,
            param_norm: 10.0,
        });
        e.duration_s = 0.25;
        e
    }

    #[test]
    fn manifest_counts_epochs_and_guards() {
        let mut t = RunTelemetry::new();
        t.config("backbone", "pecnet");
        let mut e0 = sample_epoch(0);
        e0.non_finite_batches = 2;
        t.push_epoch(e0);
        let mut e1 = sample_epoch(1);
        e1.early_stop = true;
        t.push_epoch(e1);
        t.push_phase("train.step2", 0.5);
        let j = t.to_json();
        assert!(j.starts_with(&format!(r#"{{"schema":"{MANIFEST_SCHEMA}""#)));
        assert!(j.contains(r#""num_epochs":2"#));
        assert!(j.contains(r#""non_finite_batches_total":2"#));
        assert!(j.contains(r#""early_stopped":true"#));
        assert!(j.contains(r#""backbone":"pecnet""#));
        // NaN distill serializes as null, not NaN.
        assert!(j.contains(r#""distill":null"#));
        assert!(!j.contains("NaN"));
    }

    #[test]
    fn absorb_merges_partial_runs() {
        let mut a = RunTelemetry::new();
        a.push_epoch(sample_epoch(0));
        a.push_phase("train.step1", 0.1);
        let mut b = RunTelemetry::new();
        b.push_epoch(sample_epoch(1));
        b.eval = Some(EvalSummary {
            ade: 0.5,
            fde: 1.0,
            infer_time_s: 0.01,
            num_windows: 8,
        });
        a.absorb(b);
        assert_eq!(a.epochs.len(), 2);
        assert_eq!(a.phases.len(), 1);
        assert!(a.eval.is_some());
        assert!(a.to_json().contains(r#""eval":{"ade":0.5"#));
    }

    #[test]
    fn write_round_trips_through_file() {
        let mut t = RunTelemetry::new();
        t.push_epoch(sample_epoch(0));
        let dir = std::env::temp_dir().join("adaptraj-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        t.write_to_file(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.trim_end(), t.to_json());
        std::fs::remove_file(&path).ok();
    }
}
