//! Execution-timeline flight recorder: typed spans on per-thread event
//! buffers, exported as Chrome trace-event JSON (loadable in Perfetto or
//! `chrome://tracing`) and as folded stacks (flamegraph format) derived
//! from the phase profiler.
//!
//! Where the [`profile`](crate::profile) module answers "how much total
//! time did op/phase X cost", the timeline answers "*when* did each worker
//! do what": every `adaptraj-exec` job records `queue_wait` and `job_run`
//! spans on its worker's lane, the trainer records `grad_reduce` around
//! the serialized gradient-reduction + optimizer-step section, and every
//! profiler phase guard doubles as a timeline span — so the Perfetto view
//! shows one lane per worker with the full nesting of phases inside jobs.
//!
//! Cost model (same contract as the profiler): capture is **off by
//! default**, and a disabled recorder costs a single relaxed atomic load
//! per span site — no clock read, no allocation. When enabled, each span
//! pays two `Instant::now` reads and a push onto its thread's buffer; the
//! buffer mutex is per-thread and only contended by [`snapshot`]/[`reset`],
//! so recording never serializes worker threads against each other.
//! Recording observes wall-clock only — it never touches RNG streams or
//! reduction order, so the bit-identity determinism contract is unaffected.
//!
//! Timestamps are microseconds of monotonic time since the first event of
//! the process (a lazily initialized [`Instant`] epoch), which is exactly
//! the `ts` convention of the Chrome trace-event format.

use crate::json::{Arr, Obj};
use crate::profile::{Dir, ProfileSnapshot};
use std::borrow::Cow;
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns timeline capture on or off. Spans started while disabled are not
/// recorded; enable the recorder before the run you want to trace.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether timeline capture is currently on — one relaxed atomic load.
#[inline]
pub fn timeline_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide monotonic epoch all timeline timestamps count from.
fn epoch() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

/// Microseconds of monotonic time since the process's timeline epoch.
/// Capture a start timestamp with this (e.g. at enqueue) and close the
/// span later with [`record_span_since`].
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// One completed span on a thread's lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Span name (`queue_wait`, `job_run`, `grad_reduce`, or a profiler
    /// phase label).
    pub name: Cow<'static, str>,
    /// Chrome-trace category (`exec`, `train`, `eval`, `phase`).
    pub cat: &'static str,
    /// Start, µs since the timeline epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Optional single numeric argument (e.g. the item index of a job).
    pub arg: Option<(&'static str, u64)>,
}

/// Per-thread event buffer. The mutex exists only so [`snapshot`] and
/// [`reset`] can read/clear from another thread; the owning thread is the
/// only writer, so pushes are uncontended in steady state.
struct ThreadBuf {
    tid: u64,
    name: String,
    events: Mutex<Vec<TimelineEvent>>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static R: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// Lane ids are process-sequential (first thread to record gets 1), so
/// trace lanes stay small and stable within a run.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static BUF: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
}

fn thread_buf() -> Arc<ThreadBuf> {
    BUF.with(|cell| {
        Arc::clone(cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(ThreadBuf {
                tid,
                name,
                events: Mutex::new(Vec::new()),
            });
            registry()
                .lock()
                .expect("timeline registry poisoned")
                .push(Arc::clone(&buf));
            buf
        }))
    })
}

/// Appends a completed event to the calling thread's lane. Guards created
/// while capture was enabled record unconditionally, so spans alive when
/// capture is switched off still complete.
fn record(event: TimelineEvent) {
    let buf = thread_buf();
    buf.events
        .lock()
        .expect("timeline buffer poisoned")
        .push(event);
}

/// Records a span that started at `start_us` (captured with [`now_us`])
/// and ends now — for spans whose start and end happen on different
/// threads, like a job's enqueue→start queue wait.
pub fn record_span_since(
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    arg: Option<(&'static str, u64)>,
) {
    let dur_us = now_us().saturating_sub(start_us);
    record(TimelineEvent {
        name: Cow::Borrowed(name),
        cat,
        start_us,
        dur_us,
        arg,
    });
}

/// Scope guard recording one span on the current thread's lane when it
/// drops. Obtained from [`span`]/[`span_with_arg`]/[`phase_span`], which
/// return `None` while capture is disabled — bind the `Option` itself
/// (`let _s = timeline::span(..)`).
#[must_use = "the span is recorded when the guard drops"]
#[derive(Debug)]
pub struct SpanHandle {
    name: Cow<'static, str>,
    cat: &'static str,
    start_us: u64,
    arg: Option<(&'static str, u64)>,
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        let dur_us = now_us().saturating_sub(self.start_us);
        record(TimelineEvent {
            name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
            cat: self.cat,
            start_us: self.start_us,
            dur_us,
            arg: self.arg,
        });
    }
}

/// Starts a span; `None` (one relaxed load) while capture is disabled.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Option<SpanHandle> {
    timeline_enabled().then(|| SpanHandle {
        name: Cow::Borrowed(name),
        cat,
        start_us: now_us(),
        arg: None,
    })
}

/// Starts a span carrying one numeric argument (e.g. `("item", i)`).
#[inline]
pub fn span_with_arg(
    name: &'static str,
    cat: &'static str,
    arg: (&'static str, u64),
) -> Option<SpanHandle> {
    timeline_enabled().then(|| SpanHandle {
        name: Cow::Borrowed(name),
        cat,
        start_us: now_us(),
        arg: Some(arg),
    })
}

/// Starts a span for a profiler phase label (category `phase`). Called by
/// `profile::phase`/`phase_at` so every profiled phase shows up as a lane
/// span too.
#[inline]
pub fn phase_span(label: &str) -> Option<SpanHandle> {
    timeline_enabled().then(|| SpanHandle {
        name: Cow::Owned(label.to_string()),
        cat: "phase",
        start_us: now_us(),
        arg: None,
    })
}

/// Clears every thread's buffer (thread lanes and their ids survive, like
/// the profiler's interned phase table).
pub fn reset() {
    let reg = registry().lock().expect("timeline registry poisoned");
    for buf in reg.iter() {
        buf.events.lock().expect("timeline buffer poisoned").clear();
    }
}

/// One thread's recorded events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineLane {
    pub tid: u64,
    pub thread_name: String,
    /// Events in completion order (an outer span closes after its inner
    /// spans, so this is not start-sorted; Perfetto sorts on load).
    pub events: Vec<TimelineEvent>,
}

/// Point-in-time copy of every non-empty thread lane, tid-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelineSnapshot {
    pub lanes: Vec<TimelineLane>,
}

/// Copies the current timeline. Lanes with no events are omitted.
pub fn snapshot() -> TimelineSnapshot {
    let reg = registry().lock().expect("timeline registry poisoned");
    let mut lanes: Vec<TimelineLane> = reg
        .iter()
        .map(|b| TimelineLane {
            tid: b.tid,
            thread_name: b.name.clone(),
            events: b.events.lock().expect("timeline buffer poisoned").clone(),
        })
        .filter(|l| !l.events.is_empty())
        .collect();
    lanes.sort_by_key(|l| l.tid);
    TimelineSnapshot { lanes }
}

impl TimelineSnapshot {
    /// Total recorded events across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Multiset of span names (name → occurrence count), merged across
    /// lanes. This is the ordering-invariant view: the same workload run
    /// with different worker counts produces the same counts even though
    /// the per-lane layout differs.
    pub fn span_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for lane in &self.lanes {
            for e in &lane.events {
                *counts.entry(e.name.to_string()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Serializes the timeline as a Chrome trace-event JSON document
    /// (`{"traceEvents":[...]}` with complete `"ph":"X"` events plus
    /// `thread_name` metadata), loadable in Perfetto / `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Arr::new();
        for lane in &self.lanes {
            events = events.push_raw(
                &Obj::new()
                    .str("ph", "M")
                    .str("name", "thread_name")
                    .u64("ts", 0)
                    .u64("pid", 1)
                    .u64("tid", lane.tid)
                    .raw("args", &Obj::new().str("name", &lane.thread_name).finish())
                    .finish(),
            );
        }
        for lane in &self.lanes {
            for e in &lane.events {
                let mut obj = Obj::new()
                    .str("ph", "X")
                    .str("name", &e.name)
                    .str("cat", e.cat)
                    .u64("ts", e.start_us)
                    .u64("dur", e.dur_us)
                    .u64("pid", 1)
                    .u64("tid", lane.tid);
                if let Some((k, v)) = e.arg {
                    obj = obj.raw("args", &Obj::new().u64(k, v).finish());
                }
                events = events.push_raw(&obj.finish());
            }
        }
        Obj::new()
            .raw("traceEvents", &events.finish())
            .str("displayTimeUnit", "ms")
            .finish()
    }
}

/// Renders a [`ProfileSnapshot`] as folded stacks (the flamegraph.pl /
/// inferno input format): one `frame;frame;leaf weight` line per profiler
/// cell, with phase-path segments as frames, `kind.fwd|bwd` as the leaf,
/// and total nanoseconds as the weight.
pub fn folded_stacks(profile: &ProfileSnapshot) -> String {
    let mut out = String::new();
    for e in &profile.entries {
        if e.phase.is_empty() {
            out.push_str("(unattributed)");
        } else {
            out.push_str(&e.phase.replace('/', ";"));
        }
        out.push(';');
        out.push_str(e.kind);
        out.push('.');
        out.push_str(match e.dir {
            Dir::Forward => "fwd",
            Dir::Backward => "bwd",
        });
        out.push(' ');
        out.push_str(&e.total_ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::profile::ProfileEntry;

    /// The recorder is process-global; tests that flip the enable bit or
    /// reset buffers serialize on this lock.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        match L.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_recorder_returns_no_guards_and_records_nothing() {
        let _g = test_lock();
        set_enabled(false);
        reset();
        assert!(span("job_run", "exec").is_none());
        assert!(span_with_arg("job_run", "exec", ("item", 1)).is_none());
        assert!(phase_span("train").is_none());
        assert!(snapshot().is_empty());
    }

    #[test]
    fn spans_record_with_monotonic_nonnegative_durations() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        {
            let _outer = phase_span("tl_outer");
            let _inner = span_with_arg("job_run", "exec", ("item", 3));
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let t0 = now_us();
        record_span_since("queue_wait", "exec", t0, Some(("item", 3)));
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.len(), 3);
        let counts = snap.span_counts();
        assert_eq!(counts.get("tl_outer"), Some(&1));
        assert_eq!(counts.get("job_run"), Some(&1));
        assert_eq!(counts.get("queue_wait"), Some(&1));
        for lane in &snap.lanes {
            for e in &lane.events {
                assert!(e.start_us <= now_us());
            }
        }
        // The inner job_run slept ≥1ms.
        let job = snap.lanes[0]
            .events
            .iter()
            .find(|e| e.name == "job_run")
            .unwrap();
        assert!(job.dur_us >= 1_000, "dur {}", job.dur_us);
        assert_eq!(job.arg, Some(("item", 3)));
        reset();
    }

    #[test]
    fn worker_threads_get_their_own_lanes() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        {
            let _main = span("dispatch", "exec");
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    std::thread::Builder::new()
                        .name(format!("tl-worker-{i}"))
                        .spawn(|| {
                            let _s = span("job_run", "exec");
                        })
                        .unwrap()
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.lanes.len(), 3, "{snap:?}");
        assert!(snap
            .lanes
            .iter()
            .any(|l| l.thread_name.starts_with("tl-worker-")));
        reset();
    }

    #[test]
    fn chrome_trace_is_valid_json_with_required_keys() {
        let _g = test_lock();
        set_enabled(true);
        reset();
        {
            let _s = span_with_arg("job_run", "exec", ("item", 7));
        }
        set_enabled(false);
        let trace = snapshot().to_chrome_trace();
        reset();
        let v = Value::parse(&trace).expect("chrome trace parses");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(events.len() >= 2, "metadata + span: {trace}");
        for e in events {
            for key in ["ph", "ts", "pid", "tid", "name"] {
                assert!(e.get(key).is_some(), "missing {key} in {trace}");
            }
        }
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("one complete event");
        assert_eq!(x.get("name").and_then(Value::as_str), Some("job_run"));
        assert_eq!(x.get("cat").and_then(Value::as_str), Some("exec"));
        assert!(x.get("dur").and_then(Value::as_u64).is_some());
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("item"))
                .and_then(Value::as_u64),
            Some(7)
        );
        let m = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .expect("thread_name metadata");
        assert_eq!(m.get("name").and_then(Value::as_str), Some("thread_name"));
    }

    #[test]
    fn folded_stacks_render_phase_paths_and_op_leaves() {
        let profile = ProfileSnapshot {
            entries: vec![
                ProfileEntry {
                    phase: "bench/train".into(),
                    kind: "matmul",
                    dir: Dir::Forward,
                    calls: 2,
                    total_ns: 1500,
                    bytes: 64,
                },
                ProfileEntry {
                    phase: String::new(),
                    kind: "add",
                    dir: Dir::Backward,
                    calls: 1,
                    total_ns: 200,
                    bytes: 0,
                },
            ],
        };
        let folded = folded_stacks(&profile);
        assert_eq!(
            folded,
            "bench;train;matmul.fwd 1500\n(unattributed);add.bwd 200\n"
        );
    }
}
