//! Metrics: counters, gauges, and streaming quantile histograms behind
//! cheap cloneable handles.
//!
//! Registration takes a registry lock once per metric name; the returned
//! handles are `Arc`s over atomics (counters/gauges) or a small mutex
//! (histograms), so hot paths — `Tape::backward`, the simulator step loop,
//! per-batch training timers — pay a few nanoseconds per update and never
//! contend on the registry itself.
//!
//! Histograms are log-bucketed (DDSketch-style): bucket `i` covers
//! `(γ^(i-1), γ^i]` with γ = 1.02, giving ≈1% relative error on every
//! quantile — more than enough to tell a 2 ms backward pass from a 3 ms
//! one while using O(log range) memory and O(1) updates.

use crate::json::Obj;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins float value (bit-cast into an atomic u64).
#[derive(Clone, Debug, Default)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Relative-accuracy growth factor for histogram buckets (≈1% error).
const GAMMA: f64 = 1.02;

#[derive(Debug, Default)]
struct HistState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Values ≤ 0 (durations and norms are non-negative; exact zeros are
    /// common for e.g. frozen-group gradient norms).
    zero_count: u64,
    /// Dropped, counted separately so a NaN can never poison quantiles.
    non_finite: u64,
    /// `index -> count` where index = ceil(ln(v) / ln(GAMMA)).
    buckets: BTreeMap<i32, u64>,
}

/// Point-in-time summary of a histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub p999: f64,
    pub non_finite: u64,
}

/// Streaming quantile histogram. Cloning the handle shares the state.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Arc<Mutex<HistState>>);

impl HistogramHandle {
    pub fn record(&self, v: f64) {
        let mut st = self.0.lock().expect("histogram poisoned");
        if !v.is_finite() {
            st.non_finite += 1;
            return;
        }
        if st.count == 0 {
            st.min = v;
            st.max = v;
        } else {
            st.min = st.min.min(v);
            st.max = st.max.max(v);
        }
        st.count += 1;
        st.sum += v;
        if v <= 0.0 {
            st.zero_count += 1;
        } else {
            let idx = (v.ln() / GAMMA.ln()).ceil() as i32;
            *st.buckets.entry(idx).or_insert(0) += 1;
        }
    }

    /// Estimated quantile `q ∈ [0, 1]`; `NaN` when empty. Accuracy is the
    /// bucket width: ≈1% relative error (exact for the min/max ends).
    pub fn quantile(&self, q: f64) -> f64 {
        let st = self.0.lock().expect("histogram poisoned");
        Self::quantile_locked(&st, q)
    }

    fn quantile_locked(st: &HistState, q: f64) -> f64 {
        if st.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank on the bucketed CDF.
        let rank = ((q * st.count as f64).ceil() as u64).clamp(1, st.count);
        if rank <= st.zero_count {
            // All non-positive recordings collapse to their minimum.
            return st.min.min(0.0);
        }
        let mut seen = st.zero_count;
        for (&idx, &c) in &st.buckets {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of (γ^(idx-1), γ^idx].
                let est = GAMMA.powf(idx as f64 - 0.5);
                return est.clamp(st.min.max(0.0), st.max);
            }
        }
        st.max
    }

    pub fn snapshot(&self) -> HistSnapshot {
        let st = self.0.lock().expect("histogram poisoned");
        HistSnapshot {
            count: st.count,
            sum: st.sum,
            min: if st.count == 0 { f64::NAN } else { st.min },
            max: if st.count == 0 { f64::NAN } else { st.max },
            p50: Self::quantile_locked(&st, 0.50),
            p90: Self::quantile_locked(&st, 0.90),
            p99: Self::quantile_locked(&st, 0.99),
            p999: Self::quantile_locked(&st, 0.999),
            non_finite: st.non_finite,
        }
    }

    /// Serializes one JSONL metrics record.
    pub fn to_jsonl(&self, name: &str) -> String {
        let s = self.snapshot();
        let mean = if s.count > 0 {
            s.sum / s.count as f64
        } else {
            f64::NAN
        };
        Obj::new()
            .str("type", "histogram")
            .str("name", name)
            .u64("count", s.count)
            .f64("sum", s.sum)
            .f64("mean", mean)
            .f64("min", s.min)
            .f64("max", s.max)
            .f64("p50", s.p50)
            .f64("p90", s.p90)
            .f64("p99", s.p99)
            .f64("p999", s.p999)
            .u64("non_finite", s.non_finite)
            .finish()
    }
}

/// Name-keyed registry of all three metric kinds.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<HashMap<String, CounterHandle>>,
    gauges: Mutex<HashMap<String, GaugeHandle>>,
    histograms: Mutex<HashMap<String, HistogramHandle>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> CounterHandle {
        let mut map = self.counters.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        let mut map = self.gauges.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut map = self.histograms.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// One JSONL line per registered metric, name-sorted within each kind
    /// (counters, then gauges, then histograms) for stable output.
    pub fn dump_jsonl(&self) -> Vec<String> {
        let mut out = Vec::new();
        let counters = self.counters.lock().expect("registry poisoned");
        let mut names: Vec<_> = counters.keys().cloned().collect();
        names.sort();
        for n in names {
            out.push(
                Obj::new()
                    .str("type", "counter")
                    .str("name", &n)
                    .u64("value", counters[&n].get())
                    .finish(),
            );
        }
        drop(counters);
        let gauges = self.gauges.lock().expect("registry poisoned");
        let mut names: Vec<_> = gauges.keys().cloned().collect();
        names.sort();
        for n in names {
            out.push(
                Obj::new()
                    .str("type", "gauge")
                    .str("name", &n)
                    .f64("value", gauges[&n].get())
                    .finish(),
            );
        }
        drop(gauges);
        let hists = self.histograms.lock().expect("registry poisoned");
        let mut names: Vec<_> = hists.keys().cloned().collect();
        names.sort();
        for n in names {
            out.push(hists[&n].to_jsonl(&n));
        }
        out
    }

    /// Drops every registered metric. Existing handles keep working but are
    /// no longer reachable from the registry (used by tests).
    pub fn reset(&self) {
        self.counters.lock().expect("registry poisoned").clear();
        self.gauges.lock().expect("registry poisoned").clear();
        self.histograms.lock().expect("registry poisoned").clear();
    }

    /// Point-in-time copy of every registered metric. Pair two snapshots
    /// with [`RegistrySnapshot::since`] for order-independent assertions
    /// and measurements against the process-global registry, whose raw
    /// values accumulate across tests and repeated in-process runs.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), h.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), h.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of a [`Registry`] (see [`Registry::snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value at snapshot time; 0 when the counter did not exist.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value at snapshot time, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram summary at snapshot time, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.get(name)
    }

    /// All counters, name-sorted (used by the Prometheus renderer).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// All gauges, name-sorted.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// All histogram summaries, name-sorted.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistSnapshot)> {
        self.histograms.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Delta of this (later) snapshot against an `earlier` one: counter
    /// increments plus histogram count/sum increments. Quantiles do not
    /// difference meaningfully and are intentionally absent.
    pub fn since(&self, earlier: &RegistrySnapshot) -> RegistryDelta {
        let counters = self
            .counters
            .iter()
            .map(|(n, &v)| (n.clone(), v.saturating_sub(earlier.counter(n))))
            .collect();
        let mut hist_count = BTreeMap::new();
        let mut hist_sum = BTreeMap::new();
        for (n, s) in &self.histograms {
            let (c0, s0) = earlier
                .histograms
                .get(n)
                .map_or((0, 0.0), |e| (e.count, e.sum));
            hist_count.insert(n.clone(), s.count.saturating_sub(c0));
            hist_sum.insert(n.clone(), s.sum - s0);
        }
        RegistryDelta {
            counters,
            hist_count,
            hist_sum,
        }
    }
}

/// Increments between two [`RegistrySnapshot`]s.
#[derive(Debug, Clone, Default)]
pub struct RegistryDelta {
    counters: BTreeMap<String, u64>,
    hist_count: BTreeMap<String, u64>,
    hist_sum: BTreeMap<String, f64>,
}

impl RegistryDelta {
    /// How much the counter grew between the snapshots.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// How many values the histogram recorded between the snapshots.
    pub fn hist_count(&self, name: &str) -> u64 {
        self.hist_count.get(name).copied().unwrap_or(0)
    }

    /// How much the histogram's running sum grew between the snapshots.
    pub fn hist_sum(&self, name: &str) -> f64 {
        self.hist_sum.get(name).copied().unwrap_or(0.0)
    }
}

/// The process-wide registry all instrumentation records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_shares() {
        let reg = Registry::new();
        let a = reg.counter("c");
        let b = reg.counter("c");
        a.add(3);
        b.incr();
        assert_eq!(reg.counter("c").get(), 4);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = Registry::new();
        reg.gauge("g").set(1.5);
        reg.gauge("g").set(-2.25);
        assert_eq!(reg.gauge("g").get(), -2.25);
    }

    #[test]
    fn histogram_exact_extremes() {
        let h = HistogramHandle::default();
        for v in [5.0, 1.0, 3.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.sum - 9.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_within_relative_error() {
        let h = HistogramHandle::default();
        // 1..=1000 — true pth percentile is ~10*p.
        for i in 1..=1000 {
            h.record(i as f64);
        }
        for (q, truth) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = h.quantile(q);
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.02, "q={q}: est {est} vs {truth} (rel {rel})");
        }
    }

    #[test]
    fn histogram_handles_zeros_and_non_finite() {
        let h = HistogramHandle::default();
        h.record(0.0);
        h.record(0.0);
        h.record(f64::NAN);
        h.record(2.0);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.non_finite, 1);
        assert_eq!(h.quantile(0.1), 0.0);
        assert!(h.quantile(1.0) <= 2.0 + 1e-9);
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let h = HistogramHandle::default();
        assert!(h.quantile(0.5).is_nan());
    }

    /// Deterministic xorshift64* generator for distribution tests (the
    /// crate is dependency-free, so no `rand`).
    struct TestRng(u64);

    impl TestRng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            let x = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
            // Uniform in (0, 1): never exactly 0 so ln() below is finite.
            ((x >> 11) as f64 + 1.0) / (1u64 << 53) as f64
        }
    }

    /// Records `values` and asserts every estimated quantile is within
    /// `tol` relative error of the exact empirical quantile.
    fn assert_quantiles_close(mut values: Vec<f64>, tol: f64) {
        let h = HistogramHandle::default();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99] {
            // Same nearest-rank convention as the sketch.
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            let est = h.quantile(q);
            let rel = (est - truth).abs() / truth.abs().max(1e-300);
            assert!(
                rel <= tol,
                "q={q}: est {est} vs exact {truth} (rel err {rel:.4} > {tol})"
            );
        }
    }

    #[test]
    fn quantile_sketch_accuracy_uniform() {
        let mut rng = TestRng(0x9E37_79B9_7F4A_7C15);
        let values: Vec<f64> = (0..20_000).map(|_| 1.0 + 99.0 * rng.next_f64()).collect();
        // γ = 1.02 bounds the bucket-midpoint error at ~1% relative;
        // allow a hair over for nearest-rank discretization.
        assert_quantiles_close(values, 0.011);
    }

    #[test]
    fn quantile_sketch_accuracy_exponential() {
        let mut rng = TestRng(42);
        // Exponential(λ=1/3): heavy right tail exercises many buckets.
        let values: Vec<f64> = (0..20_000).map(|_| -3.0 * rng.next_f64().ln()).collect();
        assert_quantiles_close(values, 0.011);
    }

    #[test]
    fn quantile_sketch_accuracy_lognormal() {
        let mut rng = TestRng(7);
        // Log-normal via Box–Muller: spans several orders of magnitude,
        // the regime log-bucketing is built for.
        let values: Vec<f64> = (0..10_000)
            .map(|_| {
                let (u1, u2) = (rng.next_f64(), rng.next_f64());
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (0.5 + 1.5 * z).exp()
            })
            .collect();
        assert_quantiles_close(values, 0.011);
    }

    #[test]
    fn snapshot_delta_isolates_increments() {
        let reg = Registry::new();
        reg.counter("c").add(10);
        reg.histogram("h").record(5.0);
        let before = reg.snapshot();
        assert_eq!(before.counter("c"), 10);
        assert_eq!(before.counter("missing"), 0);
        assert_eq!(before.histogram("h").unwrap().count, 1);

        reg.counter("c").add(3);
        reg.gauge("g").set(2.5);
        reg.histogram("h").record(7.0);
        reg.histogram("h2").record(1.0);

        let delta = reg.snapshot().since(&before);
        assert_eq!(delta.counter("c"), 3);
        assert_eq!(delta.counter("missing"), 0);
        assert_eq!(delta.hist_count("h"), 1);
        assert!((delta.hist_sum("h") - 7.0).abs() < 1e-12);
        // A histogram born after the first snapshot deltas from zero.
        assert_eq!(delta.hist_count("h2"), 1);
        assert_eq!(reg.snapshot().gauge("g"), Some(2.5));
    }

    #[test]
    fn dump_is_sorted_and_typed() {
        let reg = Registry::new();
        reg.counter("b.count").incr();
        reg.counter("a.count").add(2);
        reg.gauge("g.v").set(1.0);
        reg.histogram("h.ms").record(3.0);
        let lines = reg.dump_jsonl();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(r#""name":"a.count""#));
        assert!(lines[1].contains(r#""name":"b.count""#));
        assert!(lines[2].starts_with(r#"{"type":"gauge""#));
        assert!(lines[3].starts_with(r#"{"type":"histogram""#));
    }
}
