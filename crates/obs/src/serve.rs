//! Live telemetry endpoint: a `std::net::TcpListener` background thread
//! serving the process's observability surfaces over minimal HTTP/1.1.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4) of the
//!   global [`metrics`] registry: counters, gauges, and histograms as
//!   summaries with `quantile="0.5|0.9|0.99|0.999"` labels plus `_sum` /
//!   `_count`.
//! * `GET /healthz` — liveness probe, always `ok`.
//! * `GET /profile` — the op/phase profiler's [`ProfileSnapshot`] as JSON
//!   (same document `--profile-out` writes).
//! * `GET /timeline` — the execution flight recorder's current
//!   [`TimelineSnapshot`](crate::timeline::TimelineSnapshot) as Chrome
//!   trace-event JSON (same document `--trace-out` writes and
//!   `trace_check` validates), so a live run can be inspected in
//!   Perfetto without restarting it with `--trace-out`.
//!
//! The server is intentionally tiny (one thread, `Connection: close`, no
//! keep-alive, no TLS): it exists so a human or a Prometheus scraper can
//! watch a training/bench run live, and is the skeleton `adaptraj-serve`
//! (ROADMAP item 3) will mount its predict routes on. Binding port 0
//! picks a free port; [`TelemetryServer::local_addr`] reports it.
//!
//! [`ProfileSnapshot`]: crate::profile::ProfileSnapshot

use crate::http::{read_request, write_error, write_response, HttpLimits};
use crate::metrics::{HistSnapshot, Registry, RegistrySnapshot};
use crate::profile;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Handle to the background telemetry listener. Dropping it (or calling
/// [`stop`](TelemetryServer::stop)) shuts the thread down.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9898`, or `:0` for an ephemeral
    /// port) and starts serving on a background thread.
    pub fn start(addr: &str) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("adaptraj-telemetry".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        handle_conn(stream);
                    }
                }
            })?;
        Ok(TelemetryServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one request through the shared bounded reader
/// ([`crate::http`]), routes it, writes one response, closes. Oversized
/// or malformed requests get the shared `413`/`400`/`408` error
/// responses instead of being silently misrouted.
fn handle_conn(mut stream: TcpStream) {
    let limits = HttpLimits {
        // No telemetry route takes a body; anything substantial is junk.
        max_body_bytes: 64 * 1024,
        ..HttpLimits::default()
    };
    let req = match read_request(&mut stream, &limits) {
        Ok(req) => req,
        Err(e) => {
            write_error(&mut stream, &e);
            return;
        }
    };

    let (status, content_type, body) = if req.method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match req.path.as_str() {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(crate::metrics::global()),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            "/profile" => (
                "200 OK",
                "application/json; charset=utf-8",
                format!("{}\n", profile::snapshot().to_json()),
            ),
            "/timeline" => (
                "200 OK",
                "application/json; charset=utf-8",
                format!("{}\n", crate::timeline::snapshot().to_chrome_trace()),
            ),
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "adaptraj telemetry\nroutes: /metrics /healthz /profile /timeline\n".to_string(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };

    write_response(&mut stream, status, content_type, body.as_bytes());
}

/// Renders the registry as Prometheus text exposition format 0.0.4.
pub fn render_prometheus(registry: &Registry) -> String {
    render_snapshot(&registry.snapshot())
}

/// Renders a registry snapshot: counters and gauges as single samples,
/// histograms as summaries with p50/p90/p99/p999 quantile labels.
pub fn render_snapshot(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.counters() {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in snap.gauges() {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_val(value)));
    }
    for (name, hist) in snap.histograms() {
        let name = sanitize(name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        render_quantiles(&mut out, &name, hist);
    }
    out
}

fn render_quantiles(out: &mut String, name: &str, hist: &HistSnapshot) {
    for (q, v) in [
        ("0.5", hist.p50),
        ("0.9", hist.p90),
        ("0.99", hist.p99),
        ("0.999", hist.p999),
    ] {
        out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", fmt_val(v)));
    }
    out.push_str(&format!("{name}_sum {}\n", fmt_val(hist.sum)));
    out.push_str(&format!("{name}_count {}\n", hist.count));
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]` and must not start with
/// a digit; the registry uses dotted names (`exec.queue_depth`), which
/// map to underscores.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

/// Prometheus renders non-finite samples as the literals `NaN` / `+Inf` /
/// `-Inf`.
fn fmt_val(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("exec.queue_depth"), "exec_queue_depth");
        assert_eq!(sanitize("span.fit_ms"), "span_fit_ms");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a:b_c1"), "a:b_c1");
    }

    #[test]
    fn fmt_val_renders_non_finite_literals() {
        assert_eq!(fmt_val(f64::NAN), "NaN");
        assert_eq!(fmt_val(f64::INFINITY), "+Inf");
        assert_eq!(fmt_val(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_val(1.5), "1.5");
    }

    #[test]
    fn renders_all_metric_kinds_in_exposition_format() {
        let reg = Registry::new();
        reg.counter("serve.test_count").add(7);
        reg.gauge("serve.test_gauge").set(2.5);
        let h = reg.histogram("serve.test_ms");
        for i in 1..=100 {
            h.record(i as f64);
        }
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE serve_test_count counter\nserve_test_count 7\n"));
        assert!(text.contains("# TYPE serve_test_gauge gauge\nserve_test_gauge 2.5\n"));
        assert!(text.contains("# TYPE serve_test_ms summary\n"));
        for q in ["0.5", "0.9", "0.99", "0.999"] {
            assert!(
                text.contains(&format!("serve_test_ms{{quantile=\"{q}\"}} ")),
                "missing quantile {q} in:\n{text}"
            );
        }
        assert!(text.contains("serve_test_ms_sum 5050\n"));
        assert!(text.contains("serve_test_ms_count 100\n"));
    }

    #[test]
    fn empty_histogram_quantiles_render_as_nan() {
        let reg = Registry::new();
        let _ = reg.histogram("serve.empty_ms");
        let text = render_prometheus(&reg);
        assert!(text.contains("serve_empty_ms{quantile=\"0.5\"} NaN\n"));
        assert!(text.contains("serve_empty_ms_count 0\n"));
    }

    #[test]
    fn server_serves_healthz_metrics_and_errors() {
        let server = TelemetryServer::start("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        // A metric recorded mid-run is visible on the next scrape.
        metrics::global().counter("serve.live_probe_total").add(3);
        let metrics_resp = get(addr, "/metrics");
        assert!(metrics_resp.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(
            metrics_resp.contains("text/plain; version=0.0.4"),
            "{metrics_resp}"
        );
        assert!(metrics_resp.contains("serve_live_probe_total"));

        let profile_resp = get(addr, "/profile");
        assert!(profile_resp.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(profile_resp.contains("application/json"));
        assert!(profile_resp.contains('{'), "{profile_resp}");

        // /timeline serves the flight recorder as a Chrome trace document
        // (same shape trace_check validates: top-level traceEvents array).
        let timeline_resp = get(addr, "/timeline");
        assert!(timeline_resp.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(timeline_resp.contains("application/json"));
        assert!(timeline_resp.contains("\"traceEvents\""), "{timeline_resp}");

        let index = get(addr, "/");
        assert!(index.contains("/metrics"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"));

        // Non-GET is rejected.
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405 "), "{response}");

        server.stop();
    }

    #[test]
    fn stop_does_not_hang_and_port_is_released() {
        let server = TelemetryServer::start("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        server.stop();
        // After stop, new requests are refused (or reset) — the thread is
        // gone and the listener closed.
        assert!(
            TcpStream::connect(addr).is_err() || get_safe(addr).is_none(),
            "listener still serving after stop"
        );
    }

    fn get_safe(addr: SocketAddr) -> Option<String> {
        let mut stream = TcpStream::connect(addr).ok()?;
        write!(stream, "GET /healthz HTTP/1.1\r\n\r\n").ok()?;
        let mut response = String::new();
        stream.read_to_string(&mut response).ok()?;
        if response.is_empty() {
            None
        } else {
            Some(response)
        }
    }
}
