//! Observability for the AdapTraj workspace: tracing spans, metrics, and
//! training-run telemetry — all dependency-free (std only).
//!
//! Three layers, from hot path outward:
//!
//! - [`trace`]: leveled events and scoped-timer [`Span`]s dispatched to
//!   pluggable [`Sink`]s (a stderr pretty-printer and a JSONL file
//!   writer ship in-crate). Filtering is a single atomic load, so
//!   disabled levels cost nothing on the hot path.
//! - [`metrics`]: a process-global registry of counters, gauges, and
//!   log-bucketed streaming histograms (p50/p90/p99) behind cheap
//!   cloneable handles.
//! - [`telemetry`]: the [`RunTelemetry`] recorder capturing per-epoch
//!   decomposed losses, per-group gradient/parameter norms, non-finite
//!   guards, and per-phase wall-clock, serialized as a run-manifest
//!   JSON document.
//!
//! The crate sits below every other workspace crate (even
//! `adaptraj-tensor` instruments its tape with it) and therefore
//! depends on nothing.

pub mod json;
pub mod metrics;
pub mod telemetry;
pub mod trace;

pub use metrics::{global, CounterHandle, GaugeHandle, HistSnapshot, HistogramHandle, Registry};
pub use telemetry::{
    EpochRecord, EvalSummary, GroupNorm, LossComponents, PhaseTiming, RunTelemetry, MANIFEST_SCHEMA,
};
pub use trace::{
    add_sink, clear_sinks, emit, enabled, flush_sinks, max_level, set_max_level, CaptureSink,
    Event, FieldValue, JsonlSink, Level, Sink, Span, StderrSink,
};
