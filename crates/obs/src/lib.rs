//! Observability for the AdapTraj workspace: tracing spans, metrics, and
//! training-run telemetry — all dependency-free (std only).
//!
//! Three layers, from hot path outward:
//!
//! - [`trace`]: leveled events and scoped-timer [`Span`]s dispatched to
//!   pluggable [`Sink`]s (a stderr pretty-printer and a JSONL file
//!   writer ship in-crate). Filtering is a single atomic load, so
//!   disabled levels cost nothing on the hot path.
//! - [`metrics`]: a process-global registry of counters, gauges, and
//!   log-bucketed streaming histograms (p50/p90/p99) behind cheap
//!   cloneable handles, with snapshot/delta support for
//!   order-independent measurements.
//! - [`profile`]: the op-level autodiff profiler — per-op-kind and
//!   per-phase forward/backward wall-clock and allocation attribution,
//!   fed by the tape in `adaptraj-tensor` through a single
//!   [`profile::record_op`] choke point that compiles down to one atomic
//!   load when profiling is disabled.
//! - [`telemetry`]: the [`RunTelemetry`] recorder capturing per-epoch
//!   decomposed losses, per-group gradient/parameter norms, non-finite
//!   guards, and per-phase wall-clock, serialized as a run-manifest
//!   JSON document.
//! - [`timeline`]: the execution flight recorder — per-thread span
//!   buffers (`queue_wait` / `job_run` / `grad_reduce` / profiler
//!   phases) exported as Chrome trace-event JSON for Perfetto and as
//!   folded stacks for flamegraphs. Disabled capture costs one relaxed
//!   atomic load per span site.
//! - [`health`]: the training-health observatory — tape-level numerics
//!   tripwires (NaN/Inf/exploding, with warn / skip-window /
//!   halt-and-dump policies), per-source-domain gradient diagnostics
//!   (norms, pairwise cosines, update-to-weight ratios), and the
//!   `adaptraj-health/v1` record stream consumed by the `doctor` CLI.
//! - [`serve`]: the live telemetry endpoint — a std-`TcpListener`
//!   background thread serving `GET /metrics` (Prometheus text
//!   exposition with p50/p90/p99/p999 quantiles), `GET /healthz`,
//!   `GET /profile`, and `GET /timeline`.
//!
//! The crate sits below every other workspace crate (even
//! `adaptraj-tensor` instruments its tape with it) and therefore
//! depends on nothing.

pub mod health;
pub mod http;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod serve;
pub mod telemetry;
pub mod timeline;
pub mod trace;

pub use health::{
    DomainCosine, DomainNorm, EpochHealth, GroupRatio, HealthRecord, Incident, Policy,
    BUNDLE_SCHEMA, HEALTH_SCHEMA,
};
pub use metrics::{
    global, CounterHandle, GaugeHandle, HistSnapshot, HistogramHandle, Registry, RegistryDelta,
    RegistrySnapshot,
};
pub use profile::{ProfileSnapshot, PROFILE_SCHEMA};
pub use serve::TelemetryServer;
pub use telemetry::{
    EpochRecord, EvalSummary, GroupNorm, LossComponents, PhaseTiming, RunTelemetry, MANIFEST_SCHEMA,
};
pub use timeline::{SpanHandle, TimelineEvent, TimelineLane, TimelineSnapshot};
pub use trace::{
    add_sink, clear_sinks, emit, enabled, flush_sinks, max_level, set_max_level, CaptureSink,
    Event, FieldValue, JsonlSink, Level, Sink, Span, StderrSink,
};
