//! Minimal JSON serialization.
//!
//! The workspace builds with no registry access, so there is no serde;
//! this module provides the small subset the observability layer needs:
//! string escaping and push-style object/array builders that produce
//! compact single-line JSON (one line per JSONL record).

/// Escapes `s` into `buf` as the *contents* of a JSON string (no quotes).
pub fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Formats a float as a JSON value. Non-finite values have no JSON
/// representation and become `null` (consumers treat that as "guard
/// tripped" — see the non-finite-loss accounting in the run manifest).
pub fn push_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 round-trips and never produces exponents for the
        // magnitudes we log; integral values print without ".0", which is
        // still valid JSON.
        buf.push_str(&format!("{v}"));
    } else {
        buf.push_str("null");
    }
}

/// Push-style JSON object builder producing a compact single line.
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_f64(&mut self.buf, v);
        self
    }

    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Inserts pre-serialized JSON (a nested object or array) verbatim.
    pub fn raw(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

/// Push-style JSON array builder.
#[derive(Debug)]
pub struct Arr {
    buf: String,
    first: bool,
}

impl Arr {
    pub fn new() -> Self {
        Self {
            buf: String::from("["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    pub fn push_raw(mut self, json: &str) -> Self {
        self.sep();
        self.buf.push_str(json);
        self
    }

    pub fn push_str(mut self, v: &str) -> Self {
        self.sep();
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    pub fn push_f64(mut self, v: f64) -> Self {
        self.sep();
        push_f64(&mut self.buf, v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for Arr {
    fn default() -> Self {
        Self::new()
    }
}

/// Parsed JSON value — the reader half of this module, used by the bench
/// comparator to diff `BENCH_*.json` documents. Object members keep
/// insertion order; duplicate keys keep the last value on lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(s: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (last duplicate wins); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn object_builder_produces_compact_json() {
        let j = Obj::new()
            .str("name", "x")
            .u64("count", 3)
            .f64("v", 1.5)
            .bool("ok", true)
            .raw("nested", "[1,2]")
            .finish();
        assert_eq!(
            j,
            r#"{"name":"x","count":3,"v":1.5,"ok":true,"nested":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let j = Obj::new()
            .f64("bad", f64::NAN)
            .f64("inf", f64::INFINITY)
            .finish();
        assert_eq!(j, r#"{"bad":null,"inf":null}"#);
    }

    #[test]
    fn array_builder() {
        let a = Arr::new()
            .push_str("a")
            .push_f64(2.0)
            .push_raw("{}")
            .finish();
        assert_eq!(a, r#"["a",2,{}]"#);
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let written = Obj::new()
            .str("name", "x\"y\\z\n")
            .u64("count", 3)
            .f64("v", -1.5)
            .bool("ok", true)
            .f64("bad", f64::NAN)
            .raw("nested", "[1,2,{\"a\":[]}]")
            .finish();
        let v = Value::parse(&written).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x\"y\\z\n"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("v").unwrap().as_f64(), Some(-1.5));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("bad"), Some(&Value::Null));
        let nested = v.get("nested").unwrap().as_array().unwrap();
        assert_eq!(nested.len(), 3);
        assert_eq!(nested[2].get("a").unwrap().as_array(), Some(&[][..]));
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_exponents() {
        let v = Value::parse(" { \"a\" : [ 1e2 , -0.5 , null , \"\\u0041\\t\" ] , \"b\" : { } } ")
            .unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(100.0));
        assert_eq!(a[1].as_f64(), Some(-0.5));
        assert_eq!(a[2], Value::Null);
        assert_eq!(a[3].as_str(), Some("A\t"));
        assert_eq!(v.get("b"), Some(&Value::Obj(vec![])));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} extra",
            "\"unterminated",
            "tru",
            "1.2.3",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parser_non_object_lookups_are_none() {
        let v = Value::parse("[1,2]").unwrap();
        assert!(v.get("a").is_none());
        assert!(v.as_str().is_none());
        assert_eq!(Value::parse("2.5").unwrap().as_u64(), None);
    }
}
