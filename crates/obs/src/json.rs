//! Minimal JSON serialization.
//!
//! The workspace builds with no registry access, so there is no serde;
//! this module provides the small subset the observability layer needs:
//! string escaping and push-style object/array builders that produce
//! compact single-line JSON (one line per JSONL record).

/// Escapes `s` into `buf` as the *contents* of a JSON string (no quotes).
pub fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Formats a float as a JSON value. Non-finite values have no JSON
/// representation and become `null` (consumers treat that as "guard
/// tripped" — see the non-finite-loss accounting in the run manifest).
pub fn push_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on f64 round-trips and never produces exponents for the
        // magnitudes we log; integral values print without ".0", which is
        // still valid JSON.
        buf.push_str(&format!("{v}"));
    } else {
        buf.push_str("null");
    }
}

/// Push-style JSON object builder producing a compact single line.
#[derive(Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_f64(&mut self.buf, v);
        self
    }

    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Inserts pre-serialized JSON (a nested object or array) verbatim.
    pub fn raw(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

/// Push-style JSON array builder.
#[derive(Debug)]
pub struct Arr {
    buf: String,
    first: bool,
}

impl Arr {
    pub fn new() -> Self {
        Self {
            buf: String::from("["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    pub fn push_raw(mut self, json: &str) -> Self {
        self.sep();
        self.buf.push_str(json);
        self
    }

    pub fn push_str(mut self, v: &str) -> Self {
        self.sep();
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    pub fn push_f64(mut self, v: f64) -> Self {
        self.sep();
        push_f64(&mut self.buf, v);
        self
    }

    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for Arr {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn object_builder_produces_compact_json() {
        let j = Obj::new()
            .str("name", "x")
            .u64("count", 3)
            .f64("v", 1.5)
            .bool("ok", true)
            .raw("nested", "[1,2]")
            .finish();
        assert_eq!(
            j,
            r#"{"name":"x","count":3,"v":1.5,"ok":true,"nested":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let j = Obj::new()
            .f64("bad", f64::NAN)
            .f64("inf", f64::INFINITY)
            .finish();
        assert_eq!(j, r#"{"bad":null,"inf":null}"#);
    }

    #[test]
    fn array_builder() {
        let a = Arr::new()
            .push_str("a")
            .push_f64(2.0)
            .push_raw("{}")
            .finish();
        assert_eq!(a, r#"["a",2,{}]"#);
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(Arr::new().finish(), "[]");
    }
}
