//! Prints Table I-style statistics for every synthesized domain — the
//! quickest way to inspect the calibrated distribution shifts.
//!
//! ```sh
//! cargo run --release -p adaptraj-data --example domain_stats
//! ```

use adaptraj_data::dataset::{synthesize_domain, SynthesisConfig};
use adaptraj_data::domain::DomainId;
use adaptraj_data::stats::table_one;

fn main() {
    let cfg = SynthesisConfig::default();
    println!("domain    seq    num          v(x)         v(y)         a(x)         a(y)");
    for d in DomainId::ALL {
        let ds = synthesize_domain(d, &cfg);
        let windows: Vec<_> = ds.all_windows().cloned().collect();
        let s = table_one(&windows);
        println!(
            "{:8} {:6} {:12} {:12} {:12} {:12} {:12}",
            d.name(),
            s.sequences,
            s.num.to_string(),
            s.vx.to_string(),
            s.vy.to_string(),
            s.ax.to_string(),
            s.ay.to_string()
        );
    }
}
