//! Recording → prediction windows (the TrajNet++-style pipeline).
//!
//! Mirrors the paper's preprocessing: trajectories are resampled to a
//! 0.4 s grid, then cut into 20-step sliding windows (8 observed + 12
//! future). A window is emitted for every agent that is present over all
//! 20 steps (the focal agent); every other agent present over the full
//! observation sub-window becomes a neighbor.

use crate::domain::DomainId;
use crate::trajectory::{Point, TrajWindow, FRAME_DT, T_OBS, T_TOTAL};
use adaptraj_sim::Recording;

/// Window extraction parameters.
#[derive(Debug, Clone)]
pub struct ExtractionConfig {
    /// Hop between consecutive window starts, in resampled frames.
    pub hop: usize,
    /// Windows with fewer co-present agents than this are dropped
    /// (set to 2 to keep only *multi-agent* instances).
    pub min_agents: usize,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self {
            hop: 4,
            min_agents: 1,
        }
    }
}

/// A window plus its chronological position (resampled start frame),
/// used for leak-free chronological splits.
#[derive(Debug, Clone)]
pub struct TimedWindow {
    pub start_frame: usize,
    pub window: TrajWindow,
}

/// Resamples a recording to the 0.4 s grid. Returns
/// `grid[frame][agent] -> Option<Point>`.
fn resample(rec: &Recording) -> Vec<Vec<Option<Point>>> {
    let stride = (FRAME_DT / rec.dt()).round().max(1.0) as usize;
    let n_frames = rec.num_frames().div_ceil(stride);
    let n_agents = rec.num_agents();
    let mut grid = Vec::with_capacity(n_frames);
    for f in 0..n_frames {
        let t = f * stride;
        let mut row = Vec::with_capacity(n_agents);
        for a in 0..n_agents {
            row.push(rec.position(t, a).map(|p| [p.x, p.y]));
        }
        grid.push(row);
    }
    grid
}

/// Extracts all prediction windows from a recording.
pub fn extract_windows(
    rec: &Recording,
    domain: DomainId,
    cfg: &ExtractionConfig,
) -> Vec<TimedWindow> {
    assert!(cfg.hop > 0, "hop must be positive");
    let grid = resample(rec);
    let n_frames = grid.len();
    let n_agents = rec.num_agents();
    let mut out = Vec::new();
    if n_frames < T_TOTAL {
        return out;
    }

    let present_span = |agent: usize, start: usize, len: usize| -> bool {
        grid[start..start + len]
            .iter()
            .all(|row| row[agent].is_some())
    };

    let mut start = 0;
    while start + T_TOTAL <= n_frames {
        for focal in 0..n_agents {
            if !present_span(focal, start, T_TOTAL) {
                continue;
            }
            let focal_track: Vec<Point> = (start..start + T_TOTAL)
                .map(|f| grid[f][focal].expect("checked present"))
                .collect();
            let mut neighbors = Vec::new();
            for other in (0..n_agents).filter(|&o| o != focal) {
                if present_span(other, start, T_OBS) {
                    neighbors.push(
                        grid[start..start + T_OBS]
                            .iter()
                            .map(|row| row[other].expect("checked present"))
                            .collect::<Vec<Point>>(),
                    );
                }
            }
            let window = TrajWindow::from_world(&focal_track, &neighbors, domain);
            if window.agents() >= cfg.min_agents {
                out.push(TimedWindow {
                    start_frame: start,
                    window,
                });
            }
        }
        start += cfg.hop;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_sim::{Agent, ForceParams, Vec2, World};

    fn long_world(n_agents: usize) -> Recording {
        let p = ForceParams {
            noise_std: 0.0,
            ..Default::default()
        };
        let mut w = World::new(p, 0.1, 1);
        for i in 0..n_agents {
            let y = i as f32 * 2.0;
            w.spawn(Agent::walker(Vec2::new(-20.0, y), Vec2::new(60.0, y), 1.0));
        }
        w.run_record(400) // 40 s ⇒ 100 resampled frames
    }

    #[test]
    fn windows_have_protocol_shape() {
        let rec = long_world(1);
        let windows = extract_windows(&rec, DomainId::EthUcy, &ExtractionConfig::default());
        assert!(!windows.is_empty());
        for tw in &windows {
            assert_eq!(tw.window.obs.len(), T_OBS);
            assert_eq!(tw.window.fut.len(), 12);
            assert_eq!(tw.window.domain, DomainId::EthUcy);
        }
    }

    #[test]
    fn hop_controls_window_count() {
        let rec = long_world(1);
        let dense = extract_windows(
            &rec,
            DomainId::EthUcy,
            &ExtractionConfig {
                hop: 1,
                min_agents: 1,
            },
        );
        let sparse = extract_windows(
            &rec,
            DomainId::EthUcy,
            &ExtractionConfig {
                hop: 8,
                min_agents: 1,
            },
        );
        assert!(dense.len() > sparse.len() * 4);
    }

    #[test]
    fn copresent_agents_become_neighbors() {
        let rec = long_world(3);
        let windows = extract_windows(&rec, DomainId::Sdd, &ExtractionConfig::default());
        // Parallel walkers stay co-present for the entire run.
        let max_agents = windows.iter().map(|w| w.window.agents()).max().unwrap();
        assert_eq!(max_agents, 3);
    }

    #[test]
    fn min_agents_filters_lonely_windows() {
        let rec = long_world(1);
        let filtered = extract_windows(
            &rec,
            DomainId::EthUcy,
            &ExtractionConfig {
                hop: 4,
                min_agents: 2,
            },
        );
        assert!(
            filtered.is_empty(),
            "single-agent scene has no multi-agent windows"
        );
    }

    #[test]
    fn short_recordings_yield_nothing() {
        let p = ForceParams {
            noise_std: 0.0,
            ..Default::default()
        };
        let mut w = World::new(p, 0.1, 2);
        w.spawn(Agent::walker(Vec2::ZERO, Vec2::new(50.0, 0.0), 1.0));
        let rec = w.run_record(20); // only ~6 resampled frames
        assert!(extract_windows(&rec, DomainId::LCas, &ExtractionConfig::default()).is_empty());
    }

    #[test]
    fn start_frames_are_monotone_per_batch() {
        let rec = long_world(2);
        let windows = extract_windows(&rec, DomainId::EthUcy, &ExtractionConfig::default());
        for pair in windows.windows(2) {
            assert!(pair[0].start_frame <= pair[1].start_frame);
        }
    }
}
