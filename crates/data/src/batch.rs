//! Mini-batch iteration over window indices and the [`WindowBatch`]
//! view consumed by the batched forward path.

use crate::trajectory::TrajWindow;
use adaptraj_tensor::rng::Rng;

/// Fixed cap on windows per tape pass. Deliberately worker-count
/// independent: job formation must produce the same sub-batches whether
/// the pool runs 1 or N workers, so the cap is a constant rather than a
/// function of parallelism. Eight windows per pass cuts tape nodes by
/// roughly that factor while leaving enough jobs per mini-batch to keep a
/// multi-worker pool busy.
pub const MAX_WINDOWS_PER_JOB: usize = 8;

/// A batch of trajectory windows presented to one tape pass.
///
/// Layout contract (the "stacked agent" layout every batched kernel
/// assumes): agents of all windows are stacked row-wise in batch order,
/// each window contributing its focal agent first, then its neighbors in
/// their stored order. Window `i` owns stacked rows
/// `agent_offset(i) .. agent_offset(i) + windows()[i].agents()`, and
/// `agent_offset(i)` is its focal row. The batch itself stores no
/// padding; ragged per-window agent counts are padded downstream with
/// masks (see `DESIGN.md`, "Batched execution model").
#[derive(Debug, Clone)]
pub struct WindowBatch<'a> {
    windows: Vec<&'a TrajWindow>,
    ids: Vec<u64>,
    /// Cumulative agent offsets, length `len() + 1`; `offsets[i]` is the
    /// first stacked agent row of window `i`, `offsets[len()]` the total.
    offsets: Vec<usize>,
    max_agents: usize,
}

impl<'a> WindowBatch<'a> {
    /// Builds a batch from windows plus their per-epoch window indices
    /// (the `window_index` fed to `window_seed`, also used by the health
    /// observatory for incident attribution).
    pub fn new(windows: Vec<&'a TrajWindow>, ids: Vec<u64>) -> Self {
        assert!(
            !windows.is_empty(),
            "a WindowBatch must hold at least one window"
        );
        assert_eq!(windows.len(), ids.len(), "one id per window");
        let mut offsets = Vec::with_capacity(windows.len() + 1);
        let mut total = 0usize;
        let mut max_agents = 0usize;
        for w in &windows {
            offsets.push(total);
            total += w.agents();
            max_agents = max_agents.max(w.agents());
        }
        offsets.push(total);
        WindowBatch {
            windows,
            ids,
            offsets,
            max_agents,
        }
    }

    /// The batch-of-one view used by the prediction path; bit-compatible
    /// with the historical per-window layout.
    pub fn single(w: &'a TrajWindow, id: u64) -> Self {
        WindowBatch::new(vec![w], vec![id])
    }

    /// Number of windows in the batch.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Always false: batches are constructed non-empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The batched windows, in batch order.
    pub fn windows(&self) -> &[&'a TrajWindow] {
        &self.windows
    }

    /// Per-epoch window indices, aligned with [`Self::windows`].
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// First stacked agent row of window `i` (also its focal row).
    pub fn agent_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Total stacked agent rows across the batch.
    pub fn total_agents(&self) -> usize {
        self.offsets[self.len()]
    }

    /// Largest per-window agent count; the padded slot width `A_max`.
    pub fn max_agents(&self) -> usize {
        self.max_agents
    }

    /// Focal rows of every window, in batch order.
    pub fn focal_rows(&self) -> Vec<usize> {
        self.offsets[..self.len()].to_vec()
    }
}

/// Groups batch positions `0..keys.len()` by key in first-appearance
/// order, splitting each group into runs of at most `cap` positions while
/// preserving original within-group order. This is the single job-forming
/// primitive for batched training: its output depends only on the keys,
/// never on worker count, so gradient reduction in job order is
/// reproducible across pool sizes.
pub fn keyed_jobs<K: PartialEq + Copy>(keys: &[K], cap: usize) -> Vec<Vec<usize>> {
    assert!(cap > 0, "job cap must be positive");
    let mut groups: Vec<(K, Vec<usize>)> = Vec::new();
    for (pos, &k) in keys.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| *g == k) {
            Some((_, v)) => v.push(pos),
            None => groups.push((k, vec![pos])),
        }
    }
    groups
        .into_iter()
        .flat_map(|(_, v)| v.chunks(cap).map(|c| c.to_vec()).collect::<Vec<_>>())
        .collect()
}

/// Shuffled mini-batches of indices `0..n`. The final batch may be short.
pub fn shuffled_batches(n: usize, batch_size: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch_size must be positive");
    let order = rng.permutation(n);
    order.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// Sequential mini-batches (for deterministic evaluation).
pub fn sequential_batches(n: usize, batch_size: usize) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch_size must be positive");
    (0..n)
        .collect::<Vec<usize>>()
        .chunks(batch_size)
        .map(|c| c.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainId;
    use crate::trajectory::{T_OBS, T_TOTAL};

    fn window_with(neighbors: usize) -> TrajWindow {
        let focal: Vec<[f32; 2]> = (0..T_TOTAL).map(|t| [t as f32, 0.0]).collect();
        let nei: Vec<Vec<[f32; 2]>> = (0..neighbors)
            .map(|n| (0..T_OBS).map(|t| [t as f32, n as f32 + 1.0]).collect())
            .collect();
        TrajWindow::from_world(&focal, &nei, DomainId::EthUcy)
    }

    #[test]
    fn window_batch_offsets_follow_ragged_agent_counts() {
        let ws = [window_with(2), window_with(0), window_with(4)];
        let b = WindowBatch::new(ws.iter().collect(), vec![10, 11, 12]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_agents(), 3 + 1 + 5);
        assert_eq!(b.max_agents(), 5);
        assert_eq!(b.focal_rows(), vec![0, 3, 4]);
        assert_eq!(b.agent_offset(2), 4);
        assert_eq!(b.ids(), &[10, 11, 12]);
    }

    #[test]
    fn single_window_batch_matches_per_window_layout() {
        let w = window_with(3);
        let b = WindowBatch::single(&w, 42);
        assert_eq!(b.len(), 1);
        assert_eq!(b.total_agents(), w.agents());
        assert_eq!(b.max_agents(), w.agents());
        assert_eq!(b.focal_rows(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn window_batch_rejects_empty() {
        WindowBatch::new(Vec::new(), Vec::new());
    }

    #[test]
    fn keyed_jobs_group_in_first_appearance_order_with_cap() {
        let keys = ['b', 'a', 'b', 'b', 'a', 'c', 'b'];
        assert_eq!(
            keyed_jobs(&keys, 2),
            vec![vec![0, 2], vec![3, 6], vec![1, 4], vec![5]],
        );
        // Cap of 1 degenerates to per-window jobs in group order.
        assert_eq!(
            keyed_jobs(&keys, 1),
            vec![
                vec![0],
                vec![2],
                vec![3],
                vec![6],
                vec![1],
                vec![4],
                vec![5]
            ],
        );
    }

    #[test]
    fn batches_cover_all_indices_exactly_once() {
        let mut rng = Rng::seed_from(0);
        let batches = shuffled_batches(10, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches.last().unwrap().len(), 1);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_is_ordered() {
        let batches = sequential_batches(7, 4);
        assert_eq!(batches, vec![vec![0, 1, 2, 3], vec![4, 5, 6]]);
    }

    #[test]
    fn shuffling_changes_order() {
        let mut rng = Rng::seed_from(1);
        let flat: Vec<usize> = shuffled_batches(50, 50, &mut rng).remove(0);
        assert_ne!(flat, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_no_batches() {
        let mut rng = Rng::seed_from(2);
        assert!(shuffled_batches(0, 4, &mut rng).is_empty());
        assert!(sequential_batches(0, 4).is_empty());
    }
}
