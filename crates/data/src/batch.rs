//! Mini-batch iteration over window indices.

use adaptraj_tensor::rng::Rng;

/// Shuffled mini-batches of indices `0..n`. The final batch may be short.
pub fn shuffled_batches(n: usize, batch_size: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch_size must be positive");
    let order = rng.permutation(n);
    order.chunks(batch_size).map(|c| c.to_vec()).collect()
}

/// Sequential mini-batches (for deterministic evaluation).
pub fn sequential_batches(n: usize, batch_size: usize) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch_size must be positive");
    (0..n)
        .collect::<Vec<usize>>()
        .chunks(batch_size)
        .map(|c| c.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_indices_exactly_once() {
        let mut rng = Rng::seed_from(0);
        let batches = shuffled_batches(10, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches.last().unwrap().len(), 1);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_is_ordered() {
        let batches = sequential_batches(7, 4);
        assert_eq!(batches, vec![vec![0, 1, 2, 3], vec![4, 5, 6]]);
    }

    #[test]
    fn shuffling_changes_order() {
        let mut rng = Rng::seed_from(1);
        let flat: Vec<usize> = shuffled_batches(50, 50, &mut rng).remove(0);
        assert_ne!(flat, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_no_batches() {
        let mut rng = Rng::seed_from(2);
        assert!(shuffled_batches(0, 4, &mut rng).is_empty());
        assert!(sequential_batches(0, 4).is_empty());
    }
}
