//! Table I statistics: dataset-level trajectory characteristics.
//!
//! The paper motivates the distribution-shift problem by contrasting, per
//! dataset, the number of sequences, the per-scene agent count, and the
//! per-axis velocity and acceleration magnitudes (mean/std). This module
//! computes the same summary from synthesized windows so the `table1_stats`
//! binary can print the reproduction's version of Table I.

use crate::trajectory::TrajWindow;

/// Mean and standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    pub mean: f32,
    pub std: f32,
}

impl MeanStd {
    /// Computes over an iterator of samples; zero for empty input.
    pub fn of(samples: impl Iterator<Item = f32>) -> MeanStd {
        let xs: Vec<f32> = samples.collect();
        if xs.is_empty() {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
            };
        }
        let n = xs.len() as f32;
        let mean = xs.iter().sum::<f32>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n;
        MeanStd {
            mean,
            std: var.sqrt(),
        }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}/{:.3}", self.mean, self.std)
    }
}

/// The row of Table I for one dataset.
#[derive(Debug, Clone)]
pub struct TableOneStats {
    /// Number of sequences (prediction windows).
    pub sequences: usize,
    /// Co-present agents per window.
    pub num: MeanStd,
    /// |v_x| per step (units: m per 0.4 s frame, matching the paper).
    pub vx: MeanStd,
    pub vy: MeanStd,
    /// |a_x| per step (m per frame²).
    pub ax: MeanStd,
    pub ay: MeanStd,
}

/// Computes Table I statistics over a set of windows. Velocity and
/// acceleration magnitudes are measured on the focal agent's full track.
pub fn table_one(windows: &[TrajWindow]) -> TableOneStats {
    let mut nums = Vec::with_capacity(windows.len());
    let (mut vxs, mut vys, mut axs, mut ays) = (vec![], vec![], vec![], vec![]);
    for w in windows {
        nums.push(w.agents() as f32);
        let track = w.full_track();
        let vels: Vec<[f32; 2]> = track
            .windows(2)
            .map(|p| [p[1][0] - p[0][0], p[1][1] - p[0][1]])
            .collect();
        for v in &vels {
            vxs.push(v[0].abs());
            vys.push(v[1].abs());
        }
        for a in vels.windows(2) {
            axs.push((a[1][0] - a[0][0]).abs());
            ays.push((a[1][1] - a[0][1]).abs());
        }
    }
    TableOneStats {
        sequences: windows.len(),
        num: MeanStd::of(nums.into_iter()),
        vx: MeanStd::of(vxs.into_iter()),
        vy: MeanStd::of(vys.into_iter()),
        ax: MeanStd::of(axs.into_iter()),
        ay: MeanStd::of(ays.into_iter()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{synthesize_domain, SynthesisConfig};
    use crate::domain::DomainId;
    use crate::trajectory::{T_OBS, T_TOTAL};

    #[test]
    fn mean_std_known_values() {
        let ms = MeanStd::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter());
        assert!((ms.mean - 5.0).abs() < 1e-6);
        assert!((ms.std - 2.0).abs() < 1e-6);
        assert_eq!(MeanStd::of(std::iter::empty()).mean, 0.0);
    }

    #[test]
    fn constant_velocity_track_has_zero_acceleration() {
        let focal: Vec<[f32; 2]> = (0..T_TOTAL)
            .map(|t| [0.3 * t as f32, 0.1 * t as f32])
            .collect();
        let w = TrajWindow::from_world(&focal, &[], DomainId::EthUcy);
        let s = table_one(std::slice::from_ref(&w));
        assert_eq!(s.sequences, 1);
        assert!((s.vx.mean - 0.3).abs() < 1e-5);
        assert!((s.vy.mean - 0.1).abs() < 1e-5);
        assert!(s.ax.mean < 1e-5);
        assert!(s.ay.mean < 1e-5);
        assert_eq!(s.num.mean, 1.0);
    }

    #[test]
    fn syi_reproduces_table_one_orderings() {
        // The calibration targets orderings, not absolute values:
        // SYI: fastest and vertical-dominant; L-CAS: slowest.
        let cfg = SynthesisConfig::smoke();
        let syi = table_one(
            &synthesize_domain(DomainId::Syi, &cfg)
                .all_windows()
                .cloned()
                .collect::<Vec<_>>(),
        );
        let lcas = table_one(
            &synthesize_domain(DomainId::LCas, &cfg)
                .all_windows()
                .cloned()
                .collect::<Vec<_>>(),
        );
        assert!(syi.vy.mean > syi.vx.mean, "SYI flows vertically");
        assert!(lcas.vx.mean > lcas.vy.mean, "L-CAS flows horizontally");
        assert!(
            syi.vy.mean > 5.0 * lcas.vy.mean,
            "SYI v(y) {} should dwarf L-CAS v(y) {}",
            syi.vy.mean,
            lcas.vy.mean
        );
        assert!(syi.num.mean > lcas.num.mean, "SYI is denser");
    }

    #[test]
    fn velocities_are_per_frame_units() {
        // A 1 m/s walker sampled at 0.4 s moves 0.4 per frame.
        let focal: Vec<[f32; 2]> = (0..T_TOTAL).map(|t| [0.4 * t as f32, 0.0]).collect();
        let w = TrajWindow::from_world(&focal, &[], DomainId::EthUcy);
        let s = table_one(std::slice::from_ref(&w));
        assert!((s.vx.mean - 0.4).abs() < 1e-5);
        let _ = T_OBS; // protocol constant referenced for clarity
    }
}
