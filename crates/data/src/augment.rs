//! Data augmentation for trajectory windows.
//!
//! Random rotation about the normalization origin is the standard
//! augmentation in trajectory forecasting (headings are arbitrary in
//! world space); mirroring flips the lateral axis. Both preserve the
//! protocol invariants: the last observed point stays at the origin and
//! every displacement magnitude is unchanged, so ADE/FDE against the
//! equally-transformed ground truth are invariant.

use crate::trajectory::{Point, TrajWindow};
use adaptraj_tensor::rng::Rng;

fn rotate_point(p: Point, cos: f32, sin: f32) -> Point {
    [p[0] * cos - p[1] * sin, p[0] * sin + p[1] * cos]
}

/// Rotates an entire window (focal + neighbors, observed + future) by
/// `angle` radians about the origin.
pub fn rotate_window(w: &TrajWindow, angle: f32) -> TrajWindow {
    let (sin, cos) = angle.sin_cos();
    let rot_track =
        |t: &[Point]| -> Vec<Point> { t.iter().map(|&p| rotate_point(p, cos, sin)).collect() };
    TrajWindow {
        obs: rot_track(&w.obs),
        fut: rot_track(&w.fut),
        neighbors: w.neighbors.iter().map(|n| rot_track(n)).collect(),
        domain: w.domain,
        origin: w.origin,
    }
}

/// Mirrors a window across the x-axis (y ↦ −y).
pub fn mirror_window(w: &TrajWindow) -> TrajWindow {
    let flip = |t: &[Point]| -> Vec<Point> { t.iter().map(|&p| [p[0], -p[1]]).collect() };
    TrajWindow {
        obs: flip(&w.obs),
        fut: flip(&w.fut),
        neighbors: w.neighbors.iter().map(|n| flip(n)).collect(),
        domain: w.domain,
        origin: w.origin,
    }
}

/// Applies a random rotation (uniform in `[0, 2π)`) and, with probability
/// ½, a mirror — the standard train-time augmentation.
pub fn random_augment(w: &TrajWindow, rng: &mut Rng) -> TrajWindow {
    let angle = rng.uniform(0.0, std::f32::consts::TAU);
    let rotated = rotate_window(w, angle);
    if rng.chance(0.5) {
        mirror_window(&rotated)
    } else {
        rotated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainId;
    use crate::trajectory::{T_OBS, T_TOTAL};

    fn sample_window() -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL)
            .map(|t| [0.3 * t as f32, 0.1 * t as f32])
            .collect();
        let nb: Vec<Point> = (0..T_OBS).map(|t| [0.3 * t as f32, 1.0]).collect();
        TrajWindow::from_world(&focal, &[nb], DomainId::EthUcy)
    }

    fn norms(t: &[Point]) -> Vec<f32> {
        t.iter()
            .map(|p| (p[0] * p[0] + p[1] * p[1]).sqrt())
            .collect()
    }

    #[test]
    fn rotation_preserves_origin_and_norms() {
        let w = sample_window();
        let r = rotate_window(&w, 1.234);
        assert_eq!(r.obs[T_OBS - 1], [0.0, 0.0], "origin must stay fixed");
        for (a, b) in norms(&w.obs).iter().zip(norms(&r.obs)) {
            assert!((a - b).abs() < 1e-5);
        }
        for (a, b) in norms(&w.fut).iter().zip(norms(&r.fut)) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn full_turn_is_identity() {
        let w = sample_window();
        let r = rotate_window(&w, std::f32::consts::TAU);
        for (a, b) in w.fut.iter().zip(&r.fut) {
            assert!((a[0] - b[0]).abs() < 1e-4 && (a[1] - b[1]).abs() < 1e-4);
        }
    }

    #[test]
    fn mirror_is_involution() {
        let w = sample_window();
        let mm = mirror_window(&mirror_window(&w));
        assert_eq!(w.obs, mm.obs);
        assert_eq!(w.neighbors, mm.neighbors);
    }

    #[test]
    fn neighbors_rotate_rigidly_with_focal() {
        // Relative geometry (focal↔neighbor distances) is preserved.
        let w = sample_window();
        let r = rotate_window(&w, 0.7);
        for t in 0..T_OBS {
            let d0 = {
                let (a, b) = (w.obs[t], w.neighbors[0][t]);
                ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
            };
            let d1 = {
                let (a, b) = (r.obs[t], r.neighbors[0][t]);
                ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
            };
            assert!((d0 - d1).abs() < 1e-4);
        }
    }

    #[test]
    fn random_augment_is_seed_deterministic() {
        let w = sample_window();
        let mut r1 = Rng::seed_from(5);
        let mut r2 = Rng::seed_from(5);
        let a = random_augment(&w, &mut r1);
        let b = random_augment(&w, &mut r2);
        assert_eq!(a.obs, b.obs);
        assert_eq!(a.fut, b.fut);
    }
}
