//! # adaptraj-data
//!
//! Domains, dataset synthesis, preprocessing, splits, and statistics for
//! the AdapTraj (ICDE 2024) reproduction.
//!
//! The paper evaluates on four pedestrian datasets (ETH&UCY, L-CAS, SYI,
//! SDD) whose raw recordings are unavailable offline. This crate
//! substitutes calibrated synthetic equivalents: each [`domain::DomainId`]
//! carries a scene distribution (density, speed, flow axis, indoor
//! corridors, stationary crowds) tuned so the synthesized data reproduces
//! the relative structure of the paper's Table I statistics — which is
//! exactly the distribution shift the method is designed to bridge.
//!
//! Pipeline: [`dataset::synthesize_domain`] samples scenes from the
//! domain's config, simulates them with `adaptraj-sim`, resamples to the
//! 0.4 s grid, cuts 8-obs/12-pred windows ([`preprocess`]), and splits
//! 6:2:2 chronologically. [`stats::table_one`] recomputes Table I.
//!
//! ```
//! use adaptraj_data::dataset::{synthesize_domain, SynthesisConfig};
//! use adaptraj_data::domain::DomainId;
//!
//! let ds = synthesize_domain(DomainId::EthUcy, &SynthesisConfig::smoke());
//! assert!(ds.train.len() > 0);
//! assert_eq!(ds.train[0].obs.len(), adaptraj_data::trajectory::T_OBS);
//! ```

pub mod augment;
pub mod batch;
pub mod dataset;
pub mod domain;
pub mod io;
pub mod preprocess;
pub mod stats;
pub mod trajectory;

pub use batch::{keyed_jobs, WindowBatch, MAX_WINDOWS_PER_JOB};
pub use dataset::{synthesize_all, synthesize_domain, DomainDataset, SynthesisConfig};
pub use domain::DomainId;
pub use trajectory::{Point, TrajWindow, FRAME_DT, T_OBS, T_PRED, T_TOTAL};
