//! Core trajectory data types.
//!
//! Following the paper's protocol (Sec. IV-A.4), every prediction instance
//! is a 20-step window sampled at 0.4 s: 8 observed steps (3.2 s) and 12
//! future steps (4.8 s) for a *focal* agent, together with the observed
//! 8-step tracks of every neighbor co-present during the observation
//! window.

use crate::domain::DomainId;

/// Observation horizon |T_obs| (steps).
pub const T_OBS: usize = 8;
/// Prediction horizon |T_pred| (steps).
pub const T_PRED: usize = 12;
/// Total window length.
pub const T_TOTAL: usize = T_OBS + T_PRED;
/// Sampling interval (seconds), as standardized by TrajNet++.
pub const FRAME_DT: f32 = 0.4;

/// A 2-D position (already resampled to the 0.4 s grid).
pub type Point = [f32; 2];

/// One prediction instance: a focal agent's observed and future track plus
/// its neighbors' observed tracks, all expressed in a frame where the focal
/// agent's last observed position is the origin (the standard
/// normalization; displacement-based metrics are unaffected).
#[derive(Debug, Clone)]
pub struct TrajWindow {
    /// Focal observed track, length [`T_OBS`].
    pub obs: Vec<Point>,
    /// Focal ground-truth future, length [`T_PRED`].
    pub fut: Vec<Point>,
    /// Neighbor observed tracks, each of length [`T_OBS`]. May be empty.
    pub neighbors: Vec<Vec<Point>>,
    /// Source domain of this window.
    pub domain: DomainId,
    /// Original world position of the focal agent at the last observed
    /// step (the normalization origin), kept for diagnostics.
    pub origin: Point,
}

impl TrajWindow {
    /// Builds a window from world-frame tracks, normalizing every
    /// coordinate relative to the focal agent's last observed position.
    ///
    /// Panics if track lengths do not match the protocol horizons.
    pub fn from_world(focal: &[Point], neighbors: &[Vec<Point>], domain: DomainId) -> Self {
        assert_eq!(focal.len(), T_TOTAL, "focal track must be {T_TOTAL} steps");
        for n in neighbors {
            assert_eq!(n.len(), T_OBS, "neighbor tracks must be {T_OBS} steps");
        }
        let origin = focal[T_OBS - 1];
        let shift = |p: Point| [p[0] - origin[0], p[1] - origin[1]];
        TrajWindow {
            obs: focal[..T_OBS].iter().copied().map(shift).collect(),
            fut: focal[T_OBS..].iter().copied().map(shift).collect(),
            neighbors: neighbors
                .iter()
                .map(|n| n.iter().copied().map(shift).collect())
                .collect(),
            domain,
            origin,
        }
    }

    /// Number of co-present agents (focal + neighbors).
    pub fn agents(&self) -> usize {
        1 + self.neighbors.len()
    }

    /// Per-step displacement vectors of the observed focal track
    /// (length `T_OBS - 1`).
    pub fn obs_velocities(&self) -> Vec<Point> {
        self.obs
            .windows(2)
            .map(|w| [w[1][0] - w[0][0], w[1][1] - w[0][1]])
            .collect()
    }

    /// Per-step velocity changes of the observed focal track
    /// (length `T_OBS - 2`).
    pub fn obs_accelerations(&self) -> Vec<Point> {
        let v = self.obs_velocities();
        v.windows(2)
            .map(|w| [w[1][0] - w[0][0], w[1][1] - w[0][1]])
            .collect()
    }

    /// The full focal track (obs ++ fut) in the normalized frame.
    pub fn full_track(&self) -> Vec<Point> {
        let mut t = self.obs.clone();
        t.extend_from_slice(&self.fut);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_track(v: f32) -> Vec<Point> {
        (0..T_TOTAL).map(|t| [v * t as f32, 0.0]).collect()
    }

    #[test]
    fn normalization_puts_last_obs_at_origin() {
        let focal = straight_track(0.5);
        let w = TrajWindow::from_world(&focal, &[], DomainId::EthUcy);
        assert_eq!(w.obs.len(), T_OBS);
        assert_eq!(w.fut.len(), T_PRED);
        assert_eq!(w.obs[T_OBS - 1], [0.0, 0.0]);
        assert_eq!(w.origin, [0.5 * (T_OBS - 1) as f32, 0.0]);
        // Future continues in the same direction.
        assert!(w.fut[0][0] > 0.0);
    }

    #[test]
    fn neighbors_share_the_frame() {
        let focal = straight_track(1.0);
        let neighbor: Vec<Point> = (0..T_OBS).map(|t| [t as f32, 3.0]).collect();
        let w = TrajWindow::from_world(&focal, &[neighbor], DomainId::Sdd);
        assert_eq!(w.agents(), 2);
        // Neighbor y-offset is preserved after the shared shift.
        assert_eq!(w.neighbors[0][0][1], 3.0);
        assert_eq!(w.neighbors[0][0][0], -(T_OBS as f32 - 1.0));
    }

    #[test]
    fn velocities_and_accelerations() {
        let focal = straight_track(0.5);
        let w = TrajWindow::from_world(&focal, &[], DomainId::Syi);
        let v = w.obs_velocities();
        assert_eq!(v.len(), T_OBS - 1);
        assert!(v.iter().all(|p| (p[0] - 0.5).abs() < 1e-6 && p[1] == 0.0));
        let a = w.obs_accelerations();
        assert_eq!(a.len(), T_OBS - 2);
        assert!(a.iter().all(|p| p[0].abs() < 1e-6));
    }

    #[test]
    fn full_track_concatenates() {
        let focal = straight_track(1.0);
        let w = TrajWindow::from_world(&focal, &[], DomainId::LCas);
        let t = w.full_track();
        assert_eq!(t.len(), T_TOTAL);
        assert_eq!(t[T_OBS - 1], [0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "focal track must be")]
    fn rejects_short_focal() {
        TrajWindow::from_world(&[[0.0, 0.0]; 5], &[], DomainId::EthUcy);
    }
}
