//! Dataset synthesis and chronological splitting.
//!
//! A domain dataset is produced by sampling many scenes from the domain's
//! calibrated [`ScenarioConfig`](adaptraj_sim::ScenarioConfig), simulating
//! each, extracting prediction windows, and splitting 6:2:2 *by scene
//! order* (scenes play the role of recording sessions, so the split is
//! chronological and leak-free, matching the paper's protocol).

use crate::domain::DomainId;
use crate::preprocess::{extract_windows, ExtractionConfig};
use crate::trajectory::TrajWindow;
use adaptraj_sim::build_world;

/// How much data to synthesize per domain.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// Number of independent scenes to simulate.
    pub scenes: usize,
    /// Simulator steps per scene (at the simulator's fine dt of 0.1 s).
    pub steps_per_scene: usize,
    /// Base seed; domain index and scene index are mixed in.
    pub seed: u64,
    /// Window extraction parameters.
    pub extraction: ExtractionConfig,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            scenes: 24,
            steps_per_scene: 480,
            seed: 7,
            extraction: ExtractionConfig::default(),
        }
    }
}

impl SynthesisConfig {
    /// A smaller configuration for fast tests.
    pub fn smoke() -> Self {
        Self {
            scenes: 6,
            steps_per_scene: 320,
            ..Default::default()
        }
    }
}

/// Train/validation/test windows for one domain.
#[derive(Debug, Clone)]
pub struct DomainDataset {
    pub domain: DomainId,
    pub train: Vec<TrajWindow>,
    pub val: Vec<TrajWindow>,
    pub test: Vec<TrajWindow>,
}

impl DomainDataset {
    pub fn total(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Every window, in chronological (scene) order.
    pub fn all_windows(&self) -> impl Iterator<Item = &TrajWindow> {
        self.train.iter().chain(&self.val).chain(&self.test)
    }
}

/// Simulation time step used for synthesis (s); windows are resampled to
/// the paper's 0.4 s grid on extraction.
pub const SIM_DT: f32 = 0.1;

/// Synthesizes one domain's dataset.
pub fn synthesize_domain(domain: DomainId, cfg: &SynthesisConfig) -> DomainDataset {
    let scenario = domain.scenario();
    let params = domain.force_params();
    // Windows per scene, kept scene-ordered for the chronological split.
    let mut per_scene: Vec<Vec<TrajWindow>> = Vec::with_capacity(cfg.scenes);
    for scene in 0..cfg.scenes {
        let seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((domain.index() as u64) << 32)
            .wrapping_add(scene as u64);
        let mut world = build_world(&scenario, &params, SIM_DT, seed);
        let rec = world.run_record(cfg.steps_per_scene);
        let mut windows = extract_windows(&rec, domain, &cfg.extraction);
        per_scene.push(windows.drain(..).map(|tw| tw.window).collect());
    }

    // 6:2:2 chronological split over scenes.
    let n = per_scene.len();
    let train_end = n * 6 / 10;
    let val_end = n * 8 / 10;
    let mut out = DomainDataset {
        domain,
        train: Vec::new(),
        val: Vec::new(),
        test: Vec::new(),
    };
    for (i, scene_windows) in per_scene.into_iter().enumerate() {
        let bucket = if i < train_end {
            &mut out.train
        } else if i < val_end {
            &mut out.val
        } else {
            &mut out.test
        };
        bucket.extend(scene_windows);
    }
    out
}

/// Synthesizes all four domains.
pub fn synthesize_all(cfg: &SynthesisConfig) -> Vec<DomainDataset> {
    DomainId::ALL
        .iter()
        .map(|&d| synthesize_domain(d, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ratios_are_respected() {
        let cfg = SynthesisConfig {
            scenes: 10,
            ..SynthesisConfig::smoke()
        };
        let ds = synthesize_domain(DomainId::EthUcy, &cfg);
        assert!(ds.total() > 0);
        // Scene-level 6:2:2 ⇒ window counts roughly proportional.
        assert!(ds.train.len() > ds.val.len());
        assert!(ds.train.len() > ds.test.len());
        assert!(!ds.val.is_empty());
        assert!(!ds.test.is_empty());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let cfg = SynthesisConfig::smoke();
        let a = synthesize_domain(DomainId::LCas, &cfg);
        let b = synthesize_domain(DomainId::LCas, &cfg);
        assert_eq!(a.total(), b.total());
        for (wa, wb) in a.train.iter().zip(&b.train) {
            assert_eq!(wa.obs, wb.obs);
            assert_eq!(wa.fut, wb.fut);
        }
    }

    #[test]
    fn domains_differ_in_content() {
        let cfg = SynthesisConfig::smoke();
        let slow = synthesize_domain(DomainId::LCas, &cfg);
        let fast = synthesize_domain(DomainId::Syi, &cfg);
        let mean_speed = |ds: &DomainDataset| {
            let mut total = 0.0;
            let mut n = 0;
            for w in ds.all_windows() {
                for v in w.obs_velocities() {
                    total += (v[0] * v[0] + v[1] * v[1]).sqrt();
                    n += 1;
                }
            }
            total / n.max(1) as f32
        };
        assert!(
            mean_speed(&fast) > 2.0 * mean_speed(&slow),
            "SYI should be much faster than L-CAS"
        );
    }

    #[test]
    fn windows_are_tagged_with_domain() {
        let ds = synthesize_domain(DomainId::Sdd, &SynthesisConfig::smoke());
        assert!(ds.all_windows().all(|w| w.domain == DomainId::Sdd));
    }
}
