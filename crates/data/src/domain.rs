//! The four evaluation domains and their calibrated scene distributions.
//!
//! Table I of the paper characterizes each dataset by crowd density and
//! per-axis velocity/acceleration statistics. Each [`DomainId`] maps to a
//! [`ScenarioConfig`] + [`ForceParams`] pair chosen so that synthesized
//! trajectories reproduce the *relative* structure of those statistics:
//!
//! | Domain  | character (from the paper)                                  |
//! |---------|-------------------------------------------------------------|
//! | ETH&UCY | outdoor walkways; horizontal flows, groups, leader–follower |
//! | L-CAS   | indoor corridor; slow motion, low density, trolleys/children |
//! | SYI     | station concourse; dense, fast **vertical** flow, stationary crowd groups (v(y) ≈ 26× L-CAS) |
//! | SDD     | university campus; mixed headings, high speed variance (bikes + pedestrians), large scale |

use adaptraj_sim::{FlowAxis, ForceParams, ScenarioConfig};

/// One of the paper's four dataset domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DomainId {
    EthUcy,
    LCas,
    Syi,
    Sdd,
}

impl DomainId {
    /// All domains in the paper's column order.
    pub const ALL: [DomainId; 4] = [
        DomainId::EthUcy,
        DomainId::LCas,
        DomainId::Syi,
        DomainId::Sdd,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DomainId::EthUcy => "ETH&UCY",
            DomainId::LCas => "L-CAS",
            DomainId::Syi => "SYI",
            DomainId::Sdd => "SDD",
        }
    }

    /// Stable small integer (used as the domain-classifier label and for
    /// seeding).
    pub fn index(self) -> usize {
        match self {
            DomainId::EthUcy => 0,
            DomainId::LCas => 1,
            DomainId::Syi => 2,
            DomainId::Sdd => 3,
        }
    }

    /// Inverse of [`DomainId::index`].
    pub fn from_index(i: usize) -> DomainId {
        Self::ALL[i]
    }

    /// The calibrated scene distribution for this domain.
    pub fn scenario(self) -> ScenarioConfig {
        match self {
            // Moderate outdoor walkway: horizontal flows, some groups and
            // chains, medium density/speed.
            DomainId::EthUcy => ScenarioConfig {
                extent: 10.0,
                num_walkers: 6,
                num_groups: 1,
                group_size: 3,
                num_chains: 1,
                chain_len: 2,
                num_stationary_groups: 0,
                stationary_group_size: 0,
                speed_mean: 1.1,
                speed_std: 0.35,
                flow_axis: FlowAxis::Horizontal,
                flow_bias: 0.85,
                corridor_half_width: None,
                entry_stagger: 0,
            },
            // Slow indoor corridor, sparse.
            DomainId::LCas => ScenarioConfig {
                extent: 8.0,
                num_walkers: 5,
                num_groups: 1,
                group_size: 2,
                num_chains: 0,
                chain_len: 0,
                num_stationary_groups: 0,
                stationary_group_size: 0,
                speed_mean: 0.45,
                speed_std: 0.15,
                flow_axis: FlowAxis::Horizontal,
                flow_bias: 0.8,
                corridor_half_width: Some(4.0),
                entry_stagger: 0,
            },
            // Dense station concourse: fast vertical flow + stationary
            // crowd groups.
            DomainId::Syi => ScenarioConfig {
                extent: 26.0,
                num_walkers: 24,
                num_groups: 2,
                group_size: 3,
                num_chains: 1,
                chain_len: 3,
                num_stationary_groups: 1,
                stationary_group_size: 4,
                speed_mean: 2.7,
                speed_std: 0.4,
                flow_axis: FlowAxis::Vertical,
                flow_bias: 0.92,
                corridor_half_width: None,
                entry_stagger: 0,
            },
            // Campus: mixed headings, bimodal-ish speeds (cyclists), larger
            // extent.
            DomainId::Sdd => ScenarioConfig {
                extent: 18.0,
                num_walkers: 12,
                num_groups: 2,
                group_size: 2,
                num_chains: 1,
                chain_len: 2,
                num_stationary_groups: 1,
                stationary_group_size: 3,
                speed_mean: 1.5,
                speed_std: 0.7,
                flow_axis: FlowAxis::Mixed,
                flow_bias: 0.5,
                corridor_half_width: None,
                entry_stagger: 0,
            },
        }
    }

    /// Force-model parameters per domain. Indoor scenes react more
    /// strongly to walls; dense scenes carry more motion noise
    /// (acceleration spread in Table I grows with density).
    pub fn force_params(self) -> ForceParams {
        let mut p = ForceParams::default();
        match self {
            DomainId::EthUcy => {
                p.noise_std = 0.08;
            }
            DomainId::LCas => {
                p.noise_std = 0.12;
                p.wall_strength = 4.0;
                p.relaxation_time = 0.7;
            }
            DomainId::Syi => {
                p.noise_std = 0.5;
                p.repulsion_strength = 7.0;
                p.relaxation_time = 0.4;
            }
            DomainId::Sdd => {
                p.noise_std = 0.18;
            }
        }
        p
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for d in DomainId::ALL {
            assert_eq!(DomainId::from_index(d.index()), d);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DomainId::EthUcy.name(), "ETH&UCY");
        assert_eq!(DomainId::Sdd.to_string(), "SDD");
    }

    #[test]
    fn calibration_orderings_match_table_one() {
        // SYI has the fastest flow, L-CAS the slowest.
        let speeds: Vec<f32> = DomainId::ALL
            .iter()
            .map(|d| d.scenario().speed_mean)
            .collect();
        assert!(
            speeds[2] > speeds[0] && speeds[2] > speeds[3],
            "SYI fastest"
        );
        assert!(
            speeds[1] < speeds[0] && speeds[1] < speeds[3],
            "L-CAS slowest"
        );
        // SYI is the densest scene, L-CAS the sparsest.
        let density: Vec<usize> = DomainId::ALL
            .iter()
            .map(|d| d.scenario().expected_agents())
            .collect();
        assert!(density[2] > density[0] && density[2] > density[3]);
        assert!(density[1] <= *density.iter().min().unwrap());
        // SYI flows vertically; ETH&UCY and L-CAS horizontally.
        assert_eq!(DomainId::Syi.scenario().flow_axis, FlowAxis::Vertical);
        assert_eq!(DomainId::EthUcy.scenario().flow_axis, FlowAxis::Horizontal);
        // SDD has the widest speed spread (mixed cyclists/pedestrians).
        let stds: Vec<f32> = DomainId::ALL
            .iter()
            .map(|d| d.scenario().speed_std)
            .collect();
        assert!(
            stds[3]
                >= *stds
                    .iter()
                    .take(3)
                    .fold(&0.0f32, |m, s| if s > m { s } else { m })
        );
    }

    #[test]
    fn lcas_is_indoor() {
        assert!(DomainId::LCas.scenario().corridor_half_width.is_some());
        assert!(DomainId::EthUcy.scenario().corridor_half_width.is_none());
    }
}
