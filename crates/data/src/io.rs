//! Trajectory dataset I/O: a plain CSV interchange format.
//!
//! Synthesized datasets can be exported for external analysis and
//! re-imported (e.g. to pin a dataset across library versions, or to load
//! real recordings preprocessed elsewhere into this pipeline). One row per
//! (window, agent, step):
//!
//! ```text
//! window_id,domain,agent,step,x,y
//! ```
//!
//! `agent` 0 is the focal agent (steps `0..T_TOTAL`, observation then
//! future); agents `1..` are neighbors (steps `0..T_OBS`). Coordinates are
//! in the window's normalized frame. The window's world origin is emitted
//! as a synthetic `agent = -1, step = 0` row so exports are lossless.

use crate::domain::DomainId;
use crate::trajectory::{Point, TrajWindow, T_OBS, T_TOTAL};
use std::io::{self, BufRead, Write};

/// Errors from dataset CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse(usize, String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv I/O error: {e}"),
            CsvError::Parse(line, msg) => write!(f, "csv parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn domain_tag(d: DomainId) -> &'static str {
    match d {
        DomainId::EthUcy => "eth_ucy",
        DomainId::LCas => "l_cas",
        DomainId::Syi => "syi",
        DomainId::Sdd => "sdd",
    }
}

fn parse_domain(tag: &str) -> Option<DomainId> {
    match tag {
        "eth_ucy" => Some(DomainId::EthUcy),
        "l_cas" => Some(DomainId::LCas),
        "syi" => Some(DomainId::Syi),
        "sdd" => Some(DomainId::Sdd),
        _ => None,
    }
}

/// Writes windows as CSV.
pub fn write_csv(windows: &[TrajWindow], writer: &mut impl Write) -> Result<(), CsvError> {
    writeln!(writer, "window_id,domain,agent,step,x,y")?;
    for (wid, w) in windows.iter().enumerate() {
        let tag = domain_tag(w.domain);
        writeln!(writer, "{wid},{tag},-1,0,{},{}", w.origin[0], w.origin[1])?;
        for (t, p) in w.full_track().iter().enumerate() {
            writeln!(writer, "{wid},{tag},0,{t},{},{}", p[0], p[1])?;
        }
        for (a, nb) in w.neighbors.iter().enumerate() {
            for (t, p) in nb.iter().enumerate() {
                writeln!(writer, "{wid},{tag},{},{t},{},{}", a + 1, p[0], p[1])?;
            }
        }
    }
    Ok(())
}

#[derive(Default)]
struct WindowBuilder {
    domain: Option<DomainId>,
    origin: Point,
    focal: Vec<Option<Point>>,
    neighbors: Vec<Vec<Option<Point>>>,
}

impl WindowBuilder {
    fn build(self, line: usize) -> Result<TrajWindow, CsvError> {
        let domain = self
            .domain
            .ok_or_else(|| CsvError::Parse(line, "window without rows".into()))?;
        let focal: Option<Vec<Point>> = self.focal.into_iter().collect();
        let focal = focal.ok_or_else(|| CsvError::Parse(line, "focal track has gaps".into()))?;
        if focal.len() != T_TOTAL {
            return Err(CsvError::Parse(
                line,
                format!("focal track has {} steps, expected {T_TOTAL}", focal.len()),
            ));
        }
        let mut neighbors = Vec::with_capacity(self.neighbors.len());
        for nb in self.neighbors {
            let nb: Option<Vec<Point>> = nb.into_iter().collect();
            let nb = nb.ok_or_else(|| CsvError::Parse(line, "neighbor track has gaps".into()))?;
            if nb.len() != T_OBS {
                return Err(CsvError::Parse(
                    line,
                    format!("neighbor track has {} steps, expected {T_OBS}", nb.len()),
                ));
            }
            neighbors.push(nb);
        }
        // The CSV stores normalized coordinates; reconstruct the window
        // directly rather than re-normalizing.
        Ok(TrajWindow {
            obs: focal[..T_OBS].to_vec(),
            fut: focal[T_OBS..].to_vec(),
            neighbors,
            domain,
            origin: self.origin,
        })
    }
}

/// Reads windows from CSV produced by [`write_csv`].
pub fn read_csv(reader: &mut impl BufRead) -> Result<Vec<TrajWindow>, CsvError> {
    let mut builders: Vec<WindowBuilder> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with("window_id") {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(CsvError::Parse(
                lineno,
                format!("{} fields, expected 6", fields.len()),
            ));
        }
        let wid: usize = fields[0]
            .parse()
            .map_err(|_| CsvError::Parse(lineno, "bad window_id".into()))?;
        let domain = parse_domain(fields[1])
            .ok_or_else(|| CsvError::Parse(lineno, format!("unknown domain '{}'", fields[1])))?;
        let agent: i64 = fields[2]
            .parse()
            .map_err(|_| CsvError::Parse(lineno, "bad agent".into()))?;
        let step: usize = fields[3]
            .parse()
            .map_err(|_| CsvError::Parse(lineno, "bad step".into()))?;
        let x: f32 = fields[4]
            .parse()
            .map_err(|_| CsvError::Parse(lineno, "bad x".into()))?;
        let y: f32 = fields[5]
            .parse()
            .map_err(|_| CsvError::Parse(lineno, "bad y".into()))?;

        if builders.len() <= wid {
            builders.resize_with(wid + 1, WindowBuilder::default);
        }
        let b = &mut builders[wid];
        b.domain = Some(domain);
        match agent {
            -1 => b.origin = [x, y],
            0 => {
                if b.focal.len() <= step {
                    b.focal.resize(step + 1, None);
                }
                b.focal[step] = Some([x, y]);
            }
            a if a > 0 => {
                let a = (a - 1) as usize;
                if b.neighbors.len() <= a {
                    b.neighbors.resize(a + 1, Vec::new());
                }
                if b.neighbors[a].len() <= step {
                    b.neighbors[a].resize(step + 1, None);
                }
                b.neighbors[a][step] = Some([x, y]);
            }
            _ => return Err(CsvError::Parse(lineno, format!("bad agent id {agent}"))),
        }
    }
    builders
        .into_iter()
        .enumerate()
        .map(|(i, b)| b.build(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{synthesize_domain, SynthesisConfig};

    fn sample_windows() -> Vec<TrajWindow> {
        let ds = synthesize_domain(DomainId::EthUcy, &SynthesisConfig::smoke());
        ds.train.into_iter().take(5).collect()
    }

    #[test]
    fn round_trip_preserves_windows() {
        let windows = sample_windows();
        let mut buf = Vec::new();
        write_csv(&windows, &mut buf).unwrap();
        let parsed = read_csv(&mut buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), windows.len());
        for (a, b) in windows.iter().zip(&parsed) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.obs, b.obs);
            assert_eq!(a.fut, b.fut);
            assert_eq!(a.neighbors, b.neighbors);
            assert_eq!(a.origin, b.origin);
        }
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let windows = sample_windows();
        let mut buf = Vec::new();
        write_csv(&windows, &mut buf).unwrap();
        let with_blanks = format!("\n{}\n\n", String::from_utf8(buf).unwrap());
        let parsed = read_csv(&mut with_blanks.as_bytes()).unwrap();
        assert_eq!(parsed.len(), windows.len());
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let bad = "window_id,domain,agent,step,x,y\n0,eth_ucy,0,notastep,1.0,2.0\n";
        let err = read_csv(&mut bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_domain_is_rejected() {
        let bad = "0,mars,0,0,1.0,2.0\n";
        let err = read_csv(&mut bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown domain"), "{err}");
    }

    #[test]
    fn incomplete_focal_track_is_rejected() {
        let mut rows = String::new();
        for t in 0..5 {
            rows.push_str(&format!("0,sdd,0,{t},0.0,0.0\n"));
        }
        let err = read_csv(&mut rows.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("steps"), "{err}");
    }
}
