//! The `Trainer` builder: the shared mini-batch training loop behind a
//! data-parallel worker-pool executor.
//!
//! Replaces the free-function `fit_loop`/`fit_loop_phase` pair (kept as
//! deprecated shims in `predictor`). Per window, `per_window` builds a
//! scalar loss on a fresh tape owned by the worker that runs it; per-window
//! gradients are shipped back to the dispatching thread and reduced into
//! one [`GradBuffer`] **in batch-position order**, so the accumulated sum —
//! and therefore every optimizer step — is bit-identical for any worker
//! count.
//!
//! Determinism contract: the caller's `rng` is consumed only for batch
//! shuffling, in epoch order. Each window's latent draws come from a
//! private `Rng` seeded with [`window_seed`]`(cfg.seed, epoch, window)`,
//! which depends on the run seed and the window's position in `windows` —
//! never on which worker picks up the job or how jobs interleave.

use crate::config::TrainerConfig;
use crate::diagnostics::HealthAccum;
use crate::predictor::{group_norms, TrainReport};
use adaptraj_data::batch::shuffled_batches;
use adaptraj_data::trajectory::TrajWindow;
use adaptraj_exec::{window_seed, WorkerPool};
use adaptraj_obs::{health, obs_info, obs_warn, profile, timeline, EpochRecord, PhaseTiming, Span};
use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::param::ParamId;
use adaptraj_tensor::{GradBuffer, ParamStore, Rng, Tape, Tensor, Var};
use std::time::Instant;

/// What one worker sends back for one window: the loss value and the
/// already-extracted parameter gradients (empty when the loss came back
/// non-finite — the guard runs on the worker so a NaN backward pass is
/// never even attempted).
struct WindowResult {
    val: f32,
    pairs: Vec<(ParamId, Tensor)>,
}

/// Builder for the shared training loop.
///
/// ```ignore
/// let report = Trainer::new(&cfg)
///     .workers(4)
///     .phase("step1")
///     .on_epoch(|rec| eprintln!("epoch {} loss {}", rec.epoch, rec.loss))
///     .fit(&mut store, &mut opt, &windows, &mut rng, per_window);
/// ```
pub struct Trainer<'a> {
    cfg: &'a TrainerConfig,
    workers: usize,
    phase: &'a str,
    epoch_offset: usize,
    #[allow(clippy::type_complexity)]
    on_epoch: Option<Box<dyn FnMut(&EpochRecord) + 'a>>,
}

impl<'a> Trainer<'a> {
    /// A trainer with the config's worker count, phase `"train"`, and no
    /// epoch callback.
    pub fn new(cfg: &'a TrainerConfig) -> Self {
        Self {
            cfg,
            workers: cfg.workers,
            phase: "train",
            epoch_offset: 0,
            on_epoch: None,
        }
    }

    /// Overrides the worker count (`0` or `1` = inline on the calling
    /// thread).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Telemetry label for this run of the loop ("train" for single-phase
    /// methods; "step1"/"step2"/"step3" under the AdapTraj schedule).
    pub fn phase(mut self, phase: &'a str) -> Self {
        self.phase = phase;
        self
    }

    /// Keeps epoch numbering global when a schedule invokes the loop
    /// repeatedly.
    pub fn epoch_offset(mut self, offset: usize) -> Self {
        self.epoch_offset = offset;
        self
    }

    /// Called with each epoch's finished [`EpochRecord`] (after it is
    /// pushed onto the report).
    pub fn on_epoch(mut self, f: impl FnMut(&EpochRecord) + 'a) -> Self {
        self.on_epoch = Some(Box::new(f));
        self
    }

    /// Runs the loop: per epoch, shuffled mini-batches; per window, a
    /// fresh tape + private rng on a worker thread; gradients averaged
    /// over the batch, clipped, and applied with `opt`.
    ///
    /// Telemetry per epoch: an `epoch` span (debug level), mean loss over
    /// *finite* windows, the batch-averaged pre-clip global gradient norm,
    /// per-group gradient/parameter norms from the final batch, and a
    /// count of windows skipped because their loss came back non-finite.
    pub fn fit<F>(
        mut self,
        store: &mut ParamStore,
        opt: &mut Adam,
        windows: &[&TrajWindow],
        rng: &mut Rng,
        per_window: F,
    ) -> TrainReport
    where
        F: Fn(&ParamStore, &mut Tape, &TrajWindow, &mut Rng) -> Var + Sync,
    {
        let mut report = TrainReport::default();
        if windows.is_empty() {
            return report;
        }
        let pool = WorkerPool::new(self.workers);
        let cfg = self.cfg;
        let phase_start = Instant::now();
        let mut best_loss = f32::INFINITY;
        let mut stale_epochs = 0usize;
        // Source domains in first-appearance order, for the health
        // observatory's per-domain gradient diagnostics.
        let mut domain_names: Vec<&'static str> = Vec::new();
        for w in windows {
            let n = w.domain.name();
            if !domain_names.contains(&n) {
                domain_names.push(n);
            }
        }
        for epoch in 0..cfg.epochs {
            let global_epoch = epoch + self.epoch_offset;
            let mut span = Span::enter("models.fit", "epoch").with("epoch", global_epoch);
            let _tl_epoch =
                timeline::span_with_arg("epoch", "train", ("epoch", global_epoch as u64));
            // Profiler attribution: ops in this epoch land under the
            // loop's phase label; workers re-enter the same path.
            let _profile_phase = profile::phase(self.phase);
            let profile_path = profile::current_path().unwrap_or_default();
            let epoch_start = Instant::now();
            let mut rec = EpochRecord::new(global_epoch, self.phase);
            let mut epoch_loss = 0.0f64;
            let mut seen = 0usize;
            let mut grad_norm_sum = 0.0f64;
            let mut batches = 0usize;
            let mut diag = HealthAccum::new(
                global_epoch as u64,
                self.phase,
                domain_names.iter().copied(),
            );
            let mut halted = false;
            let batch_list = shuffled_batches(windows.len(), cfg.batch_size, rng);
            let n_batches = batch_list.len();
            for (batch_idx, batch) in batch_list.into_iter().enumerate() {
                let results = run_batch(
                    &pool,
                    store,
                    windows,
                    &batch,
                    cfg.seed,
                    global_epoch as u64,
                    &profile_path,
                    &per_window,
                );
                // Reduce in batch-position order — bit-identical to the
                // sequential loop for every worker count. The whole
                // serialized section (absorb → clip → step) is one
                // `grad_reduce` span on the dispatcher's timeline lane.
                let tl_reduce = timeline::span("grad_reduce", "train");
                let mut buf = GradBuffer::new();
                let inv = 1.0 / batch.len() as f32;
                for (&i, r) in batch.iter().zip(&results) {
                    if !r.val.is_finite() {
                        rec.non_finite_batches += 1;
                        obs_warn!(
                            "models.fit",
                            "non-finite loss at epoch {global_epoch}, window {i}; skipping"
                        );
                        continue;
                    }
                    buf.absorb_pairs_scaled(&r.pairs, inv);
                    diag.absorb(windows[i].domain.name(), &r.pairs, inv);
                    epoch_loss += r.val as f64;
                    seen += 1;
                }
                // Retire the shipped gradient buffers into this thread's
                // pool so the next batch's reduction reuses them.
                for r in results {
                    for (_, g) in r.pairs {
                        g.recycle();
                    }
                }
                let norm = if cfg.grad_clip > 0.0 {
                    buf.clip_global_norm(cfg.grad_clip)
                } else {
                    buf.global_norm()
                };
                grad_norm_sum += norm as f64;
                batches += 1;
                rec.group_norms = group_norms(store, &buf);
                let before = diag.pre_step(store, batch_idx + 1 == n_batches);
                opt.step(store, &buf);
                diag.post_step(store, before);
                buf.recycle();
                drop(tl_reduce);
                if health::halt_requested() {
                    obs_warn!(
                        "models.fit",
                        "health tripwire requested halt at epoch {global_epoch}; stopping training"
                    );
                    halted = true;
                    break;
                }
            }
            diag.finish();
            let mean_loss = (epoch_loss / seen.max(1) as f64) as f32;
            rec.loss = mean_loss as f64;
            rec.grad_norm = grad_norm_sum / batches.max(1) as f64;
            rec.duration_s = epoch_start.elapsed().as_secs_f64();
            span.record("loss", rec.loss);
            span.record("grad_norm", rec.grad_norm);
            report.epoch_losses.push(mean_loss);
            // Optional plateau-based early stopping.
            let mut stop = false;
            if cfg.patience > 0 {
                if mean_loss < best_loss - 1e-6 {
                    best_loss = mean_loss;
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    if stale_epochs >= cfg.patience {
                        rec.early_stop = true;
                        stop = true;
                        obs_info!(
                            "models.fit",
                            "early stop at epoch {global_epoch}: no improvement for {} epochs",
                            cfg.patience
                        );
                    }
                }
            }
            report.epochs.push(rec);
            if let Some(cb) = self.on_epoch.as_mut() {
                cb(report.epochs.last().expect("just pushed"));
            }
            if stop || halted {
                break;
            }
        }
        report.phases.push(PhaseTiming::new(
            self.phase,
            phase_start.elapsed().as_secs_f64(),
        ));
        report
    }
}

/// Dispatches one batch to the pool and blocks for the ordered results.
/// A worker panic is re-raised here, matching the sequential loop where a
/// panicking `per_window` unwinds through `fit`.
#[allow(clippy::too_many_arguments)]
fn run_batch<F>(
    pool: &WorkerPool,
    store: &ParamStore,
    windows: &[&TrajWindow],
    batch: &[usize],
    seed: u64,
    global_epoch: u64,
    profile_path: &str,
    per_window: &F,
) -> Vec<WindowResult>
where
    F: Fn(&ParamStore, &mut Tape, &TrajWindow, &mut Rng) -> Var + Sync,
{
    match pool.map(batch, |_, &i| {
        let _p = profile::phase_at(profile_path);
        let _h = health::window_scope(global_epoch, i as u64);
        worker_tape(|tape| {
            let mut wrng = Rng::seed_from(window_seed(seed, global_epoch, i as u64));
            let loss = per_window(store, tape, windows[i], &mut wrng);
            let val = tape.value(loss).item();
            if !val.is_finite() {
                return WindowResult {
                    val,
                    pairs: Vec::new(),
                };
            }
            // `skip-window` policy: a tripped window drops its gradient
            // contribution via the existing non-finite skip path.
            if health::should_skip_window() {
                return WindowResult {
                    val: f32::NAN,
                    pairs: Vec::new(),
                };
            }
            let grads = tape.backward(loss);
            let pairs = tape.take_param_grads(grads);
            WindowResult { val, pairs }
        })
    }) {
        Ok(results) => results,
        Err(e) => panic!("training worker panicked: {e}"),
    }
}

/// Runs `f` on the calling worker thread's reusable pooled tape (see
/// `adaptraj_tensor::with_pooled`). The worker pool keeps its threads
/// alive across batches, so in steady state every window job replays onto
/// a tape whose node vector — and, via `Tape::reset`, whose retired value
/// buffers — carry over from the previous window: the forward/backward
/// hot path stops touching the allocator.
pub(crate) fn worker_tape<R>(f: impl FnOnce(&mut Tape) -> R) -> R {
    adaptraj_tensor::with_pooled(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{Point, T_TOTAL};
    use adaptraj_tensor::{GroupId, Tensor};

    fn window_for(domain: DomainId, v: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [v * t as f32, 0.0]).collect();
        TrajWindow::from_world(&focal, &[], domain)
    }

    /// A stochastic objective: `(p * g)^2` with `g` drawn from the
    /// per-window rng, so any divergence in the seed-splitting scheme
    /// between worker counts shows up in the loss curve.
    fn run(workers: usize, epochs: usize) -> TrainReport {
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[5.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.1);
        let cfg = TrainerConfig {
            epochs,
            batch_size: 3,
            workers,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..7).map(|_| window_for(DomainId::LCas, 0.1)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(11);
        Trainer::new(&cfg).fit(
            &mut store,
            &mut opt,
            &windows,
            &mut rng,
            |s, tape, _w, r| {
                let pv = tape.param(s, p);
                let g = tape.constant(Tensor::scalar(1.0 + r.unit()));
                let scaled = tape.mul(pv, g);
                let sq = tape.mul(scaled, scaled);
                tape.sum_all(sq)
            },
        )
    }

    #[test]
    fn worker_count_does_not_change_the_loss_curve() {
        let seq = run(1, 6);
        let par = run(4, 6);
        let bits =
            |r: &TrainReport| -> Vec<u32> { r.epoch_losses.iter().map(|l| l.to_bits()).collect() };
        assert_eq!(bits(&seq), bits(&par), "{seq:?} vs {par:?}");
        assert_eq!(run(0, 4).epoch_losses, run(2, 4).epoch_losses);
    }

    #[test]
    fn trainer_descends_and_reports_epochs() {
        let report = run(3, 20);
        assert_eq!(report.epoch_losses.len(), 20);
        assert!(
            report.final_loss().unwrap() < report.epoch_losses[0] * 0.1,
            "{:?}",
            report.epoch_losses
        );
        assert_eq!(report.epochs.len(), 20);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].phase, "train");
    }

    #[test]
    fn on_epoch_sees_every_record() {
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[2.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.05);
        let cfg = TrainerConfig {
            epochs: 4,
            batch_size: 2,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::Sdd, 0.2)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let mut seen = Vec::new();
        let report = Trainer::new(&cfg)
            .phase("custom")
            .epoch_offset(10)
            .on_epoch(|rec| seen.push((rec.epoch, rec.phase.clone())))
            .fit(
                &mut store,
                &mut opt,
                &windows,
                &mut rng,
                |s, tape, _w, _r| {
                    let pv = tape.param(s, p);
                    let sq = tape.mul(pv, pv);
                    tape.sum_all(sq)
                },
            );
        assert_eq!(report.epochs.len(), 4);
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], (10, "custom".to_string()));
        assert_eq!(seen[3], (13, "custom".to_string()));
    }

    #[test]
    fn panicking_per_window_unwinds_cleanly() {
        let result = std::panic::catch_unwind(|| {
            let mut store = ParamStore::new();
            let _p = store.register("p", Tensor::row(&[1.0]), GroupId::DEFAULT);
            let mut opt = Adam::new(0.05);
            let cfg = TrainerConfig {
                epochs: 1,
                batch_size: 2,
                workers: 4,
                ..TrainerConfig::smoke()
            };
            let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::Syi, 0.2)).collect();
            let windows: Vec<&TrajWindow> = train.iter().collect();
            let mut rng = Rng::seed_from(0);
            Trainer::new(&cfg).fit(
                &mut store,
                &mut opt,
                &windows,
                &mut rng,
                |s, tape, _w, _r| {
                    let _ = (s, &tape);
                    panic!("boom in per_window");
                },
            )
        });
        let err = result.expect_err("must propagate the worker panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom in per_window"), "{msg}");
    }
}
