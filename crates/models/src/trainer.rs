//! The `Trainer` builder: the shared mini-batch training loop behind a
//! data-parallel worker-pool executor, batched per job.
//!
//! Each shuffled mini-batch is split into **domain-homogeneous jobs** of
//! at most [`MAX_WINDOWS_PER_JOB`] windows ([`keyed_jobs`] — the split
//! depends only on the batch's domain keys, never on the worker count).
//! Per job, `per_batch` builds one batch-mean scalar loss on a fresh tape
//! owned by the worker that runs it — one tape pass with batched
//! `GEMM`/`FusedAffine`/`LstmCell` nodes for the whole job; job gradients
//! are shipped back to the dispatching thread and reduced into one
//! [`GradBuffer`] **in job order, weighted by job size**, so the
//! accumulated sum — and therefore every optimizer step — is bit-identical
//! for any worker count.
//!
//! Determinism contract: the caller's `rng` is consumed only for batch
//! shuffling, in epoch order. Each window's latent draws come from a
//! private `Rng` seeded with [`window_seed`]`(cfg.seed, epoch, window)` —
//! handed to `per_batch` as one rng per window in batch order — which
//! depends on the run seed and the window's position in `windows`, never
//! on job formation, which worker picks up the job, or how jobs
//! interleave.

use crate::config::TrainerConfig;
use crate::diagnostics::HealthAccum;
use crate::predictor::{group_norms, TrainReport};
use adaptraj_data::batch::{keyed_jobs, shuffled_batches, WindowBatch, MAX_WINDOWS_PER_JOB};
use adaptraj_data::trajectory::TrajWindow;
use adaptraj_exec::{window_seed, WorkerPool};
use adaptraj_obs::{health, obs_info, obs_warn, profile, timeline, EpochRecord, PhaseTiming, Span};
use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::param::ParamId;
use adaptraj_tensor::{GradBuffer, ParamStore, Rng, Tape, Tensor, Var};
use std::time::Instant;

/// What one worker sends back for one job: the mean loss value over the
/// job's windows and the already-extracted parameter gradients (empty
/// when the loss came back non-finite — the guard runs on the worker so a
/// NaN backward pass is never even attempted).
struct JobResult {
    val: f32,
    pairs: Vec<(ParamId, Tensor)>,
}

/// Builder for the shared training loop.
///
/// ```ignore
/// let report = Trainer::new(&cfg)
///     .workers(4)
///     .phase("step1")
///     .on_epoch(|rec| eprintln!("epoch {} loss {}", rec.epoch, rec.loss))
///     .fit(&mut store, &mut opt, &windows, &mut rng, per_batch);
/// ```
pub struct Trainer<'a> {
    cfg: &'a TrainerConfig,
    workers: usize,
    phase: &'a str,
    epoch_offset: usize,
    #[allow(clippy::type_complexity)]
    on_epoch: Option<Box<dyn FnMut(&EpochRecord) + 'a>>,
}

impl<'a> Trainer<'a> {
    /// A trainer with the config's worker count, phase `"train"`, and no
    /// epoch callback.
    pub fn new(cfg: &'a TrainerConfig) -> Self {
        Self {
            cfg,
            workers: cfg.workers,
            phase: "train",
            epoch_offset: 0,
            on_epoch: None,
        }
    }

    /// Overrides the worker count (`0` or `1` = inline on the calling
    /// thread).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Telemetry label for this run of the loop ("train" for single-phase
    /// methods; "step1"/"step2"/"step3" under the AdapTraj schedule).
    pub fn phase(mut self, phase: &'a str) -> Self {
        self.phase = phase;
        self
    }

    /// Keeps epoch numbering global when a schedule invokes the loop
    /// repeatedly.
    pub fn epoch_offset(mut self, offset: usize) -> Self {
        self.epoch_offset = offset;
        self
    }

    /// Called with each epoch's finished [`EpochRecord`] (after it is
    /// pushed onto the report).
    pub fn on_epoch(mut self, f: impl FnMut(&EpochRecord) + 'a) -> Self {
        self.on_epoch = Some(Box::new(f));
        self
    }

    /// Runs the loop: per epoch, shuffled mini-batches split into
    /// domain-homogeneous jobs; per job, a fresh tape + one private rng
    /// per window on a worker thread; gradients averaged over the batch
    /// (job weight = job size / batch size), clipped, and applied with
    /// `opt`.
    ///
    /// Telemetry per epoch: an `epoch` span (debug level), mean loss over
    /// *finite* windows, the batch-averaged pre-clip global gradient norm,
    /// per-group gradient/parameter norms from the final batch, and a
    /// count of windows skipped because their job's loss came back
    /// non-finite.
    pub fn fit<F>(
        mut self,
        store: &mut ParamStore,
        opt: &mut Adam,
        windows: &[&TrajWindow],
        rng: &mut Rng,
        per_batch: F,
    ) -> TrainReport
    where
        F: Fn(&ParamStore, &mut Tape, &WindowBatch<'_>, &mut [Rng]) -> Var + Sync,
    {
        let mut report = TrainReport::default();
        if windows.is_empty() {
            return report;
        }
        let pool = WorkerPool::new(self.workers);
        let cfg = self.cfg;
        let windows_trained = adaptraj_obs::global().counter("exec.windows_trained");
        let phase_start = Instant::now();
        let mut best_loss = f32::INFINITY;
        let mut stale_epochs = 0usize;
        // Source domains in first-appearance order, for the health
        // observatory's per-domain gradient diagnostics.
        let mut domain_names: Vec<&'static str> = Vec::new();
        for w in windows {
            let n = w.domain.name();
            if !domain_names.contains(&n) {
                domain_names.push(n);
            }
        }
        for epoch in 0..cfg.epochs {
            let global_epoch = epoch + self.epoch_offset;
            let mut span = Span::enter("models.fit", "epoch").with("epoch", global_epoch);
            let _tl_epoch =
                timeline::span_with_arg("epoch", "train", ("epoch", global_epoch as u64));
            // Profiler attribution: ops in this epoch land under the
            // loop's phase label; workers re-enter the same path.
            let _profile_phase = profile::phase(self.phase);
            let profile_path = profile::current_path().unwrap_or_default();
            let epoch_start = Instant::now();
            let mut rec = EpochRecord::new(global_epoch, self.phase);
            let mut epoch_loss = 0.0f64;
            let mut seen = 0usize;
            let mut grad_norm_sum = 0.0f64;
            let mut batches = 0usize;
            let mut diag = HealthAccum::new(
                global_epoch as u64,
                self.phase,
                domain_names.iter().copied(),
            );
            let mut halted = false;
            let batch_list = shuffled_batches(windows.len(), cfg.batch_size, rng);
            let n_batches = batch_list.len();
            for (batch_idx, batch) in batch_list.into_iter().enumerate() {
                // Domain-homogeneous jobs; the split depends only on the
                // batch's domain keys, so it is worker-count independent.
                let keys: Vec<_> = batch.iter().map(|&i| windows[i].domain).collect();
                let jobs: Vec<WindowBatch<'_>> = keyed_jobs(&keys, MAX_WINDOWS_PER_JOB)
                    .into_iter()
                    .map(|pos| {
                        let ws = pos.iter().map(|&p| windows[batch[p]]).collect();
                        let ids = pos.iter().map(|&p| batch[p] as u64).collect();
                        WindowBatch::new(ws, ids)
                    })
                    .collect();
                let results = run_jobs(
                    &pool,
                    store,
                    &jobs,
                    cfg.seed,
                    global_epoch as u64,
                    &profile_path,
                    &per_batch,
                );
                // Reduce in job order — bit-identical to the sequential
                // loop for every worker count. The whole serialized
                // section (absorb → clip → step) is one `grad_reduce`
                // span on the dispatcher's timeline lane.
                let tl_reduce = timeline::span("grad_reduce", "train");
                let mut buf = GradBuffer::new();
                let inv_total = 1.0 / batch.len() as f32;
                for (wb, r) in jobs.iter().zip(&results) {
                    if !r.val.is_finite() {
                        rec.non_finite_batches += wb.len() as u64;
                        obs_warn!(
                            "models.fit",
                            "non-finite loss at epoch {global_epoch}, windows {:?}; skipping job",
                            wb.ids()
                        );
                        continue;
                    }
                    let weight = wb.len() as f32 * inv_total;
                    buf.absorb_pairs_scaled(&r.pairs, weight);
                    diag.absorb(wb.windows()[0].domain.name(), &r.pairs, weight);
                    epoch_loss += r.val as f64 * wb.len() as f64;
                    seen += wb.len();
                }
                // Batched jobs make `tensor.backward_calls` a job count,
                // not a window count; this counter keeps the true
                // windows-trained number observable (bench throughput).
                windows_trained.add(batch.len() as u64);
                // Retire the shipped gradient buffers into this thread's
                // pool so the next batch's reduction reuses them.
                for r in results {
                    for (_, g) in r.pairs {
                        g.recycle();
                    }
                }
                let norm = if cfg.grad_clip > 0.0 {
                    buf.clip_global_norm(cfg.grad_clip)
                } else {
                    buf.global_norm()
                };
                grad_norm_sum += norm as f64;
                batches += 1;
                rec.group_norms = group_norms(store, &buf);
                let before = diag.pre_step(store, batch_idx + 1 == n_batches);
                opt.step(store, &buf);
                diag.post_step(store, before);
                buf.recycle();
                drop(tl_reduce);
                if health::halt_requested() {
                    obs_warn!(
                        "models.fit",
                        "health tripwire requested halt at epoch {global_epoch}; stopping training"
                    );
                    halted = true;
                    break;
                }
            }
            diag.finish();
            let mean_loss = (epoch_loss / seen.max(1) as f64) as f32;
            rec.loss = mean_loss as f64;
            rec.grad_norm = grad_norm_sum / batches.max(1) as f64;
            rec.duration_s = epoch_start.elapsed().as_secs_f64();
            span.record("loss", rec.loss);
            span.record("grad_norm", rec.grad_norm);
            report.epoch_losses.push(mean_loss);
            // Optional plateau-based early stopping.
            let mut stop = false;
            if cfg.patience > 0 {
                if mean_loss < best_loss - 1e-6 {
                    best_loss = mean_loss;
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    if stale_epochs >= cfg.patience {
                        rec.early_stop = true;
                        stop = true;
                        obs_info!(
                            "models.fit",
                            "early stop at epoch {global_epoch}: no improvement for {} epochs",
                            cfg.patience
                        );
                    }
                }
            }
            report.epochs.push(rec);
            if let Some(cb) = self.on_epoch.as_mut() {
                cb(report.epochs.last().expect("just pushed"));
            }
            if stop || halted {
                break;
            }
        }
        report.phases.push(PhaseTiming::new(
            self.phase,
            phase_start.elapsed().as_secs_f64(),
        ));
        report
    }
}

/// Dispatches one mini-batch's jobs to the pool and blocks for the
/// ordered results. A worker panic is re-raised here, matching the
/// sequential loop where a panicking `per_batch` unwinds through `fit`.
fn run_jobs<F>(
    pool: &WorkerPool,
    store: &ParamStore,
    jobs: &[WindowBatch<'_>],
    seed: u64,
    global_epoch: u64,
    profile_path: &str,
    per_batch: &F,
) -> Vec<JobResult>
where
    F: Fn(&ParamStore, &mut Tape, &WindowBatch<'_>, &mut [Rng]) -> Var + Sync,
{
    match pool.map(jobs, |_, wb| {
        let _p = profile::phase_at(profile_path);
        let _h = health::batch_scope(global_epoch, wb.ids());
        worker_tape(|tape| {
            let mut rngs: Vec<Rng> = wb
                .ids()
                .iter()
                .map(|&id| Rng::seed_from(window_seed(seed, global_epoch, id)))
                .collect();
            let loss = per_batch(store, tape, wb, &mut rngs);
            let val = tape.value(loss).item();
            if !val.is_finite() {
                return JobResult {
                    val,
                    pairs: Vec::new(),
                };
            }
            // `skip-window` policy: a tripped job drops its gradient
            // contribution via the existing non-finite skip path.
            if health::should_skip_window() {
                return JobResult {
                    val: f32::NAN,
                    pairs: Vec::new(),
                };
            }
            let grads = tape.backward(loss);
            let pairs = tape.take_param_grads(grads);
            JobResult { val, pairs }
        })
    }) {
        Ok(results) => results,
        Err(e) => panic!("training worker panicked: {e}"),
    }
}

/// Runs `f` on the calling worker thread's reusable pooled tape (see
/// `adaptraj_tensor::with_pooled`). The worker pool keeps its threads
/// alive across batches, so in steady state every job replays onto a
/// tape whose node vector — and, via `Tape::reset`, whose retired value
/// buffers — carry over from the previous job: the forward/backward hot
/// path stops touching the allocator.
pub(crate) fn worker_tape<R>(f: impl FnOnce(&mut Tape) -> R) -> R {
    adaptraj_tensor::with_pooled(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{Point, T_TOTAL};
    use adaptraj_tensor::{GroupId, Tensor};

    fn window_for(domain: DomainId, v: f32) -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [v * t as f32, 0.0]).collect();
        TrajWindow::from_world(&focal, &[], domain)
    }

    /// A stochastic objective: the job mean of `(p * g_b)^2` with `g_b`
    /// drawn from window `b`'s rng, so any divergence in the
    /// seed-splitting scheme between worker counts or job formations
    /// shows up in the loss curve.
    fn stochastic_loss(s: &ParamStore, tape: &mut Tape, p: ParamId, rngs: &mut [Rng]) -> Var {
        let pv = tape.param(s, p);
        let mut acc: Option<Var> = None;
        for r in rngs.iter_mut() {
            let g = tape.constant(Tensor::scalar(1.0 + r.unit()));
            let scaled = tape.mul(pv, g);
            let sq = tape.mul(scaled, scaled);
            acc = Some(match acc {
                Some(a) => tape.add(a, sq),
                None => sq,
            });
        }
        let sum = acc.expect("jobs are non-empty");
        let n = rngs.len() as f32;
        tape.scale(sum, 1.0 / n)
    }

    fn run(workers: usize, epochs: usize) -> TrainReport {
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[5.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.1);
        let cfg = TrainerConfig {
            epochs,
            batch_size: 3,
            workers,
            ..TrainerConfig::smoke()
        };
        // Two domains so the keyed job split is exercised.
        let train: Vec<TrajWindow> = (0..7)
            .map(|i| {
                let d = if i % 2 == 0 {
                    DomainId::LCas
                } else {
                    DomainId::Syi
                };
                window_for(d, 0.1)
            })
            .collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(11);
        Trainer::new(&cfg).fit(
            &mut store,
            &mut opt,
            &windows,
            &mut rng,
            |s, tape, _wb, rngs| stochastic_loss(s, tape, p, rngs),
        )
    }

    #[test]
    fn worker_count_does_not_change_the_loss_curve() {
        let seq = run(1, 6);
        let par = run(4, 6);
        let bits =
            |r: &TrainReport| -> Vec<u32> { r.epoch_losses.iter().map(|l| l.to_bits()).collect() };
        assert_eq!(bits(&seq), bits(&par), "{seq:?} vs {par:?}");
        assert_eq!(run(0, 4).epoch_losses, run(2, 4).epoch_losses);
    }

    #[test]
    fn jobs_are_domain_homogeneous() {
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[1.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.05);
        let cfg = TrainerConfig {
            epochs: 1,
            batch_size: 8,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..8)
            .map(|i| {
                let d = if i < 5 {
                    DomainId::EthUcy
                } else {
                    DomainId::Sdd
                };
                window_for(d, 0.1)
            })
            .collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(3);
        Trainer::new(&cfg).fit(
            &mut store,
            &mut opt,
            &windows,
            &mut rng,
            |s, tape, wb, rngs| {
                let first = wb.windows()[0].domain;
                assert!(
                    wb.windows().iter().all(|w| w.domain == first),
                    "every job must hold a single domain"
                );
                assert!(wb.len() <= MAX_WINDOWS_PER_JOB);
                assert_eq!(wb.len(), rngs.len(), "one rng per batched window");
                stochastic_loss(s, tape, p, rngs)
            },
        );
    }

    #[test]
    fn trainer_descends_and_reports_epochs() {
        let report = run(3, 20);
        assert_eq!(report.epoch_losses.len(), 20);
        assert!(
            report.final_loss().unwrap() < report.epoch_losses[0] * 0.1,
            "{:?}",
            report.epoch_losses
        );
        assert_eq!(report.epochs.len(), 20);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].phase, "train");
    }

    #[test]
    fn on_epoch_sees_every_record() {
        let mut store = ParamStore::new();
        let p = store.register("p", Tensor::row(&[2.0]), GroupId::DEFAULT);
        let mut opt = Adam::new(0.05);
        let cfg = TrainerConfig {
            epochs: 4,
            batch_size: 2,
            ..TrainerConfig::smoke()
        };
        let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::Sdd, 0.2)).collect();
        let windows: Vec<&TrajWindow> = train.iter().collect();
        let mut rng = Rng::seed_from(0);
        let mut seen = Vec::new();
        let report = Trainer::new(&cfg)
            .phase("custom")
            .epoch_offset(10)
            .on_epoch(|rec| seen.push((rec.epoch, rec.phase.clone())))
            .fit(
                &mut store,
                &mut opt,
                &windows,
                &mut rng,
                |s, tape, _wb, _rngs| {
                    let pv = tape.param(s, p);
                    let sq = tape.mul(pv, pv);
                    tape.sum_all(sq)
                },
            );
        assert_eq!(report.epochs.len(), 4);
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], (10, "custom".to_string()));
        assert_eq!(seen[3], (13, "custom".to_string()));
    }

    #[test]
    fn panicking_per_batch_unwinds_cleanly() {
        let result = std::panic::catch_unwind(|| {
            let mut store = ParamStore::new();
            let _p = store.register("p", Tensor::row(&[1.0]), GroupId::DEFAULT);
            let mut opt = Adam::new(0.05);
            let cfg = TrainerConfig {
                epochs: 1,
                batch_size: 2,
                workers: 4,
                ..TrainerConfig::smoke()
            };
            let train: Vec<TrajWindow> = (0..4).map(|_| window_for(DomainId::Syi, 0.2)).collect();
            let windows: Vec<&TrajWindow> = train.iter().collect();
            let mut rng = Rng::seed_from(0);
            Trainer::new(&cfg).fit(
                &mut store,
                &mut opt,
                &windows,
                &mut rng,
                |s, tape, _wb, _rngs| {
                    let _ = (s, &tape);
                    panic!("boom in per_batch");
                },
            )
        });
        let err = result.expect_err("must propagate the worker panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom in per_batch"), "{msg}");
    }
}
