//! The Counter baseline (Chen et al., ICCV 2021): counterfactual analysis.
//!
//! Counter removes the model's dependence on *external factors* — the
//! influence of neighboring agents — by counterfactual intervention: it
//! contrasts the factual prediction `Y(X, E)` with a counterfactual
//! prediction `Y(X, ∅)` in which the neighbor clues are replaced by a
//! reference (here: an empty neighborhood), and subtracts the
//! neighbor-caused effect from the output. As the AdapTraj paper observes
//! (Sec. I and Tab. IV), this also discards the *legitimate* interaction
//! information, which is why Counter underperforms vanilla backbones in
//! multi-agent settings — an effect this implementation reproduces. The
//! extra counterfactual pass is also why its inference is slightly slower
//! (Tab. VIII).

use crate::config::TrainerConfig;
use crate::predictor::{cap_per_domain, Predictor, TrainReport};
use crate::trainer::Trainer;
use crate::traits::{Backbone, ForwardCtx};
use adaptraj_data::trajectory::{Point, TrajWindow};
use adaptraj_data::WindowBatch;
use adaptraj_tensor::optim::Adam;
use adaptraj_tensor::{ParamStore, Rng};

/// Strength of the counterfactual subtraction (1.0 = fully remove the
/// neighbor-caused component, as described in the paper).
const CF_STRENGTH: f32 = 1.0;

/// A backbone trained and evaluated with counterfactual analysis.
pub struct Counter<B: Backbone> {
    backbone: B,
    store: ParamStore,
    cfg: TrainerConfig,
}

/// The counterfactual intervention: same focal history, reference
/// (empty) neighborhood.
fn counterfactual_of(w: &TrajWindow) -> TrajWindow {
    let mut cf = w.clone();
    cf.neighbors.clear();
    cf
}

impl<B: Backbone> Counter<B> {
    pub fn new(cfg: TrainerConfig, build: impl FnOnce(&mut ParamStore, &mut Rng) -> B) -> Self {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(cfg.seed);
        let backbone = build(&mut store, &mut rng);
        Self {
            backbone,
            store,
            cfg,
        }
    }

    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter access (checkpoint loading).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
}

impl<B: Backbone> Predictor for Counter<B> {
    fn name(&self) -> String {
        format!("{}-Counter", self.backbone.name())
    }

    fn fit(&mut self, train: &[TrajWindow]) -> TrainReport {
        let windows = cap_per_domain(train, &self.cfg);
        let mut rng = Rng::seed_from(self.cfg.seed ^ 0xC0F);
        let mut opt = Adam::new(self.cfg.lr);
        let backbone = &self.backbone;
        // Both branches share parameters; the counterfactual branch trains
        // the model to predict well from individual clues alone.
        Trainer::new(&self.cfg).fit(
            &mut self.store,
            &mut opt,
            &windows,
            &mut rng,
            |store, tape, wb, rngs| {
                let mut ctx = ForwardCtx::train(store, tape, rngs);
                let (_, l_fact) = backbone.train_forward(&mut ctx, wb, None);
                // Same batch with every neighborhood replaced by the
                // reference; each window's rng stream simply continues
                // into its counterfactual pass.
                let cf: Vec<TrajWindow> =
                    wb.windows().iter().map(|w| counterfactual_of(w)).collect();
                let cf_batch = WindowBatch::new(cf.iter().collect(), wb.ids().to_vec());
                let (_, l_cf) = backbone.train_forward(&mut ctx, &cf_batch, None);
                let sum = ctx.tape.add(l_fact, l_cf);
                ctx.tape.scale(sum, 0.5)
            },
        )
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn predict(&self, w: &TrajWindow, rng: &mut Rng) -> Vec<Point> {
        // Use a shared latent draw for the factual and counterfactual
        // passes so the subtraction isolates the neighbor effect rather
        // than sampling noise.
        let seed = ((rng.unit().to_bits() as u64) << 32) | rng.unit().to_bits() as u64;
        adaptraj_tensor::with_pooled(|tape| {
            let batch = WindowBatch::single(w, 0);
            let mut r1 = Rng::seed_from(seed);
            let mut ctx1 = ForwardCtx::sample(&self.store, tape, std::slice::from_mut(&mut r1));
            let y_fact = self.backbone.sample_forward(&mut ctx1, &batch, None);

            let cf = counterfactual_of(w);
            let cf_batch = WindowBatch::single(&cf, 0);
            let mut r2 = Rng::seed_from(seed);
            let mut ctx2 =
                ForwardCtx::sample(&self.store, ctx1.tape, std::slice::from_mut(&mut r2));
            let y_cf = self.backbone.sample_forward(&mut ctx2, &cf_batch, None);
            let tape = ctx2.tape;

            // Y_final = Y(X,E) − β·(Y(X,E) − Y(X,∅)): subtract the
            // neighbor-caused component.
            let effect = tape.sub(y_fact, y_cf);
            let scaled = tape.scale(effect, CF_STRENGTH);
            let y_final = tape.sub(y_fact, scaled);
            crate::backbone::tensor_to_points(tape.value(y_final))
        })
    }

    fn predict_batch(&self, batch: &WindowBatch<'_>, rngs: &mut [Rng]) -> Vec<Vec<Point>> {
        assert_eq!(batch.len(), rngs.len(), "one rng per batched window");
        // Derive each window's shared factual/counterfactual seed from its
        // own rng exactly as the batch-of-one path does, so streams stay
        // aligned with per-window `predict` calls.
        let seeds: Vec<u64> = rngs
            .iter_mut()
            .map(|rng| ((rng.unit().to_bits() as u64) << 32) | rng.unit().to_bits() as u64)
            .collect();
        adaptraj_tensor::with_pooled(|tape| {
            let mut r1: Vec<Rng> = seeds.iter().map(|&s| Rng::seed_from(s)).collect();
            let mut ctx1 = ForwardCtx::sample(&self.store, tape, &mut r1);
            let y_fact = self.backbone.sample_forward(&mut ctx1, batch, None);

            let cf: Vec<TrajWindow> = batch
                .windows()
                .iter()
                .map(|w| counterfactual_of(w))
                .collect();
            let cf_batch = WindowBatch::new(cf.iter().collect(), batch.ids().to_vec());
            let mut r2: Vec<Rng> = seeds.iter().map(|&s| Rng::seed_from(s)).collect();
            let mut ctx2 = ForwardCtx::sample(&self.store, ctx1.tape, &mut r2);
            let y_cf = self.backbone.sample_forward(&mut ctx2, &cf_batch, None);
            let tape = ctx2.tape;

            let effect = tape.sub(y_fact, y_cf);
            let scaled = tape.scale(effect, CF_STRENGTH);
            let y_final = tape.sub(y_fact, scaled);
            crate::backbone::batch_pred_points(tape.value(y_final), batch.len())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BackboneConfig;
    use crate::lbebm::Lbebm;
    use crate::pecnet::PecNet;
    use adaptraj_data::domain::DomainId;
    use adaptraj_data::trajectory::{T_OBS, T_PRED, T_TOTAL};

    fn window_with_neighbor() -> TrajWindow {
        let focal: Vec<Point> = (0..T_TOTAL).map(|t| [0.3 * t as f32, 0.0]).collect();
        let nb: Vec<Vec<Point>> = vec![(0..T_OBS).map(|t| [0.3 * t as f32, 0.8]).collect()];
        TrajWindow::from_world(&focal, &nb, DomainId::EthUcy)
    }

    #[test]
    fn counterfactual_strips_neighbors() {
        let w = window_with_neighbor();
        let cf = counterfactual_of(&w);
        assert_eq!(cf.neighbors.len(), 0);
        assert_eq!(cf.obs, w.obs);
        assert_eq!(cf.fut, w.fut);
    }

    #[test]
    fn fit_and_predict_pecnet() {
        let cfg = TrainerConfig {
            epochs: 3,
            ..TrainerConfig::smoke()
        };
        let mut model = Counter::new(cfg, |s, r| PecNet::new(s, r, BackboneConfig::default()));
        assert_eq!(model.name(), "PECNet-Counter");
        let train: Vec<TrajWindow> = (0..8).map(|_| window_with_neighbor()).collect();
        let report = model.fit(&train);
        assert_eq!(report.epoch_losses.len(), 3);
        let mut rng = Rng::seed_from(1);
        let pred = model.predict(&train[0], &mut rng);
        assert_eq!(pred.len(), T_PRED);
        assert!(pred.iter().all(|p| p[0].is_finite() && p[1].is_finite()));
    }

    #[test]
    fn counter_output_equals_counterfactual_branch() {
        // With β = 1, Y − (Y − Y_cf) = Y_cf: the output must be invariant
        // to the neighborhood (the defining property of the method).
        let cfg = TrainerConfig::smoke();
        let model = Counter::new(cfg, |s, r| Lbebm::new(s, r, BackboneConfig::default()));
        let w = window_with_neighbor();
        let mut w_other = w.clone();
        w_other.neighbors[0] = (0..T_OBS).map(|t| [0.3 * t as f32, -2.0]).collect();
        let mut r1 = Rng::seed_from(7);
        let mut r2 = Rng::seed_from(7);
        let p1 = model.predict(&w, &mut r1);
        let p2 = model.predict(&w_other, &mut r2);
        for (a, b) in p1.iter().zip(&p2) {
            assert!((a[0] - b[0]).abs() < 1e-4 && (a[1] - b[1]).abs() < 1e-4);
        }
    }
}
